"""Command-line interface to the Edgelet reproduction.

A text substitute for the demonstration GUI.  Subcommands:

* ``plan`` — build and display a QEP for the given knobs (demo Part 1);
* ``run`` — execute an aggregate SQL query on a synthetic swarm and
  display the result, tally, and centralized verification (demo Part 2);
* ``kmeans`` — execute the distributed K-Means query;
* ``explain`` — compile a query with the cost-based optimizer over a
  named substrate profile and print the candidate table (every
  enumerated physical plan, its cost, and why it lost);
* ``resiliency`` — print the overcollection table for a fault-rate
  sweep (the failure slider);
* ``chaos`` — run a seeded chaos campaign (strategy x failure
  probability x fault mix), check the paper's property invariants
  after every run, and write shrunk JSON repro artifacts for any
  violation; ``--replay PATH`` re-executes one artifact;
  ``--workload N`` chaoses a concurrent N-query workload instead and
  checks every invariant per query;
* ``workload`` — run a deterministic multi-query workload (open- or
  closed-loop arrivals, admission control, exclusive device leases)
  over one shared swarm; ``--serial-check`` verifies every query's
  report is byte-identical to a solo replay;
* ``continuous`` — run a standing query on a cadence over a churning
  device population (seeded arrivals/departures/data refreshes,
  incremental delta-stamp recollection); ``--check-invariants`` runs
  the long-soak invariant suite on every window.

``run`` and ``kmeans`` accept ``--metrics-out PATH`` to write the
telemetry JSONL export and ``--telemetry`` to print the summary table
(counters, phase spans, wall-clock vs simulated time).

Examples::

    python -m repro.cli plan --cardinality 2000 --max-raw 200 \
        --fault-rate 0.2 --separate age,bmi
    python -m repro.cli run --contributors 200 --rows 400 \
        --sql "SELECT count(*), avg(age) FROM health GROUP BY region"
    python -m repro.cli kmeans --contributors 150 --heartbeats 6
    python -m repro.cli explain --profile lossy-mobile --cardinality 600
    python -m repro.cli resiliency --n 10
    python -m repro.cli chaos --seed 7 --runs 25 --strategy both \
        --fault-mix "drop=0.05;partition:duplicate=0.2" --repro-out repro/
    python -m repro.cli chaos --seed 7 --runs 10 --reliability \
        --detector --fencing \
        --fault-mix "partition=0.25,gray=0.2,region_crash=0.1"
    python -m repro.cli chaos --replay repro/repro-validity-000.json
    python -m repro.cli chaos --workload 8 --failure-probability 0.004
    python -m repro.cli workload --queries 10 --arrival poisson --rate 2 \
        --max-concurrent 4 --serial-check --per-query
    python -m repro.cli continuous --windows 15 --churn 0.10 \
        --reliability --check-invariants --per-window --seed 7
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.core.planner import PrivacyParameters, ResiliencyParameters
from repro.core.resiliency import minimum_overcollection, query_success_probability
from repro.data.health import HEALTH_SCHEMA, generate_health_rows
from repro.manager.dashboard import render_plan, render_report
from repro.manager.scenario import Scenario, ScenarioConfig
from repro.manager.verification import verify_against_centralized
from repro.plan.builder import scan
from repro.plan.compile import (
    OPTIMIZER_COST,
    OPTIMIZER_PINNED,
    CompiledQuery,
    compile_query,
)
from repro.plan.substrate import SUBSTRATE_PROFILES, SubstrateProfile
from repro.query.relation import Relation
from repro.telemetry import Telemetry, render_summary, write_jsonl

__all__ = ["main", "build_parser"]

DEFAULT_SQL = (
    "SELECT count(*), avg(age), avg(bmi) FROM health WHERE age > 65 "
    "GROUP BY GROUPING SETS ((region), ())"
)


def _parse_pairs(raw: str | None) -> tuple[tuple[str, str], ...]:
    """Parse ``a,b;c,d`` into separation pairs."""
    if not raw:
        return ()
    pairs = []
    for chunk in raw.split(";"):
        parts = [part.strip() for part in chunk.split(",")]
        if len(parts) != 2 or not all(parts):
            raise argparse.ArgumentTypeError(
                f"separation pairs look like 'a,b;c,d', got {raw!r}"
            )
        pairs.append((parts[0], parts[1]))
    return tuple(pairs)


def _parse_probabilities(raw: str) -> tuple[float, ...]:
    """Parse ``0.0,0.002`` into a tuple of probabilities."""
    try:
        values = tuple(float(part) for part in raw.split(",") if part.strip())
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"probabilities look like '0.0,0.002', got {raw!r}"
        ) from None
    if not values or any(not 0.0 <= value <= 1.0 for value in values):
        raise argparse.ArgumentTypeError(
            f"probabilities must be in [0, 1], got {raw!r}"
        )
    return values


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    # importing outages registers the topology-outage knobs, so the
    # generated --fault-mix help always lists every known fault kind
    import repro.network.outages  # noqa: F401
    from repro.network.faults import fault_mix_help

    mix_help = (
        "chaos mix, e.g. 'drop=0.05;partition=0.3,gray=0.2'; "
        "';'-chunks are routed by knob scope — " + fault_mix_help()
    )
    parser = argparse.ArgumentParser(
        prog="repro", description="Edgelet computing reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    plan = sub.add_parser("plan", help="build and display a QEP (demo Part 1)")
    plan.add_argument("--sql", default=DEFAULT_SQL, help="aggregate SQL query")
    plan.add_argument("--cardinality", type=int, default=2000,
                      help="target snapshot cardinality C")
    plan.add_argument("--max-raw", type=int, default=500,
                      help="max raw tuples per edgelet (horizontal knob)")
    plan.add_argument("--separate", type=_parse_pairs, default=(),
                      help="attribute pairs to separate, e.g. 'age,bmi;age,zipcode'")
    plan.add_argument("--fault-rate", type=float, default=0.1,
                      help="presumed partition fault rate")
    plan.add_argument("--target-success", type=float, default=0.99)
    plan.add_argument("--strategy", choices=("overcollection", "backup"),
                      default="overcollection")
    plan.add_argument("--engine", choices=("row", "columnar"), default="row",
                      help="operator engine (bit-identical results)")
    plan.add_argument("--contributors", type=int, default=20)

    run = sub.add_parser("run", help="execute a query on a synthetic swarm")
    run.add_argument("--sql", default=DEFAULT_SQL)
    run.add_argument("--contributors", type=int, default=200)
    run.add_argument("--processors", type=int, default=40)
    run.add_argument("--rows", type=int, default=400, help="synthetic dataset size")
    run.add_argument("--cardinality", type=int, default=300)
    run.add_argument("--max-raw", type=int, default=100)
    run.add_argument("--fault-rate", type=float, default=0.1)
    run.add_argument("--message-loss", type=float, default=0.0)
    run.add_argument("--crash-probability", type=float, default=0.0)
    run.add_argument("--secure-channels", action="store_true")
    run.add_argument("--reliability", action="store_true",
                     help="enable ACK/retransmission transport and "
                          "query-level recovery (watchdogs, reprovisioning, "
                          "graceful degradation)")
    run.add_argument("--phase-deadline", type=float, default=None,
                     metavar="SECONDS",
                     help="computation-phase deadline for the recovery "
                          "watchdog (defaults to 85%% of the query deadline)")
    run.add_argument("--fault-mix", default=None, metavar="MIX", help=mix_help)
    run.add_argument("--detector", action="store_true",
                     help="adaptive φ-accrual failure detection: suspect "
                          "partitioned/gray devices from per-link delivery "
                          "history instead of waiting out the fixed watchdog")
    run.add_argument("--fencing", action="store_true",
                     help="generation-numbered fencing tokens on takeover so "
                          "a resurfacing predecessor cannot split-brain a cell")
    run.add_argument("--engine", choices=("row", "columnar"), default="row",
                     help="operator engine (bit-identical results)")
    run.add_argument("--strategy", choices=("overcollection", "backup"),
                     default="overcollection")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--show-plan", action="store_true")
    run.add_argument("--metrics-out", metavar="PATH", default=None,
                     help="write the telemetry JSONL export to PATH")
    run.add_argument("--telemetry", action="store_true",
                     help="print the telemetry summary table")

    kmeans = sub.add_parser("kmeans", help="execute the distributed K-Means query")
    kmeans.add_argument("--contributors", type=int, default=150)
    kmeans.add_argument("--processors", type=int, default=40)
    kmeans.add_argument("--rows", type=int, default=300)
    kmeans.add_argument("--cardinality", type=int, default=250)
    kmeans.add_argument("--k", type=int, default=3)
    kmeans.add_argument("--heartbeats", type=int, default=5)
    kmeans.add_argument("--max-raw", type=int, default=80)
    kmeans.add_argument("--fault-rate", type=float, default=0.15)
    kmeans.add_argument("--seed", type=int, default=0)
    kmeans.add_argument("--metrics-out", metavar="PATH", default=None,
                        help="write the telemetry JSONL export to PATH")
    kmeans.add_argument("--telemetry", action="store_true",
                        help="print the telemetry summary table")

    explain = sub.add_parser(
        "explain",
        help="show the optimizer's candidate table for a query",
    )
    explain.add_argument("--sql", default=DEFAULT_SQL, help="aggregate SQL query")
    explain.add_argument("--cardinality", type=int, default=300,
                         help="target snapshot cardinality C")
    explain.add_argument("--max-raw", type=int, default=100,
                         help="max raw tuples per edgelet (enumeration cap)")
    explain.add_argument("--separate", type=_parse_pairs, default=(),
                         help="attribute pairs to separate")
    explain.add_argument("--fault-rate", type=float, default=0.1,
                         help="presumed fault rate (pinned mode only; cost "
                              "mode derives it from the substrate profile)")
    explain.add_argument("--target-success", type=float, default=0.99)
    explain.add_argument("--strategy", choices=("overcollection", "backup"),
                         default="overcollection",
                         help="baseline strategy (pinned mode honours it; "
                              "cost mode treats it as one candidate)")
    explain.add_argument("--profile", choices=tuple(sorted(SUBSTRATE_PROFILES)),
                         default="residential",
                         help="substrate profile to optimize over")
    explain.add_argument("--contributors", type=int, default=None,
                         help="override the profile's contributor count")
    explain.add_argument("--processors", type=int, default=None,
                         help="override the profile's processor count")
    explain.add_argument("--engine", choices=("row", "columnar"),
                         default="row",
                         help="operator engine (bit-identical results)")
    explain.add_argument("--pinned", action="store_true",
                         help="score the caller-pinned plan instead of "
                              "running the cost-based optimizer")

    resiliency = sub.add_parser(
        "resiliency", help="overcollection table for a fault-rate sweep"
    )
    resiliency.add_argument("--n", type=int, default=10,
                            help="horizontal partitioning degree")
    resiliency.add_argument("--target-success", type=float, default=0.99)

    chaos = sub.add_parser(
        "chaos", help="seeded chaos campaign with invariant checking"
    )
    chaos.add_argument("--seed", type=int, default=0,
                       help="campaign seed; run i uses seed + i*100003")
    chaos.add_argument("--runs", type=int, default=25)
    chaos.add_argument("--strategy",
                       choices=("overcollection", "backup", "both"),
                       default="both")
    chaos.add_argument("--fault-mix", default=None, metavar="MIX", help=mix_help)
    chaos.add_argument("--failure-probability", type=_parse_probabilities,
                       default=(0.0, 0.002), metavar="P[,P...]",
                       help="per-device per-tick crash probabilities to sweep")
    chaos.add_argument("--disconnect-probability", type=float, default=0.0)
    chaos.add_argument("--message-loss", type=float, default=0.0,
                       help="per-message network loss probability")
    chaos.add_argument("--reliability", action="store_true",
                       help="run every scenario with the reliable transport "
                            "and query-level recovery enabled")
    chaos.add_argument("--detector", action="store_true",
                       help="adaptive φ-accrual failure detection on every "
                            "run (requires --reliability to matter)")
    chaos.add_argument("--fencing", action="store_true",
                       help="generation-fenced takeover on every run; the "
                            "no-split-brain invariant then checks the "
                            "fire/arrival evidence logs")
    chaos.add_argument("--phase-deadline", type=float, default=None,
                       metavar="SECONDS",
                       help="computation-phase deadline for the recovery "
                            "watchdog")
    chaos.add_argument("--contributors", type=int, default=24)
    chaos.add_argument("--processors", type=int, default=20)
    chaos.add_argument("--rows", type=int, default=48)
    chaos.add_argument("--backup-replicas", type=int, default=1)
    chaos.add_argument("--optimizer", choices=("pinned", "cost"),
                       default="pinned",
                       help="'pinned' replays the legacy hand-assembled "
                            "physical parameters; 'cost' lets the "
                            "cost-based optimizer choose per run")
    chaos.add_argument("--validity-tolerance", type=float, default=0.75,
                       help="max relative error tolerated on shared cells "
                            "for runs that experienced faults (calibrate to "
                            "the plan's m/n extrapolation bound)")
    chaos.add_argument("--repro-out", metavar="DIR", default=None,
                       help="write one JSON repro artifact per violation")
    chaos.add_argument("--no-shrink", action="store_true",
                       help="skip failure-schedule shrinking on violation")
    chaos.add_argument("--shrink-budget", type=int, default=24,
                       help="max scenario re-executions per shrink")
    chaos.add_argument("--workload", type=int, default=None, metavar="N",
                       help="chaos a concurrent N-query workload instead of "
                            "sweeping single-query runs: faults hit the "
                            "shared swarm while N queries are in flight, "
                            "and every invariant is checked per query")
    chaos.add_argument("--workload-max-concurrent", type=int, default=8,
                       metavar="K",
                       help="admission cap of the chaos workload")
    chaos.add_argument("--engine", choices=("row", "columnar"),
                       default="row",
                       help="operator engine for every run")
    chaos.add_argument("--replay", metavar="PATH", default=None,
                       help="replay one repro artifact instead of sweeping")
    chaos.add_argument("--metrics-out", metavar="PATH", default=None,
                       help="write the telemetry JSONL export to PATH")
    chaos.add_argument("--telemetry", action="store_true",
                       help="print the telemetry summary table")

    workload = sub.add_parser(
        "workload",
        help="run a deterministic multi-query workload over one shared swarm",
    )
    workload.add_argument("--queries", type=int, default=10,
                          help="number of query arrivals")
    workload.add_argument("--arrival", choices=("poisson", "uniform", "closed"),
                          default="poisson", help="arrival process")
    workload.add_argument("--rate", type=float, default=2.0,
                          help="open-loop arrival rate (queries per second)")
    workload.add_argument("--in-flight", type=int, default=4,
                          help="closed-loop target concurrency")
    workload.add_argument("--max-concurrent", type=int, default=8,
                          help="admission cap on concurrent executions")
    workload.add_argument("--queue", type=int, default=16,
                          help="admission queue capacity (0 = shed at cap)")
    workload.add_argument("--backup-fraction", type=float, default=0.0,
                          help="fraction of queries using the backup strategy")
    workload.add_argument("--contributors", type=int, default=30)
    workload.add_argument("--processors", type=int, default=60)
    workload.add_argument("--cardinality", type=int, default=48)
    workload.add_argument("--max-raw", type=int, default=24)
    workload.add_argument("--sql", default=DEFAULT_SQL)
    workload.add_argument("--collection-window", type=float, default=5.0)
    workload.add_argument("--deadline", type=float, default=12.0)
    workload.add_argument("--reliability", action="store_true",
                          help="per-query reliable transport and recovery")
    workload.add_argument("--standbys", type=int, default=0,
                          help="extra devices leased per reliable query")
    workload.add_argument("--engine", choices=("row", "columnar"),
                          default="row",
                          help="operator engine for every query")
    workload.add_argument("--seed", type=int, default=0)
    workload.add_argument("--per-query", action="store_true",
                          help="print the per-query lifecycle table")
    workload.add_argument("--serial-check", action="store_true",
                          help="replay every completed query alone and "
                               "verify byte-identical report fingerprints")
    workload.add_argument("--metrics-out", metavar="PATH", default=None,
                          help="write the telemetry JSONL export to PATH")
    workload.add_argument("--telemetry", action="store_true",
                          help="print the telemetry summary table")

    continuous = sub.add_parser(
        "continuous",
        help="run a standing query over a churning device population",
    )
    continuous.add_argument("--windows", type=int, default=10,
                            help="window horizon (fires this many windows)")
    continuous.add_argument("--cadence", type=float, default=20.0,
                            help="virtual seconds between window fires")
    continuous.add_argument("--window", choices=("tumbling", "sliding"),
                            default="tumbling", help="window mode")
    continuous.add_argument("--window-length", type=float, default=None,
                            help="sliding-window freshness horizon "
                                 "(defaults to the cadence)")
    continuous.add_argument("--churn", type=float, default=0.0,
                            metavar="P",
                            help="per-window departure probability per device")
    continuous.add_argument("--arrival-rate", type=float, default=None,
                            help="contributor arrivals per window "
                                 "(default: stationary — matches departures)")
    continuous.add_argument("--data-change", type=float, default=0.0,
                            metavar="P",
                            help="per-window data-refresh probability "
                                 "per contributor")
    continuous.add_argument("--full-recollection", action="store_true",
                            help="disable incremental delta stamps; re-ship "
                                 "every contribution every window")
    continuous.add_argument("--contributors", type=int, default=24)
    continuous.add_argument("--processors", type=int, default=48)
    continuous.add_argument("--cardinality", type=int, default=96)
    continuous.add_argument("--max-raw", type=int, default=24)
    continuous.add_argument("--strategy",
                            choices=("overcollection", "backup"),
                            default="overcollection")
    continuous.add_argument("--sql", default=DEFAULT_SQL)
    continuous.add_argument("--collection-window", type=float, default=5.0)
    continuous.add_argument("--deadline", type=float, default=12.0)
    continuous.add_argument("--reliability", action="store_true",
                            help="per-window reliable transport and recovery")
    continuous.add_argument("--standbys", type=int, default=0,
                            help="extra devices leased per reliable window")
    continuous.add_argument("--fault-mix", default=None, metavar="MIX",
                            help="message-fault mix over the whole soak "
                                 "(e.g. 'drop=0.05')")
    continuous.add_argument("--check-invariants", action="store_true",
                            help="run the full invariant suite on every "
                                 "window (soak mode)")
    continuous.add_argument("--engine", choices=("row", "columnar"),
                            default="row",
                            help="operator engine for every window")
    continuous.add_argument("--seed", type=int, default=0)
    continuous.add_argument("--per-window", action="store_true",
                            help="print the per-window lineage table")
    continuous.add_argument("--metrics-out", metavar="PATH", default=None,
                            help="write the telemetry JSONL export to PATH")
    continuous.add_argument("--telemetry", action="store_true",
                            help="print the telemetry summary table")

    advise = sub.add_parser(
        "advise", help="recommend a resiliency strategy for a query"
    )
    advise.add_argument("--distributive", action="store_true",
                        help="the processing merges from partial states")
    advise.add_argument("--iterative", action="store_true",
                        help="the algorithm iterates (K-Means style)")
    advise.add_argument("--exact", action="store_true",
                        help="an exact result is required")
    advise.add_argument("--n", type=int, default=10)
    advise.add_argument("--fault-rate", type=float, default=0.1)

    return parser


def _compile_from_args(
    args: argparse.Namespace,
    query_id: str,
    *,
    kind: str = "aggregate",
    optimizer: str = OPTIMIZER_PINNED,
    substrate: SubstrateProfile | None = None,
) -> CompiledQuery:
    """The CLI's single compile path (plan/run/kmeans/explain).

    Every subcommand's knobs map onto the same ``compile_query`` call;
    knobs a subcommand does not expose fall back to the library
    defaults.
    """
    privacy = PrivacyParameters(
        max_raw_per_edgelet=args.max_raw,
        separated_pairs=getattr(args, "separate", ()),
    )
    resiliency = ResiliencyParameters(
        fault_rate=args.fault_rate,
        target_success=getattr(args, "target_success", 0.99),
        strategy=getattr(args, "strategy", "overcollection"),
    )
    if kind == "kmeans":
        source = scan("health").cluster(
            k=args.k,
            features=("bmi", "systolic_bp", "glucose"),
            heartbeats=args.heartbeats,
        )
    else:
        source = args.sql
    return compile_query(
        source,
        query_id=query_id,
        snapshot_cardinality=args.cardinality,
        privacy=privacy,
        resiliency=resiliency,
        optimizer=optimizer,
        substrate=substrate,
        engine=getattr(args, "engine", None),
    )


def _cmd_plan(args: argparse.Namespace) -> int:
    compiled = _compile_from_args(args, "cli-plan")
    plan = compiled.build_qep(n_contributors=args.contributors)
    print(render_plan(plan))
    return 0


def _emit_telemetry(args: argparse.Namespace, telemetry: Telemetry) -> None:
    """Write the JSONL export and/or print the summary, as requested."""
    if args.metrics_out:
        try:
            lines = write_jsonl(telemetry, args.metrics_out)
        except OSError as exc:
            print(
                f"telemetry: cannot write {args.metrics_out}: {exc}",
                file=sys.stderr,
            )
        else:
            print(f"telemetry: {lines} records written to {args.metrics_out}")
    if args.telemetry:
        print(render_summary(telemetry))


def _split_mix(raw: str | None):
    """Split a combined ``--fault-mix`` into (fault_specs, outage_spec)."""
    if not raw:
        return None, None
    from repro.chaos import parse_fault_mix, parse_outage_mix, split_chaos_mix

    try:
        message_part, outage_part = split_chaos_mix(raw)
        fault_specs = parse_fault_mix(message_part) if message_part else None
        outage_spec = parse_outage_mix(outage_part) if outage_part else None
    except ValueError as exc:
        raise SystemExit(f"--fault-mix: {exc}") from None
    return fault_specs, outage_spec


def _cmd_run(args: argparse.Namespace) -> int:
    rows = generate_health_rows(args.rows, seed=args.seed)
    fault_specs, outage_spec = _split_mix(args.fault_mix)
    config = ScenarioConfig(
        n_contributors=args.contributors,
        n_processors=args.processors,
        rows=rows,
        schema=HEALTH_SCHEMA,
        device_mix=(1.0, 0.0, 0.0),
        message_loss=args.message_loss,
        crash_probability=args.crash_probability,
        secure_channels=args.secure_channels,
        reliability=args.reliability,
        phase_deadline=args.phase_deadline,
        fault_specs=fault_specs,
        outage_spec=outage_spec,
        detector=args.detector,
        fencing=args.fencing,
        seed=args.seed,
    )
    telemetry = Telemetry()
    scenario = Scenario(config, telemetry=telemetry)
    compiled = _compile_from_args(args, "cli-run")
    result = scenario.run_compiled(compiled)
    if args.show_plan:
        print(render_plan(result.plan))
        print()
    print(render_report(result.report))
    _emit_telemetry(args, telemetry)
    if result.report.success and (compiled.order_by or compiled.limit is not None):
        print("  presented (ORDER BY / LIMIT applied):")
        for row in compiled.present(result.report.result.all_rows()):
            print(f"    {row}")
    if result.report.success:
        outcome = verify_against_centralized(
            result.report, compiled.spec.group_by, Relation(HEALTH_SCHEMA, rows)
        )
        print(
            f"  verification: exact={outcome.exact}, "
            f"mean rel. error={outcome.validity.mean_relative_error:.4f}"
        )
        print(f"  exposure: {result.exposure.summary()}")
        print(f"  liability: {result.liability.summary()}")
        return 0
    return 1


def _cmd_kmeans(args: argparse.Namespace) -> int:
    rows = generate_health_rows(args.rows, seed=args.seed)
    config = ScenarioConfig(
        n_contributors=args.contributors,
        n_processors=args.processors,
        rows=rows,
        schema=HEALTH_SCHEMA,
        device_mix=(1.0, 0.0, 0.0),
        seed=args.seed,
    )
    telemetry = Telemetry()
    scenario = Scenario(config, telemetry=telemetry)
    compiled = _compile_from_args(args, "cli-kmeans", kind="kmeans")
    result = scenario.run_compiled(compiled)
    print(render_report(result.report))
    _emit_telemetry(args, telemetry)
    if result.report.success and result.report.kmeans is not None:
        for centroid, weight in zip(
            result.report.kmeans.centroids, result.report.kmeans.weights
        ):
            values = ", ".join(f"{value:.2f}" for value in centroid)
            print(f"  centroid ({values})  weight {weight:.0f}")
        return 0
    return 1


def _cmd_explain(args: argparse.Namespace) -> int:
    import dataclasses

    substrate = SUBSTRATE_PROFILES[args.profile]
    overrides = {}
    if args.contributors is not None:
        overrides["n_contributors"] = args.contributors
    if args.processors is not None:
        overrides["n_processors"] = args.processors
    if overrides:
        substrate = dataclasses.replace(substrate, **overrides)
    compiled = _compile_from_args(
        args,
        "cli-explain",
        optimizer=OPTIMIZER_PINNED if args.pinned else OPTIMIZER_COST,
        substrate=substrate,
    )
    print(compiled.explain.render())
    return 0


def _cmd_resiliency(args: argparse.Namespace) -> int:
    print(f"{'fault rate':>12} {'m':>5} {'n+m':>5} {'P(success)':>12}")
    for fault_rate in (0.01, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5):
        m = minimum_overcollection(args.n, fault_rate, args.target_success)
        probability = query_success_probability(args.n, m, fault_rate)
        print(f"{fault_rate:>12.2f} {m:>5d} {args.n + m:>5d} {probability:>12.4f}")
    return 0


def _render_rows(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Minimal fixed-width table (the GUI substitute's summary view)."""
    cells = [[str(value) for value in row] for row in rows]
    widths = [
        max(len(header), *(len(row[i]) for row in cells)) if cells else len(header)
        for i, header in enumerate(headers)
    ]
    lines = [
        "  ".join(header.rjust(widths[i]) for i, header in enumerate(headers))
    ]
    lines.append("  ".join("-" * width for width in widths))
    for row in cells:
        lines.append("  ".join(row[i].rjust(widths[i]) for i in range(len(headers))))
    return "\n".join(lines)


def _cmd_chaos_replay(args: argparse.Namespace) -> int:
    from repro.chaos import ReproArtifact

    artifact = ReproArtifact.load(args.replay)
    print(f"replaying {args.replay}")
    print(f"  invariant: {artifact.invariant}")
    print(f"  mode:      {artifact.mode}")
    print(f"  detail:    {artifact.detail}")
    telemetry = Telemetry()
    outcome = artifact.replay(telemetry=telemetry)
    _emit_telemetry(args, telemetry)
    for violation in outcome.violations:
        print(f"  violated:  {violation.invariant} — {violation.detail}")
    if artifact.reproduced(outcome):
        print("  reproduced: yes (recorded invariant fired again)")
        return 1
    print("  reproduced: NO — the recorded invariant did not fire")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.chaos import (
        CampaignConfig,
        TopologySpec,
        run_campaign,
    )

    if args.replay:
        return _cmd_chaos_replay(args)
    if args.workload is not None:
        return _cmd_chaos_workload(args)

    strategies = (
        ("overcollection", "backup")
        if args.strategy == "both"
        else (args.strategy,)
    )
    fault_mix, outage_spec = _split_mix(args.fault_mix)
    fault_mix = fault_mix or ()
    config = CampaignConfig(
        seed=args.seed,
        runs=args.runs,
        strategies=strategies,
        crash_probabilities=args.failure_probability,
        disconnect_probability=args.disconnect_probability,
        message_loss=args.message_loss,
        fault_mixes=(fault_mix,),
        topologies=(
            TopologySpec(
                n_contributors=args.contributors,
                n_processors=args.processors,
                n_rows=args.rows,
            ),
        ),
        backup_replicas=args.backup_replicas,
        validity_tolerance=args.validity_tolerance,
        reliability=args.reliability,
        phase_deadline=args.phase_deadline,
        optimizer=args.optimizer,
        outage_spec=outage_spec,
        detector=args.detector,
        fencing=args.fencing,
        engine=args.engine,
        shrink=not args.no_shrink,
        shrink_budget=args.shrink_budget,
    )
    telemetry = Telemetry()
    result = run_campaign(config, telemetry=telemetry)
    print(
        f"chaos campaign: seed={config.seed} runs={config.runs} "
        f"strategies={','.join(strategies)}"
    )
    print(
        _render_rows(
            ["strategy", "crash p", "mix", "runs", "ok", "faults", "violations"],
            result.summary_rows(),
        )
    )
    for index, violation in result.violations:
        print(f"  run {index}: {violation.invariant} — {violation.detail}")
    if args.repro_out and result.artifacts:
        out_dir = Path(args.repro_out)
        out_dir.mkdir(parents=True, exist_ok=True)
        for index, artifact in enumerate(result.artifacts):
            path = out_dir / f"repro-{artifact.invariant}-{index:03d}.json"
            artifact.save(path)
            print(f"  artifact: {path} ({artifact.mode})")
    _emit_telemetry(args, telemetry)
    if result.ok:
        print("all invariants held")
        return 0
    print(f"{len(result.violations)} invariant violation(s)")
    return 1


def _cmd_chaos_workload(args: argparse.Namespace) -> int:
    from repro.chaos import (
        WorkloadChaosConfig,
        parse_fault_mix,
        run_workload,
        shrink_workload_plan,
    )
    from repro.workload import WorkloadSpec

    spec = WorkloadSpec(
        n_queries=args.workload,
        max_concurrent=args.workload_max_concurrent,
        queue_capacity=2 * args.workload_max_concurrent,
        seed=args.seed,
        reliability=args.reliability,
        engine=args.engine,
    )
    config = WorkloadChaosConfig(
        n_contributors=args.contributors,
        n_processors=args.processors,
        crash_probability=max(args.failure_probability),
        disconnect_probability=args.disconnect_probability,
        message_loss=args.message_loss,
        fault_specs=parse_fault_mix(args.fault_mix) if args.fault_mix else (),
        validity_tolerance=args.validity_tolerance,
    )
    telemetry = Telemetry()
    outcome = run_workload(spec, config, telemetry=telemetry)
    print(
        f"chaos workload: seed={spec.seed} queries={spec.n_queries} "
        f"max_concurrent={spec.max_concurrent} clean={outcome.clean}"
    )
    print(
        _render_rows(
            ["query", "outcome", "success", "degraded", "violations"],
            outcome.summary_rows(),
        )
    )
    summary = outcome.result.summary()
    print(
        f"  completed={summary['completed']} shed={summary['shed']} "
        f"throughput={summary['throughput']:.3f}/s "
        f"utilization={summary['utilization']:.2%}"
    )
    for query_id, violation in outcome.violations:
        print(f"  {query_id}: {violation.invariant} — {violation.detail}")
    if outcome.violations and not args.no_shrink:
        shrunk = shrink_workload_plan(
            spec, config, outcome, max_attempts=args.shrink_budget
        )
        if shrunk is None:
            print("  shrink: schedule does not reproduce as a scripted plan")
        else:
            print(f"  shrink: minimal failing plan {shrunk.to_dict()}")
    _emit_telemetry(args, telemetry)
    if outcome.ok:
        print("all invariants held for every query")
        return 0
    print(f"{len(outcome.violations)} invariant violation(s)")
    return 1


def _cmd_workload(args: argparse.Namespace) -> int:
    from repro.workload import WorkloadEngine, WorkloadSpec, serial_fingerprints

    spec = WorkloadSpec(
        n_queries=args.queries,
        arrival_process=args.arrival,
        arrival_rate=args.rate,
        target_in_flight=args.in_flight,
        max_concurrent=args.max_concurrent,
        queue_capacity=args.queue,
        backup_fraction=args.backup_fraction,
        seed=args.seed,
        snapshot_cardinality=args.cardinality,
        max_raw_per_edgelet=args.max_raw,
        collection_window=args.collection_window,
        deadline=args.deadline,
        reliability=args.reliability,
        engine=args.engine,
        sql=args.sql,
    )
    telemetry = Telemetry()
    engine = WorkloadEngine(
        spec,
        n_contributors=args.contributors,
        n_processors=args.processors,
        telemetry=telemetry,
        standby_count=args.standbys,
    )
    result = engine.run()
    summary = result.summary()
    print(
        f"workload: seed={spec.seed} queries={spec.n_queries} "
        f"arrival={spec.arrival_process} max_concurrent={spec.max_concurrent}"
    )
    print(
        _render_rows(
            ["arrivals", "admitted", "queued", "shed", "completed",
             "succeeded", "degraded"],
            [[summary["arrivals"], summary["admitted"], summary["queued"],
              summary["shed"], summary["completed"], summary["succeeded"],
              summary["degraded"]]],
        )
    )
    if result.latency_percentiles:
        print(
            f"  latency p50={result.latency_percentiles['p50']:.2f}s "
            f"p95={result.latency_percentiles['p95']:.2f}s "
            f"p99={result.latency_percentiles['p99']:.2f}s"
        )
    print(
        f"  elapsed={result.elapsed:.2f}s virtual, "
        f"throughput={result.throughput:.3f} queries/s, "
        f"device utilization={result.utilization:.2%}"
    )
    if args.per_query:
        rows = []
        for record in result.records:
            rows.append([
                record.arrival.query_id,
                record.arrival.strategy,
                record.outcome,
                "-" if record.arrived_at is None else f"{record.arrived_at:.2f}",
                "-" if record.latency is None else f"{record.latency:.2f}",
                len(record.leased),
            ])
        print(_render_rows(
            ["query", "strategy", "outcome", "arrived", "latency", "leased"],
            rows,
        ))
    exit_code = 0
    if args.serial_check:
        workload_prints = result.fingerprints()
        solo_prints = serial_fingerprints(engine, result)
        matches = sum(
            1 for qid, fp in workload_prints.items()
            if solo_prints.get(qid) == fp
        )
        print(
            f"  serial equivalence: {matches}/{len(workload_prints)} queries "
            f"byte-identical to their solo replays"
        )
        if matches != len(workload_prints):
            exit_code = 1
    _emit_telemetry(args, telemetry)
    if result.completed + result.shed != result.arrivals:
        exit_code = 1
    return exit_code


def _cmd_continuous(args: argparse.Namespace) -> int:
    from repro.continuous import StandingQuerySpec
    from repro.devices.churn import ChurnSpec

    spec = StandingQuerySpec(
        cadence=args.cadence,
        max_windows=args.windows,
        window=args.window,
        window_length=args.window_length,
        snapshot_cardinality=args.cardinality,
        max_raw_per_edgelet=args.max_raw,
        strategy=args.strategy,
        collection_window=args.collection_window,
        deadline=args.deadline,
        reliability=args.reliability,
        incremental=not args.full_recollection,
        engine=args.engine,
        seed=args.seed,
        sql=args.sql,
    )
    churn = None
    if args.churn > 0 or args.data_change > 0 or args.arrival_rate:
        churn = ChurnSpec(
            departure_probability=args.churn,
            contributor_arrival_rate=args.arrival_rate,
            data_change_probability=args.data_change,
            seed=args.seed,
        )
    telemetry = Telemetry()
    exit_code = 0
    if args.check_invariants:
        from repro.chaos import ContinuousChaosConfig, run_soak

        fault_specs, outage_spec = _split_mix(args.fault_mix)
        if outage_spec is not None:
            print(
                "continuous --fault-mix takes message knobs only; "
                "outage knobs need a resolved device population — "
                "use the chaos or run subcommands",
                file=sys.stderr,
            )
            return 2
        config = ContinuousChaosConfig(
            n_contributors=args.contributors,
            n_processors=args.processors,
            churn=churn,
            fault_specs=fault_specs or (),
            standby_count=args.standbys,
        )
        outcome = run_soak(spec, config, telemetry=telemetry)
        result = outcome.result
        print(
            f"continuous soak: seed={spec.seed} windows={spec.max_windows} "
            f"cadence={spec.cadence} churn={args.churn} clean={outcome.clean}"
        )
        if args.per_window:
            print(
                _render_rows(
                    ["window", "outcome", "success", "degraded", "coverage",
                     "violations"],
                    outcome.summary_rows(),
                )
            )
        for window_id, violation in outcome.violations:
            print(f"  {window_id}: {violation.invariant} — {violation.detail}")
        if outcome.ok:
            print("all invariants held for every window")
        else:
            print(f"{len(outcome.violations)} invariant violation(s)")
            exit_code = 1
    else:
        from repro.continuous import ContinuousEngine

        fault_specs, outage_spec = _split_mix(args.fault_mix)
        if outage_spec is not None:
            print(
                "continuous --fault-mix takes message knobs only; "
                "outage knobs need a resolved device population — "
                "use the chaos or run subcommands",
                file=sys.stderr,
            )
            return 2
        engine = ContinuousEngine(
            spec,
            churn=churn,
            n_contributors=args.contributors,
            n_processors=args.processors,
            telemetry=telemetry,
            standby_count=args.standbys,
            fault_specs=fault_specs,
        )
        result = engine.run()
        print(
            f"continuous: seed={spec.seed} windows={spec.max_windows} "
            f"cadence={spec.cadence} window={spec.window} "
            f"incremental={spec.incremental}"
        )
        if args.per_window:
            rows = []
            for record in result.windows:
                stats = record.incremental
                rows.append([
                    record.window_id,
                    record.outcome,
                    len(record.population),
                    len(record.eligible),
                    f"{record.overlap_with_previous:.2f}",
                    "-" if record.coverage is None else f"{record.coverage:.2f}",
                    stats.get("stamped", 0),
                    stats.get("full", 0),
                    record.window_bytes,
                ])
            print(_render_rows(
                ["window", "outcome", "pop", "eligible", "overlap",
                 "coverage", "stamped", "full", "bytes"],
                rows,
            ))
    summary = result.summary()
    print(
        f"  completed={summary['completed']} skipped={summary['skipped']} "
        f"empty={summary['empty']} succeeded={summary['succeeded']} "
        f"degraded={summary['degraded']}"
    )
    print(
        f"  population={summary['final_population']} "
        f"mean_overlap={summary['mean_overlap']:.2%} "
        f"mean_coverage={summary['mean_coverage']:.2%}"
    )
    print(
        f"  bytes/window={summary['bytes_per_window']:.0f} "
        f"messages/window={summary['messages_per_window']:.1f} "
        f"stamps={summary.get('incremental_stamped', 0)} "
        f"bytes_saved={summary.get('incremental_bytes_saved', 0)}"
    )
    _emit_telemetry(args, telemetry)
    if summary["completed"] + summary["skipped"] + summary["empty"] != spec.max_windows:
        exit_code = 1
    return exit_code


def _cmd_advise(args: argparse.Namespace) -> int:
    from repro.core.advisor import QueryProperties, recommend_strategy

    properties = QueryProperties(
        distributive=args.distributive,
        iterative=args.iterative,
        exact_result_required=args.exact,
    )
    recommendation = recommend_strategy(
        properties, n=args.n, fault_rate=args.fault_rate
    )
    print(f"strategy: {recommendation.strategy}")
    print(f"heartbeat execution: {recommendation.heartbeat_execution}")
    print(f"extra devices: {recommendation.extra_devices}")
    print(f"worst extra latency: {recommendation.worst_extra_latency:.0f}s")
    for reason in recommendation.reasons:
        print(f"  - {reason}")
    return 0


_COMMANDS = {
    "plan": _cmd_plan,
    "run": _cmd_run,
    "kmeans": _cmd_kmeans,
    "explain": _cmd_explain,
    "resiliency": _cmd_resiliency,
    "chaos": _cmd_chaos,
    "workload": _cmd_workload,
    "continuous": _cmd_continuous,
    "advise": _cmd_advise,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
