"""Long-soak chaos over standing queries: every window keeps every promise.

The workload module (:mod:`~repro.chaos.workload`) asks the concurrency
question over a frozen swarm.  This module asks the *longevity*
question: with a standing query re-executing for dozens of windows
while the population churns underneath **and** message faults gnaw at
the shared network, does every individual window still satisfy the full
invariant suite — Resiliency, Validity, Crowd Liability, dedup,
takeover?

One :func:`run_soak` call drives a
:class:`~repro.continuous.engine.ContinuousEngine` with the chaos hooks
installed, then rebuilds a per-window
:class:`~repro.chaos.invariants.RunRecord` for every completed window.
The validity oracle is rebuilt *per window* from the window's own
frozen row snapshot (``WindowRecord.rows``) — under churn there is no
single dataset to compare against, each window defines its own ground
truth.  On top of the per-window suite, three conservation identities
are checked once per run:

* window accounting — ``completed + skipped + empty == windows``;
* admission accounting — ``completed + shed == offered``;
* lease conservation — no retired device holds a lease, and every
  forcibly-reclaimed lease is on the flagged audit trail.

Everything is a pure function of ``(spec, churn, chaos knobs)``: the
same soak reproduces bit-for-bit, per-window lineage fingerprints
included.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.chaos.invariants import RunRecord, Violation, check_all
from repro.continuous.engine import (
    COMPLETED,
    ContinuousEngine,
    ContinuousResult,
)
from repro.continuous.spec import StandingQuerySpec
from repro.core.liability import measure_liability
from repro.core.privacy import measure_exposure
from repro.devices.churn import ChurnSpec
from repro.network.failures import FailurePlan
from repro.network.faults import FaultSpec
from repro.query.engine import CentralizedEngine
from repro.query.relation import Relation

__all__ = [
    "ContinuousChaosConfig",
    "SoakOutcome",
    "WindowOutcome",
    "run_soak",
]


@dataclass(frozen=True)
class ContinuousChaosConfig:
    """Chaos + churn knobs layered over one standing-query run.

    All fields default to "off": a config with everything off is a
    clean frozen-population run, and the invariant suite then holds
    every window to the *exact* clean-run bar.
    """

    n_contributors: int = 24
    n_processors: int = 48
    rows_per_contributor: int = 2
    churn: ChurnSpec | None = None
    crash_probability: float = 0.0
    disconnect_probability: float = 0.0
    disconnect_duration: float = 10.0
    message_loss: float = 0.0
    fault_specs: tuple[FaultSpec, ...] = ()
    failure_plan: FailurePlan | None = None
    outage_plan: Any = None
    standby_count: int = 0
    validity_tolerance: float = 0.75
    liability_max_share: float = 0.5

    @property
    def any_chaos(self) -> bool:
        return bool(
            self.crash_probability > 0
            or self.disconnect_probability > 0
            or self.message_loss > 0
            or self.fault_specs
            or self.failure_plan is not None
            or self.outage_plan is not None
        )


@dataclass
class WindowOutcome:
    """One window's invariant verdicts."""

    window_id: str
    index: int
    outcome: str
    violations: list[Violation] = field(default_factory=list)
    success: bool | None = None
    degraded: bool | None = None
    coverage: float | None = None

    @property
    def ok(self) -> bool:
        return not self.violations


@dataclass
class SoakOutcome:
    """Everything one standing-query soak produced."""

    spec: StandingQuerySpec
    config: ContinuousChaosConfig
    result: ContinuousResult
    windows: list[WindowOutcome]
    failure_events: list[Any]
    clean: bool

    @property
    def violations(self) -> list[tuple[str, Violation]]:
        found = []
        for window in self.windows:
            for violation in window.violations:
                found.append((window.window_id, violation))
        return found

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary_rows(self) -> list[list[Any]]:
        """Per-window roll-up for the CLI table."""
        rows = []
        for window in self.windows:
            rows.append(
                [
                    window.window_id,
                    window.outcome,
                    "-" if window.success is None else ("yes" if window.success else "NO"),
                    "-" if window.degraded is None else ("yes" if window.degraded else "no"),
                    "-" if window.coverage is None else f"{window.coverage:.2f}",
                    len(window.violations),
                ]
            )
        return rows


@dataclass
class _WindowRunResult:
    """Adapter giving one window the shape the
    :class:`~repro.chaos.invariants.RunRecord` checks expect of a
    :class:`~repro.manager.scenario.ScenarioResult`."""

    report: Any
    plan: Any
    executor: Any
    exposure: Any
    liability: Any
    failure_events: list[Any]
    fault_injector: Any
    transport: Any = None


def _collect_failure_events(engine: ContinuousEngine) -> list[Any]:
    events = list(engine.scripted_events)
    events.extend(engine.outage_events)
    if engine.injector is not None:
        events.extend(engine.injector.events)
    events.sort(key=lambda e: e.time)
    return events


def _window_reference(engine: ContinuousEngine, rows: list[dict[str, Any]]):
    """The centralized oracle over *this window's* frozen snapshot."""
    oracle = CentralizedEngine()
    oracle.register(
        "data", Relation(engine.scenario_config.schema, rows)
    )
    return oracle.execute_logical("data", engine.group_by)


def run_soak(
    spec: StandingQuerySpec,
    config: ContinuousChaosConfig | None = None,
    telemetry: Any = None,
) -> SoakOutcome:
    """Run one standing query under churn + chaos; check every window.

    The shared failure-event log and fault injector are attached to
    every window's record — a fault anywhere on the shared substrate
    (including a message to a *departed* device) can legitimately
    explain any window's degradation, so the one-sided invariant checks
    must see the whole log, not a per-window slice.
    """
    if config is None:
        config = ContinuousChaosConfig()
    if telemetry is None:
        from repro.telemetry import Telemetry

        telemetry = Telemetry()
    engine = ContinuousEngine(
        spec,
        churn=config.churn,
        n_contributors=config.n_contributors,
        n_processors=config.n_processors,
        rows_per_contributor=config.rows_per_contributor,
        telemetry=telemetry,
        standby_count=config.standby_count,
        fault_specs=config.fault_specs or None,
        failure_plan=config.failure_plan,
        outage_plan=config.outage_plan,
        crash_probability=config.crash_probability,
        disconnect_probability=config.disconnect_probability,
        disconnect_duration=config.disconnect_duration,
        message_loss=config.message_loss,
    )
    result = engine.run()
    failure_events = _collect_failure_events(engine)
    fault_injector = engine.scenario.network.faults
    network_stats = engine.scenario.network.stats.as_dict()
    loss_keys = (
        "lost",
        "dropped_timeout",
        "no_route",
        "to_dead_device",
        "departed",
        "fault_dropped",
        "fault_corrupted",
        "fault_duplicated",
        "fault_delayed",
        "partitioned",
        "gray_lost",
    )
    any_churn_events = any(
        w.churn is not None and w.churn.any_events for w in result.windows
    )
    # clean is a *post hoc* verdict: churn events count as chaos — a
    # departure mid-collection is indistinguishable from a crash to the
    # affected window, so any churn demotes every window to the
    # tolerance-bound checks (the substrate is shared across windows)
    clean = (
        not config.any_chaos
        and not any_churn_events
        and not failure_events
        and not (fault_injector is not None and fault_injector.decisions)
        and all(not network_stats.get(key, 0) for key in loss_keys)
    )
    windows: list[WindowOutcome] = []
    for record in result.windows:
        if record.outcome != COMPLETED:
            windows.append(
                WindowOutcome(
                    window_id=record.window_id,
                    index=record.index,
                    outcome=record.outcome,
                )
            )
            continue
        run_result = _WindowRunResult(
            report=record.report,
            plan=record.plan,
            executor=record.executor,
            exposure=measure_exposure(record.plan),
            liability=measure_liability(
                record.plan, tuples_per_device=record.report.tuples_per_device
            ),
            failure_events=failure_events,
            fault_injector=fault_injector,
            transport=record.transport,
        )
        violations = check_all(
            RunRecord(
                result=run_result,
                reference=_window_reference(engine, record.rows),
                strategy=spec.strategy,
                clean=clean,
                validity_tolerance=config.validity_tolerance,
                liability_max_share=config.liability_max_share,
            )
        )
        windows.append(
            WindowOutcome(
                window_id=record.window_id,
                index=record.index,
                outcome=record.outcome,
                violations=violations,
                success=record.report.success,
                degraded=record.report.degraded,
                coverage=record.coverage,
            )
        )
    for extra in (
        _check_window_conservation(result),
        _check_lease_conservation(engine),
    ):
        if extra is not None:
            windows.append(extra)
    return SoakOutcome(
        spec=spec,
        config=config,
        result=result,
        windows=windows,
        failure_events=failure_events,
        clean=clean,
    )


def _check_window_conservation(result: ContinuousResult) -> WindowOutcome | None:
    """Every window in the horizon reached exactly one terminal state."""
    total = result.completed + result.skipped + result.empty
    if total == len(result.windows):
        return None
    return WindowOutcome(
        window_id="<windows>",
        index=-1,
        outcome="accounting",
        violations=[
            Violation(
                "window_conservation",
                f"completed ({result.completed}) + skipped ({result.skipped})"
                f" + empty ({result.empty}) != windows ({len(result.windows)})",
                {
                    "completed": result.completed,
                    "skipped": result.skipped,
                    "empty": result.empty,
                    "windows": len(result.windows),
                },
            )
        ],
    )


def _check_lease_conservation(engine: ContinuousEngine) -> WindowOutcome | None:
    """No retired device holds a lease; reclaimed leases are flagged."""
    violations: list[Violation] = []
    registry = engine.registry
    for device_id in registry.retired:
        holder = registry.holder(device_id)
        if holder is not None:
            violations.append(
                Violation(
                    "lease_conservation",
                    f"retired device {device_id} still leased to {holder}",
                    {"device": device_id, "holder": holder},
                )
            )
    for device_id, query_id in registry.flagged:
        if device_id not in registry.retired:
            violations.append(
                Violation(
                    "lease_conservation",
                    f"flagged lease ({device_id}, {query_id}) but the "
                    "device was never retired",
                    {"device": device_id, "query": query_id},
                )
            )
    if not violations:
        return None
    return WindowOutcome(
        window_id="<leases>",
        index=-1,
        outcome="accounting",
        violations=violations,
    )
