"""repro.chaos — seeded chaos campaigns with invariant checking.

The verification muscle behind the paper's failure demonstrations:
message-level fault injection on the opportunistic network
(:mod:`~repro.chaos.faults`), executable Resiliency / Validity / Crowd
Liability invariants (:mod:`~repro.chaos.invariants`), deterministic
seeded campaign sweeps (:mod:`~repro.chaos.campaign`), failure-schedule
shrinking (:mod:`~repro.chaos.shrink`), replayable JSON repro
artifacts (:mod:`~repro.chaos.artifact`), chaos over concurrent
multi-query workloads with per-query invariant verdicts
(:mod:`~repro.chaos.workload`), and long-soak chaos over standing
queries with per-window verdicts under population churn
(:mod:`~repro.chaos.continuous`).
"""

from repro.chaos.artifact import ReproArtifact
from repro.chaos.continuous import (
    ContinuousChaosConfig,
    SoakOutcome,
    WindowOutcome,
    run_soak,
)
from repro.chaos.campaign import (
    CampaignConfig,
    CampaignResult,
    RunOutcome,
    RunSpec,
    TopologySpec,
    run_campaign,
    run_single,
)
from repro.network.faults import (
    FaultDecision,
    FaultSpec,
    MessageFaultInjector,
    corrupt_payload,
    fault_mix_help,
    parse_fault_mix,
)
from repro.network.outages import (
    GrayWindow,
    OutagePlan,
    OutageSpec,
    Partition,
    RegionalCrash,
    build_outage_plan,
    parse_outage_mix,
    split_chaos_mix,
)
from repro.chaos.invariants import (
    INVARIANTS,
    RunRecord,
    Violation,
    check_all,
)
from repro.chaos.shrink import (
    failure_plan_from_events,
    shrink_failure_plan,
    shrink_outage_plan,
)
from repro.chaos.workload import (
    QueryOutcome,
    WorkloadChaosConfig,
    WorkloadChaosOutcome,
    run_workload,
    shrink_workload_plan,
    workload_failure_predicate,
)

__all__ = [
    "CampaignConfig",
    "CampaignResult",
    "ContinuousChaosConfig",
    "FaultDecision",
    "FaultSpec",
    "GrayWindow",
    "INVARIANTS",
    "MessageFaultInjector",
    "OutagePlan",
    "OutageSpec",
    "Partition",
    "QueryOutcome",
    "RegionalCrash",
    "ReproArtifact",
    "RunOutcome",
    "RunRecord",
    "RunSpec",
    "SoakOutcome",
    "TopologySpec",
    "Violation",
    "WindowOutcome",
    "WorkloadChaosConfig",
    "WorkloadChaosOutcome",
    "build_outage_plan",
    "check_all",
    "corrupt_payload",
    "failure_plan_from_events",
    "fault_mix_help",
    "parse_fault_mix",
    "parse_outage_mix",
    "run_campaign",
    "run_single",
    "run_soak",
    "run_workload",
    "shrink_failure_plan",
    "shrink_outage_plan",
    "shrink_workload_plan",
    "split_chaos_mix",
    "workload_failure_predicate",
]
