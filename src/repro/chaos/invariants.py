"""Property invariants checked after every chaos run.

The paper claims three properties for Edgelet query processing —
Resiliency, Validity, and Crowd Liability — and the execution machinery
implicitly relies on two more mechanical ones (Combiner partial
recording is dedup-idempotent; a backup chain never produces two
takeovers at the same rank).  This module turns each claim into an
executable check over a finished :class:`~repro.manager.scenario.
ScenarioResult`, so a campaign can assert them after every seeded run.

The checks are deliberately *one-sided*: they only flag states the
strategies promise can never happen, never mere degradation the fault
load legitimately explains.  A lossy run that misses groups is graceful
degradation; a fault-free run that fails, or a corrupted value past the
approximation bound, is a violation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.validity import compare_results

__all__ = [
    "Violation",
    "RunRecord",
    "check_resiliency",
    "check_validity",
    "check_crowd_liability",
    "check_combiner_dedup",
    "check_no_double_takeover",
    "check_no_split_brain",
    "check_all",
    "INVARIANTS",
]

# float slack for "exact" comparisons: partial states merge in a
# different order than one centralized pass, so bit-equality is not the
# meaningful criterion (mirrors ValidityReport.exact_match)
EXACT_TOLERANCE = 1e-9


@dataclass(frozen=True)
class Violation:
    """One invariant breach found in one run."""

    invariant: str
    detail: str
    data: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {"invariant": self.invariant, "detail": self.detail, "data": self.data}


@dataclass
class RunRecord:
    """Everything the invariant checks need to know about one run.

    Attributes:
        result: the finished scenario result (report, plan, executor,
            failure/fault logs).
        reference: the fault-free centralized result of the same logical
            query over the full dataset, or ``None`` for non-aggregate
            runs.
        strategy: ``"overcollection"`` or ``"backup"``.
        clean: whether the run experienced *no* failure or fault of any
            kind (no crash/disconnect events, no injected message
            faults, no network loss of any category) — clean runs must
            succeed exactly.
        validity_tolerance: max relative error tolerated on shared
            cells for non-clean runs (the plan's approximation bound).
        liability_max_share: cap on a single device's share of the
            data-processor operators.
    """

    result: Any
    reference: Any = None
    strategy: str = "overcollection"
    clean: bool = False
    validity_tolerance: float = 0.75
    liability_max_share: float = 0.5


def _network_losses(report: Any) -> dict[str, float]:
    stats = report.network_stats or {}
    return {
        key: stats.get(key, 0)
        for key in (
            "lost",
            "dropped_timeout",
            "no_route",
            "to_dead_device",
            "departed",
            "fault_dropped",
            "fault_corrupted",
            "partitioned",
            "gray_lost",
        )
    }


def check_resiliency(record: RunRecord) -> Violation | None:
    """The query completes, or fails only for causes the fault load
    explains (Resiliency: "the query is executed to completion despite
    failures" — up to the plan's tolerance).

    Two violation modes:

    * a **clean** run did not succeed — nothing failed, so nothing may
      be degraded;
    * a crash-only run failed although the damage stayed within the
      plan's tolerance: the querier is alive, some combiner device is
      alive and heard at least one partial for every vertical group,
      and no message-level loss mechanism was active.
    """
    result = record.result
    report = result.report
    if report.success and report.result is not None:
        return None
    if report.success and report.result is None and report.kmeans is None:
        return Violation(
            "resiliency",
            "querier acknowledged a final result but the report carries none",
        )
    if record.clean:
        return Violation(
            "resiliency",
            "fault-free run did not complete",
            {"network": _network_losses(report)},
        )

    executor = result.executor
    events = result.failure_events or []
    kinds = {event.kind for event in events}
    message_level_active = (
        any(_network_losses(report).values())
        or result.fault_injector is not None
        and bool(result.fault_injector.decisions)
        or "disconnect" in kinds
    )
    if message_level_active or executor is None:
        return None  # loss/offline windows legitimately explain failure

    from repro.core.qep import OperatorRole

    network = executor.network
    querier_ops = result.plan.operators(OperatorRole.QUERIER)
    querier_device = querier_ops[0].assigned_to if querier_ops else None
    if querier_device is None or network.is_dead(querier_device):
        return None
    for name, runtime in getattr(executor, "_combiners", {}).items():
        combiner_op = result.plan.operator(name)
        if combiner_op.assigned_to is None:
            continue
        if not network.is_online(combiner_op.assigned_to):
            continue
        tallies = runtime.group_tallies
        if tallies and all(t.received_count > 0 for t in tallies):
            worst = min(tallies, key=lambda t: t.received_count)
            if worst.lost_count <= worst.config.m:
                return Violation(
                    "resiliency",
                    f"damage within tolerance (lost {worst.lost_count} <= "
                    f"m={worst.config.m} at live {name}) but the query failed",
                    {"combiner": name, "tally": runtime.tally_summary()},
                )
    return None


def check_validity(record: RunRecord) -> Violation | None:
    """The delivered result matches the centralized oracle (Validity).

    Clean runs must match exactly (up to float merge-order round-off).
    Faulty runs are held to the plan's approximation bound on the cells
    both results share; groups entirely lost to failures are graceful
    degradation, not invalidity — but a surviving cell further from the
    oracle than ``validity_tolerance`` means a wrong answer was
    delivered as if it were right.
    """
    report = record.result.report
    if not report.success or report.result is None or record.reference is None:
        return None
    tally = getattr(report, "tally", None)
    if not record.clean and tally and not tally.get("valid", True):
        # the combiner extrapolated past its own validity condition
        # (lost > m) and the tally labels the result invalid: it was
        # *not* delivered "as if it were right", so bounding its error
        # is the consumer's job, not a violation
        return None
    # a degraded report explicitly labels the cells it could not cover;
    # hold it to the bound only on the cells it did deliver
    comparison = compare_results(
        record.reference,
        report.result,
        ignore_missing_cells=bool(getattr(report, "degraded", False)),
    )
    if record.clean:
        if not comparison.is_valid(EXACT_TOLERANCE):
            return Violation(
                "validity",
                "fault-free result differs from the centralized oracle",
                {"comparison": comparison.summary()},
            )
        return None
    if comparison.max_relative_error > record.validity_tolerance:
        return Violation(
            "validity",
            f"shared-cell relative error {comparison.max_relative_error:.4g} "
            f"exceeds the approximation bound {record.validity_tolerance}",
            {"comparison": comparison.summary()},
        )
    return None


def check_crowd_liability(record: RunRecord) -> Violation | None:
    """No single device concentrates the processing (Crowd Liability).

    Two sub-checks: the assignment keeps every device's operator share
    under ``liability_max_share``, and no device *handled* more raw
    tuples than the plan's exposure bound allows for the operators it
    hosts (``max_raw_tuples_per_edgelet`` per raw-handling operator).
    """
    result = record.result
    liability = result.liability
    exposure = result.exposure
    if liability is None or exposure is None:
        return None
    if not liability.is_crowd_liable(record.liability_max_share):
        return Violation(
            "crowd_liability",
            f"one device carries {liability.max_share:.2%} of the operators "
            f"(cap {record.liability_max_share:.2%})",
            {"liability": liability.summary()},
        )
    cap_per_op = exposure.max_raw_tuples_per_edgelet
    for device, tuples in (result.report.tuples_per_device or {}).items():
        ops = liability.operators_per_device.get(device, 0)
        allowed = cap_per_op * max(ops, 0)
        if tuples > allowed:
            return Violation(
                "crowd_liability",
                f"device {device} handled {tuples} raw tuples, above its "
                f"exposure cap {allowed} ({ops} ops x {cap_per_op})",
                {"device": device, "tuples": tuples, "cap": allowed},
            )
    return None


def check_combiner_dedup(record: RunRecord) -> Violation | None:
    """Recording every received partial twice must not change the final
    result — the idempotence Overcollection and Backup both lean on
    when markers are lost and duplicates reach the Combiner.
    """
    executor = record.result.executor
    if executor is None or getattr(executor, "kind", None) != "aggregate":
        return None
    if executor.query is None:
        return None
    from repro.core.runtime import CombinerState

    indices = executor.aggregate_indices_per_group
    for name, runtime in executor.combiners.items():
        if not runtime.partials:
            continue
        once = CombinerState(
            name, runtime.config, runtime.n_groups, executor.query,
            runtime.extrapolate,
        )
        twice = CombinerState(
            name, runtime.config, runtime.n_groups, executor.query,
            runtime.extrapolate,
        )
        for (partition, group), partial in sorted(runtime.partials.items()):
            once.record_partial(partition, group, partial)
            twice.record_partial(partition, group, partial)
            twice.record_partial(partition, group, partial)
        result_once = once.finalize_aggregate(indices)
        result_twice = twice.finalize_aggregate(indices)
        if (result_once is None) != (result_twice is None):
            return Violation(
                "combiner_dedup",
                f"{name}: duplicate recording changed finalizability",
            )
        if result_once is None:
            continue
        comparison = compare_results(result_once, result_twice)
        if not comparison.is_valid(EXACT_TOLERANCE):
            return Violation(
                "combiner_dedup",
                f"{name}: duplicate partial recording changed the result",
                {"comparison": comparison.summary()},
            )
    return None


def check_no_double_takeover(record: RunRecord) -> Violation | None:
    """A backup chain fires at most one takeover per (base, rank) — a
    duplicate means the same replica executed twice."""
    executor = record.result.executor
    log = getattr(executor, "takeover_log", None)
    if not log:
        return None
    seen: set[tuple[str, int]] = set()
    for _time, base, rank in log:
        if (base, rank) in seen:
            return Violation(
                "no_double_takeover",
                f"replica rank {rank} of {base} took over twice",
                {"takeover_log": [list(entry) for entry in log]},
            )
        seen.add((base, rank))
    return None


def check_no_split_brain(record: RunRecord) -> Violation | None:
    """No cell is ever owned by two devices at the same generation with
    both owners' partials reaching a combiner (split-brain-safe
    takeover).

    Evidence comes from the runtime's always-on logs: ``fire_log``
    records every partial-send fire ``(time, cell, device,
    generation)``; ``arrival_log`` records every combiner-side arrival
    with its acceptance disposition.  Two violation modes:

    * two *distinct* devices fired the same cell at the *same*
      generation and both their partials arrived at one combiner — the
      combiner's pick is then arrival-order-dependent, which is exactly
      the ambiguity fencing exists to remove (with fencing off this is
      the expected failure of a reprovision racing a healed partition;
      the negative harness test asserts the check catches it);
    * with fencing on, a combiner retained a *stale* generation: the
      generation it finally holds for a cell is lower than the highest
      generation that arrived there — monotone fenced acceptance broke.

    Duplicates from a single device (retransmission, dual-combiner
    fan-out) and backup replicas firing at distinct ranks/generations
    are legitimate and never flagged.
    """
    executor = record.result.executor
    fire_log = getattr(executor, "fire_log", None)
    arrival_log = getattr(executor, "arrival_log", None)
    if not fire_log or arrival_log is None:
        return None
    ctx = getattr(executor, "ctx", None)
    fencing = bool(getattr(ctx, "fencing", False))
    detector = bool(getattr(ctx, "detector", None))
    events = getattr(record.result, "failure_events", None) or []
    outage_active = any(
        getattr(event, "kind", "") in ("partition_start", "gray_start")
        for event in events
    )
    if not (fencing or detector or outage_active):
        # legacy churn (plain disconnect/reconnect) predates fencing;
        # its reprovision-vs-reconnect race is known, benign (both
        # partials are identical), and not what this invariant guards
        return None

    firers: dict[tuple[Any, int], set[str]] = {}
    for _time, cell, device, generation in fire_log:
        firers.setdefault((cell, generation), set()).add(device)
    arrivals: dict[tuple[str, Any], dict[int, set[str]]] = {}
    for _time, cell, op_id, sender, generation, _disposition in arrival_log:
        arrivals.setdefault((op_id, cell), {}).setdefault(
            generation, set()
        ).add(sender)

    for (op_id, cell), by_generation in sorted(arrivals.items()):
        for generation, senders in sorted(by_generation.items()):
            fired = firers.get((cell, generation), set())
            if len(senders) >= 2 and len(fired) >= 2:
                return Violation(
                    "no_split_brain",
                    f"cell {cell} owned by {sorted(senders)} at the same "
                    f"generation {generation}; both partials reached "
                    f"{op_id}",
                    {
                        "cell": list(cell),
                        "generation": generation,
                        "senders": sorted(senders),
                        "combiner": op_id,
                        "fencing": fencing,
                    },
                )

    if fencing:
        for name, state in getattr(executor, "combiners", {}).items():
            accepted = getattr(state, "accepted_generations", {})
            for (op_id, cell), by_generation in arrivals.items():
                if op_id != name:
                    continue
                held = accepted.get(cell)
                highest = max(by_generation)
                if held is not None and held < highest:
                    return Violation(
                        "no_split_brain",
                        f"{name} holds cell {cell} at stale generation "
                        f"{held} although generation {highest} arrived",
                        {
                            "cell": list(cell),
                            "held": held,
                            "highest_arrived": highest,
                            "combiner": name,
                        },
                    )
    return None


INVARIANTS = {
    "resiliency": check_resiliency,
    "validity": check_validity,
    "crowd_liability": check_crowd_liability,
    "combiner_dedup": check_combiner_dedup,
    "no_double_takeover": check_no_double_takeover,
    "no_split_brain": check_no_split_brain,
}


def check_all(record: RunRecord) -> list[Violation]:
    """Run every invariant; returns the violations found (often [])."""
    violations = []
    for check in INVARIANTS.values():
        violation = check(record)
        if violation is not None:
            violations.append(violation)
    return violations
