"""Chaos campaigns over *concurrent* workloads.

The single-query campaign (:mod:`~repro.chaos.campaign`) answers "does
one execution keep its promises under faults?".  This module asks the
harder multiplexed question: with N queries in flight over one shared
swarm, faults injected into the shared network and device population,
does **every** query still keep them *individually*?

One :func:`run_workload` call drives a
:class:`~repro.workload.engine.WorkloadEngine` with the chaos hooks
installed (scripted :class:`~repro.network.failures.FailurePlan`,
stochastic crash/disconnect injector, message-fault injector, plain
message loss), then rebuilds a per-query
:class:`~repro.chaos.invariants.RunRecord` for every completed query —
exposure and liability measured on *that query's* plan, validity
compared against the shared centralized oracle — and runs the full
invariant suite on each.  The workload-level conservation identity
(``shed + completed == arrivals``) is checked as a sixth invariant.

Everything stays a pure function of ``(spec, chaos knobs)``: the same
workload-chaos run reproduces bit-for-bit, which is what
:func:`shrink_workload_plan` leans on to reduce a failing schedule to a
minimal :class:`FailurePlan` by re-running the whole workload.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.network.faults import FaultSpec
from repro.chaos.invariants import RunRecord, Violation, check_all
from repro.chaos.shrink import failure_plan_from_events, shrink_failure_plan
from repro.core.liability import measure_liability
from repro.core.privacy import measure_exposure
from repro.network.failures import FailurePlan
from repro.plan.compile import compile_query
from repro.workload.engine import COMPLETED, WorkloadEngine, WorkloadResult
from repro.workload.spec import WorkloadSpec

__all__ = [
    "WorkloadChaosConfig",
    "QueryOutcome",
    "WorkloadChaosOutcome",
    "run_workload",
    "shrink_workload_plan",
    "workload_failure_predicate",
]


@dataclass(frozen=True)
class WorkloadChaosConfig:
    """Chaos knobs layered over one workload run.

    All fields default to "off"; a config with everything off is a
    plain (clean) workload run, and the invariant suite then holds each
    query to the *exact* clean-run bar.
    """

    n_contributors: int = 24
    n_processors: int = 40
    crash_probability: float = 0.0
    disconnect_probability: float = 0.0
    disconnect_duration: float = 10.0
    message_loss: float = 0.0
    fault_specs: tuple[FaultSpec, ...] = ()
    failure_plan: FailurePlan | None = None
    standby_count: int = 0
    validity_tolerance: float = 0.75
    liability_max_share: float = 0.5

    @property
    def any_chaos(self) -> bool:
        return bool(
            self.crash_probability > 0
            or self.disconnect_probability > 0
            or self.message_loss > 0
            or self.fault_specs
            or self.failure_plan is not None
        )


@dataclass
class QueryOutcome:
    """One workload query's invariant verdicts."""

    query_id: str
    outcome: str
    violations: list[Violation] = field(default_factory=list)
    success: bool | None = None
    degraded: bool | None = None

    @property
    def ok(self) -> bool:
        return not self.violations


@dataclass
class WorkloadChaosOutcome:
    """Everything one workload-chaos run produced."""

    spec: WorkloadSpec
    config: WorkloadChaosConfig
    result: WorkloadResult
    queries: list[QueryOutcome]
    failure_events: list[Any]
    clean: bool

    @property
    def violations(self) -> list[tuple[str, Violation]]:
        found = []
        for query in self.queries:
            for violation in query.violations:
                found.append((query.query_id, violation))
        return found

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary_rows(self) -> list[list[Any]]:
        """Per-query roll-up for the CLI table."""
        rows = []
        for query in self.queries:
            rows.append(
                [
                    query.query_id,
                    query.outcome,
                    "-" if query.success is None else ("yes" if query.success else "NO"),
                    "-" if query.degraded is None else ("yes" if query.degraded else "no"),
                    len(query.violations),
                ]
            )
        return rows


@dataclass
class _QueryRunResult:
    """Adapter giving one workload query the shape
    :class:`~repro.chaos.invariants.RunRecord` checks expect of a
    :class:`~repro.manager.scenario.ScenarioResult`."""

    report: Any
    plan: Any
    executor: Any
    exposure: Any
    liability: Any
    failure_events: list[Any]
    fault_injector: Any
    transport: Any = None


def _collect_failure_events(engine: WorkloadEngine) -> list[Any]:
    events = list(engine.scripted_events)
    if engine.injector is not None:
        events.extend(engine.injector.events)
    events.sort(key=lambda e: e.time)
    return events


def run_workload(
    spec: WorkloadSpec,
    config: WorkloadChaosConfig | None = None,
    telemetry: Any = None,
) -> WorkloadChaosOutcome:
    """Run one workload under chaos and check every invariant per query.

    The shared failure-event log and fault injector are attached to
    every query's record: a fault anywhere on the shared substrate can
    legitimately explain any query's degradation, so the one-sided
    invariant checks must see the whole log, not a per-query slice.
    """
    if config is None:
        config = WorkloadChaosConfig()
    if telemetry is None:
        from repro.telemetry import Telemetry

        telemetry = Telemetry()
    # dataset sized to half the snapshot cardinality: hash-imbalanced
    # partitions then never hit the C/n cap, so a *clean* run is exact
    # against the centralized oracle — the strict validity invariant
    # depends on that (same calibration as the single-query campaign)
    from repro.data.health import generate_health_rows

    rows = generate_health_rows(
        max(1, spec.snapshot_cardinality // 2), seed=spec.seed
    )
    engine = WorkloadEngine(
        spec,
        n_contributors=config.n_contributors,
        n_processors=config.n_processors,
        rows=rows,
        telemetry=telemetry,
        standby_count=config.standby_count,
        fault_specs=config.fault_specs or None,
        failure_plan=config.failure_plan,
        crash_probability=config.crash_probability,
        disconnect_probability=config.disconnect_probability,
        disconnect_duration=config.disconnect_duration,
        message_loss=config.message_loss,
    )
    result = engine.run()
    failure_events = _collect_failure_events(engine)
    fault_injector = engine.scenario.network.faults
    # clean is a *post hoc* verdict, like the campaign's: the shared
    # opportunistic network is lossy by design, so any loss anywhere in
    # the workload demotes every query to the tolerance-bound checks
    # (network stats are substrate-wide, not per query)
    network_stats = engine.scenario.network.stats.as_dict()
    loss_keys = (
        "lost",
        "dropped_timeout",
        "no_route",
        "to_dead_device",
        "fault_dropped",
        "fault_corrupted",
        "fault_duplicated",
        "fault_delayed",
    )
    clean = (
        not config.any_chaos
        and not failure_events
        and not (fault_injector is not None and fault_injector.decisions)
        and all(not network_stats.get(key, 0) for key in loss_keys)
    )
    oracle = compile_query(
        spec.sql,
        query_id="workload-oracle",
        snapshot_cardinality=spec.snapshot_cardinality,
    )
    reference = engine.scenario.centralized_result(oracle.spec)
    queries: list[QueryOutcome] = []
    for record in result.records:
        query_id = record.arrival.query_id
        if record.outcome != COMPLETED:
            queries.append(QueryOutcome(query_id=query_id, outcome=record.outcome))
            continue
        run_result = _QueryRunResult(
            report=record.report,
            plan=record.plan,
            executor=record.executor,
            exposure=measure_exposure(record.plan),
            liability=measure_liability(
                record.plan, tuples_per_device=record.report.tuples_per_device
            ),
            failure_events=failure_events,
            fault_injector=fault_injector,
            transport=record.transport,
        )
        violations = check_all(
            RunRecord(
                result=run_result,
                reference=reference,
                strategy=record.arrival.strategy,
                clean=clean,
                validity_tolerance=config.validity_tolerance,
                liability_max_share=config.liability_max_share,
            )
        )
        queries.append(
            QueryOutcome(
                query_id=query_id,
                outcome=record.outcome,
                violations=violations,
                success=record.report.success,
                degraded=record.report.degraded,
            )
        )
    conservation = _check_conservation(result)
    if conservation is not None:
        queries.append(conservation)
    return WorkloadChaosOutcome(
        spec=spec,
        config=config,
        result=result,
        queries=queries,
        failure_events=failure_events,
        clean=clean,
    )


def _check_conservation(result: WorkloadResult) -> QueryOutcome | None:
    """The workload-level accounting identity, as a pseudo-query."""
    if result.shed + result.completed == result.arrivals:
        return None
    return QueryOutcome(
        query_id="<workload>",
        outcome="accounting",
        violations=[
            Violation(
                "workload_conservation",
                f"shed ({result.shed}) + completed ({result.completed}) "
                f"!= arrivals ({result.arrivals})",
                {
                    "shed": result.shed,
                    "completed": result.completed,
                    "arrivals": result.arrivals,
                },
            )
        ],
    )


def workload_failure_predicate(
    spec: WorkloadSpec,
    config: WorkloadChaosConfig,
    failing: Callable[[WorkloadChaosOutcome], bool] | None = None,
) -> Callable[[FailurePlan], bool]:
    """Build the shrinker's predicate over whole-workload re-runs.

    A candidate plan reproduces when the workload — re-run with *only*
    that scripted plan (stochastic injectors off, so the shrunk
    artifact is self-contained) — still satisfies ``failing``.  The
    default criterion is "some query fails or some invariant fires".
    """
    if failing is None:
        failing = lambda outcome: (  # noqa: E731
            any(q.success is False for q in outcome.queries)
            or bool(outcome.violations)
        )

    def predicate(plan: FailurePlan) -> bool:
        candidate = dataclasses.replace(
            config,
            failure_plan=(
                plan if (plan.crashes or plan.disconnections) else None
            ),
            crash_probability=0.0,
            disconnect_probability=0.0,
        )
        return failing(run_workload(spec, candidate))

    return predicate


def shrink_workload_plan(
    spec: WorkloadSpec,
    config: WorkloadChaosConfig,
    outcome: WorkloadChaosOutcome,
    failing: Callable[[WorkloadChaosOutcome], bool] | None = None,
    max_attempts: int = 24,
) -> FailurePlan | None:
    """Reduce a failing workload's schedule to a minimal scripted plan.

    Merges the observed crash/disconnect events with any scripted input
    plan, verifies the merged plan alone still makes the workload fail
    (``failing``, same default as :func:`workload_failure_predicate`),
    then delta-debugs it down.  Returns ``None`` when the scripted
    conversion does not reproduce — the failure needed message-level
    faults or loss, which a FailurePlan cannot express.
    """
    full_plan = failure_plan_from_events(outcome.failure_events)
    if config.failure_plan is not None:
        for device, at in config.failure_plan.crashes.items():
            full_plan.crashes.setdefault(device, at)
        for device, windows in config.failure_plan.disconnections.items():
            full_plan.disconnections.setdefault(device, list(windows))
    predicate = workload_failure_predicate(spec, config, failing)
    if not predicate(full_plan):
        return None
    return shrink_failure_plan(full_plan, predicate, max_attempts=max_attempts)
