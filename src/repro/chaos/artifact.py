"""JSON repro artifacts for invariant violations.

An artifact freezes everything needed to reproduce one violation in a
fresh process: the full :class:`~repro.chaos.campaign.RunSpec`
(topology, seeds, scenario tag, fault specs, and — in ``scripted`` mode
— the shrunk :class:`~repro.network.failures.FailurePlan`), plus what
was violated.  The dataset is not embedded: it regenerates
deterministically from ``(topology.n_rows, seed)``.

Workflow::

    # a campaign found and shrank a violation
    artifact.save("repro-validity.json")

    # later, anywhere
    python -m repro.cli chaos --replay repro-validity.json

``replay()`` re-executes the run and reports whether the recorded
invariant fired again.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.chaos.invariants import Violation

__all__ = ["ReproArtifact", "ARTIFACT_VERSION"]

ARTIFACT_VERSION = 1


@dataclass
class ReproArtifact:
    """A self-contained, replayable violation record.

    Attributes:
        invariant: the violated invariant's name.
        detail: human-readable description captured at violation time.
        mode: ``"scripted"`` (stochastic injectors off, shrunk
            FailurePlan drives the failures) or ``"stochastic"`` (the
            original seeded spec verbatim).
        spec: the run to execute.
        data: structured context from the original violation.
    """

    invariant: str
    detail: str
    mode: str
    spec: Any  # RunSpec (import cycle: campaign imports shrink/faults)
    data: dict[str, Any] = field(default_factory=dict)

    @classmethod
    def from_violation(
        cls, violation: Violation, spec: Any, mode: str
    ) -> "ReproArtifact":
        return cls(
            invariant=violation.invariant,
            detail=violation.detail,
            mode=mode,
            spec=spec,
            data=violation.data,
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "version": ARTIFACT_VERSION,
            "invariant": self.invariant,
            "detail": self.detail,
            "mode": self.mode,
            "run": self.spec.to_dict(),
            "data": self.data,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def save(self, path: str | Path) -> Path:
        """Write the artifact; returns the resolved path."""
        target = Path(path)
        target.write_text(self.to_json() + "\n", encoding="utf-8")
        return target

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ReproArtifact":
        from repro.chaos.campaign import RunSpec

        version = data.get("version")
        if version != ARTIFACT_VERSION:
            raise ValueError(
                f"unsupported artifact version {version!r} "
                f"(this build reads version {ARTIFACT_VERSION})"
            )
        return cls(
            invariant=data["invariant"],
            detail=data.get("detail", ""),
            mode=data.get("mode", "scripted"),
            spec=RunSpec.from_dict(data["run"]),
            data=data.get("data", {}),
        )

    @classmethod
    def load(cls, path: str | Path) -> "ReproArtifact":
        return cls.from_dict(json.loads(Path(path).read_text(encoding="utf-8")))

    def replay(self, telemetry: Any = None) -> Any:
        """Re-execute the recorded run; returns the RunOutcome.

        The outcome's violations show whether the recorded invariant
        fired again (`reproduced` below checks exactly that).
        """
        from repro.chaos.campaign import run_single

        return run_single(self.spec, telemetry=telemetry)

    def reproduced(self, outcome: Any) -> bool:
        """Whether a replay outcome re-triggers the recorded invariant."""
        return any(v.invariant == self.invariant for v in outcome.violations)
