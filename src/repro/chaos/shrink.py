"""Failure-schedule shrinking (delta debugging over FailurePlans).

When a campaign run violates an invariant, the raw failure schedule is
usually mostly noise: dozens of crashes and offline windows of which
only one or two actually matter.  The shrinker reduces the schedule to
a locally minimal reproducing :class:`~repro.network.failures.
FailurePlan` by re-running the (deterministic) scenario against ever
smaller candidate plans — first dropping large chunks (classic ddmin
halving), then single events — and keeping a candidate only when the
*same* invariant still fires.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.network.failures import FailureEvent, FailurePlan
from repro.network.outages import OutagePlan

__all__ = [
    "failure_plan_from_events",
    "shrink_failure_plan",
    "shrink_outage_plan",
]

# one schedulable unit: ("crash", device, at) or
# ("disconnect", device, start, end)
Atom = tuple


def _atoms(plan: FailurePlan) -> list[Atom]:
    atoms: list[Atom] = []
    for device, at in sorted(plan.crashes.items()):
        atoms.append(("crash", device, at))
    for device, windows in sorted(plan.disconnections.items()):
        for start, end in sorted(windows):
            atoms.append(("disconnect", device, start, end))
    return atoms


def _plan_from_atoms(atoms: Iterable[Atom]) -> FailurePlan:
    plan = FailurePlan()
    # crashes first so the disconnect-after-crash validation applies
    for atom in sorted(atoms, key=lambda a: a[0] != "crash"):
        if atom[0] == "crash":
            plan.crash(atom[1], atom[2])
        else:
            plan.disconnect(atom[1], atom[2], atom[3])
    return plan


def failure_plan_from_events(events: Iterable[FailureEvent]) -> FailurePlan:
    """Convert a recorded failure-event log into a declarative plan.

    Crashes keep their first firing time per device; disconnect /
    reconnect pairs become explicit windows (an unmatched disconnect —
    the run ended offline — closes just after the last event).  Events
    after a device's crash are dropped: the device was already dead.
    """
    crashes: dict[str, float] = {}
    open_since: dict[str, float] = {}
    windows: dict[str, list[tuple[float, float]]] = {}
    horizon = 0.0
    for event in sorted(events, key=lambda e: e.time):
        horizon = max(horizon, event.time)
        if event.kind == "crash":
            crashes.setdefault(event.device_id, event.time)
        elif event.kind == "disconnect":
            if event.device_id not in crashes:
                open_since.setdefault(event.device_id, event.time)
        elif event.kind == "reconnect":
            start = open_since.pop(event.device_id, None)
            if start is not None and event.time > start:
                windows.setdefault(event.device_id, []).append(
                    (start, event.time)
                )
    for device, start in open_since.items():
        windows.setdefault(device, []).append((start, horizon + 1.0))
    plan = FailurePlan()
    for device, at in crashes.items():
        plan.crash(device, at)
    for device, per_device in windows.items():
        crash_at = crashes.get(device)
        for start, end in per_device:
            if crash_at is not None and start >= crash_at:
                continue
            plan.disconnect(device, start, end)
    return plan


def shrink_failure_plan(
    plan: FailurePlan,
    reproduces: Callable[[FailurePlan], bool],
    max_attempts: int = 64,
) -> FailurePlan:
    """Shrink ``plan`` to a locally minimal schedule that still makes
    ``reproduces`` return ``True``.

    ``reproduces`` must be deterministic (re-running the scenario from
    its seed) and must hold for ``plan`` itself — the caller verifies
    that before shrinking.  ``max_attempts`` caps the number of
    re-executions, so shrinking cost is bounded even for large
    schedules; the result is then minimal only up to the budget.
    """
    atoms = _atoms(plan)
    attempts = 0

    def try_plan(candidate_atoms: list[Atom]) -> bool:
        nonlocal attempts
        if attempts >= max_attempts:
            return False
        attempts += 1
        try:
            candidate = _plan_from_atoms(candidate_atoms)
        except ValueError:
            return False  # removal orphaned a disconnect past a crash
        return reproduces(candidate)

    # fast path: the schedule may be pure noise (e.g. a corruption-seeded
    # violation) — try the empty plan before any partial removal
    if atoms and try_plan([]):
        return _plan_from_atoms([])

    # phase 1: ddmin-style chunk removal, halving granularity
    chunk = max(len(atoms) // 2, 1)
    while chunk >= 1 and len(atoms) > 1 and attempts < max_attempts:
        removed_any = False
        start = 0
        while start < len(atoms) and attempts < max_attempts:
            candidate = atoms[:start] + atoms[start + chunk:]
            if candidate and len(candidate) < len(atoms) and try_plan(candidate):
                atoms = candidate
                removed_any = True
                # keep scanning from the same offset on the smaller list
            else:
                start += chunk
        if not removed_any:
            chunk //= 2

    # phase 2: single-event sweep until a fixed point (or budget)
    changed = True
    while changed and len(atoms) > 1 and attempts < max_attempts:
        changed = False
        for index in range(len(atoms) - 1, -1, -1):
            candidate = atoms[:index] + atoms[index + 1:]
            if candidate and try_plan(candidate):
                atoms = candidate
                changed = True
                break
    return _plan_from_atoms(atoms)


def _outage_atoms(plan: OutagePlan) -> list[Atom]:
    atoms: list[Atom] = []
    for partition in plan.partitions:
        atoms.append(("partition", partition))
    for crash in plan.regional_crashes:
        atoms.append(("region_crash", crash))
    for window in plan.gray_windows:
        atoms.append(("gray", window))
    return atoms


def _outage_plan_from_atoms(atoms: Iterable[Atom]) -> OutagePlan:
    plan = OutagePlan()
    for kind, event in atoms:
        if kind == "partition":
            plan.partitions.append(event)
        elif kind == "region_crash":
            plan.regional_crashes.append(event)
        else:
            plan.gray_windows.append(event)
    return plan.normalized()


def shrink_outage_plan(
    plan: OutagePlan,
    reproduces: Callable[[OutagePlan], bool],
    max_attempts: int = 64,
) -> OutagePlan:
    """Shrink a topology-outage schedule to a locally minimal one.

    The atoms are whole outage events — one partition window, one
    regional crash, one gray window — mirroring
    :func:`shrink_failure_plan`'s contract: ``reproduces`` must be
    deterministic and hold for ``plan`` itself.
    """
    atoms = _outage_atoms(plan)
    attempts = 0

    def try_plan(candidate_atoms: list[Atom]) -> bool:
        nonlocal attempts
        if attempts >= max_attempts:
            return False
        attempts += 1
        return reproduces(_outage_plan_from_atoms(candidate_atoms))

    if atoms and try_plan([]):
        return _outage_plan_from_atoms([])

    chunk = max(len(atoms) // 2, 1)
    while chunk >= 1 and len(atoms) > 1 and attempts < max_attempts:
        removed_any = False
        start = 0
        while start < len(atoms) and attempts < max_attempts:
            candidate = atoms[:start] + atoms[start + chunk:]
            if candidate and len(candidate) < len(atoms) and try_plan(candidate):
                atoms = candidate
                removed_any = True
            else:
                start += chunk
        if not removed_any:
            chunk //= 2

    changed = True
    while changed and len(atoms) > 1 and attempts < max_attempts:
        changed = False
        for index in range(len(atoms) - 1, -1, -1):
            candidate = atoms[:index] + atoms[index + 1:]
            if candidate and try_plan(candidate):
                atoms = candidate
                changed = True
                break
    return _outage_plan_from_atoms(atoms)
