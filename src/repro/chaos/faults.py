"""Backward-compatible alias: the fault model moved down a layer.

Message-level fault injection hooks into the
:class:`~repro.network.opnet.OpportunisticNetwork` send path and
depends only on substrate types, so it lives in
:mod:`repro.network.faults`; this module re-exports it because chaos
campaigns are its primary consumer and external callers imported it
from here first.
"""

from __future__ import annotations

from repro.network.faults import (
    FaultDecision,
    FaultSpec,
    MessageFaultInjector,
    corrupt_payload,
    parse_fault_mix,
)

__all__ = [
    "FaultSpec",
    "FaultDecision",
    "MessageFaultInjector",
    "corrupt_payload",
    "parse_fault_mix",
]
