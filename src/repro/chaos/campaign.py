"""Seeded chaos campaigns over the Edgelet execution strategies.

A campaign sweeps (strategy x failure probability x fault mix x
topology) over a fixed number of runs.  Every run is a pure function of
its derived seed: device identities come from ``(scenario_tag, seed)``,
the stochastic failure injector, the message-fault injector, and the
network each own a seed-derived RNG, and the discrete-event kernel
breaks ties deterministically.  Re-running a :class:`RunSpec` therefore
reproduces a violation bit-for-bit — the property the shrinker and the
JSON repro artifacts are built on.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any

from repro.network.faults import FaultSpec
from repro.chaos.invariants import RunRecord, Violation, check_all
from repro.chaos.shrink import (
    failure_plan_from_events,
    shrink_failure_plan,
    shrink_outage_plan,
)
from repro.core.planner import PrivacyParameters, ResiliencyParameters
from repro.data.health import HEALTH_SCHEMA, generate_health_rows
from repro.network.failures import FailurePlan
from repro.network.outages import OutagePlan, OutageSpec
from repro.plan.compile import OPTIMIZER_COST, OPTIMIZER_PINNED, compile_query

__all__ = [
    "TopologySpec",
    "RunSpec",
    "RunOutcome",
    "CampaignConfig",
    "CampaignResult",
    "run_single",
    "run_campaign",
    "DEFAULT_SQL",
]

#: The demo's Grouping Sets query — the campaign workload.
DEFAULT_SQL = (
    "SELECT count(*), avg(age), avg(bmi) FROM health "
    "WHERE age > 65 "
    "GROUP BY GROUPING SETS ((region), (sex), ())"
)

# large prime stride so per-run seeds never collide across campaign
# seeds that are close together
_SEED_STRIDE = 100_003


@dataclass(frozen=True)
class TopologySpec:
    """Swarm shape of one campaign cell."""

    n_contributors: int = 24
    n_processors: int = 20
    n_rows: int = 48
    device_mix: tuple[float, float, float] = (1.0, 0.0, 0.0)

    def to_dict(self) -> dict[str, Any]:
        return {
            "n_contributors": self.n_contributors,
            "n_processors": self.n_processors,
            "n_rows": self.n_rows,
            "device_mix": list(self.device_mix),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "TopologySpec":
        return cls(
            n_contributors=int(data["n_contributors"]),
            n_processors=int(data["n_processors"]),
            n_rows=int(data["n_rows"]),
            device_mix=tuple(data.get("device_mix", (1.0, 0.0, 0.0))),  # type: ignore[arg-type]
        )


@dataclass(frozen=True)
class RunSpec:
    """Fully deterministic description of one chaos run.

    Serializable; :func:`run_single` on an identical spec in any
    process reproduces the identical execution.
    """

    seed: int
    tag: str
    strategy: str = "overcollection"
    topology: TopologySpec = field(default_factory=TopologySpec)
    crash_probability: float = 0.0
    disconnect_probability: float = 0.0
    disconnect_duration: float = 10.0
    message_loss: float = 0.0
    fault_specs: tuple[FaultSpec, ...] = ()
    failure_plan: FailurePlan | None = None
    sql: str = DEFAULT_SQL
    # C defaults to twice the topology's dataset size: hash-imbalanced
    # partitions then never hit the C/n cap, so a *clean* run is exact
    # against the centralized oracle — the strict validity invariant
    # depends on that
    cardinality: int = 96
    max_raw: int = 12
    backup_replicas: int = 1
    planner_fault_rate: float = 0.1
    target_success: float = 0.99
    collection_window: float = 20.0
    deadline: float = 70.0
    secure_channels: bool = False
    validity_tolerance: float = 0.75
    liability_max_share: float = 0.5
    reliability: bool = False
    phase_deadline: float | None = None
    #: ``"pinned"`` replays the legacy hand-assembled physical
    #: parameters byte-for-byte; ``"cost"`` lets the
    #: :class:`~repro.plan.optimizer.PhysicalOptimizer` pick strategy,
    #: partitioning, and replication over the run's substrate profile.
    optimizer: str = OPTIMIZER_PINNED
    #: topology-level outage schedule: a seeded generator spec, or a
    #: fully-resolved plan (replay/shrink path; overrides the spec)
    outage_spec: OutageSpec | None = None
    outage_plan: OutagePlan | None = None
    #: φ-accrual adaptive failure detection (needs ``reliability``)
    detector: bool = False
    #: generation-fenced takeover (split-brain-safe reprovisioning)
    fencing: bool = False
    #: operator engine: ``"row"`` or ``"columnar"`` (bit-identical)
    engine: str = "row"

    def to_dict(self) -> dict[str, Any]:
        data = {
            "seed": self.seed,
            "tag": self.tag,
            "strategy": self.strategy,
            "topology": self.topology.to_dict(),
            "crash_probability": self.crash_probability,
            "disconnect_probability": self.disconnect_probability,
            "disconnect_duration": self.disconnect_duration,
            "message_loss": self.message_loss,
            "fault_specs": [spec.to_dict() for spec in self.fault_specs],
            "failure_plan": (
                self.failure_plan.to_dict() if self.failure_plan is not None else None
            ),
            "sql": self.sql,
            "cardinality": self.cardinality,
            "max_raw": self.max_raw,
            "backup_replicas": self.backup_replicas,
            "planner_fault_rate": self.planner_fault_rate,
            "target_success": self.target_success,
            "collection_window": self.collection_window,
            "deadline": self.deadline,
            "secure_channels": self.secure_channels,
            "validity_tolerance": self.validity_tolerance,
            "liability_max_share": self.liability_max_share,
            "reliability": self.reliability,
            "phase_deadline": self.phase_deadline,
            "optimizer": self.optimizer,
            "outage_spec": (
                self.outage_spec.to_dict()
                if self.outage_spec is not None
                else None
            ),
            "outage_plan": (
                self.outage_plan.to_dict()
                if self.outage_plan is not None
                else None
            ),
            "detector": self.detector,
            "fencing": self.fencing,
            "engine": self.engine,
        }
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "RunSpec":
        plan = data.get("failure_plan")
        outage_spec = data.get("outage_spec")
        outage_plan = data.get("outage_plan")
        return cls(
            seed=int(data["seed"]),
            tag=str(data["tag"]),
            strategy=str(data.get("strategy", "overcollection")),
            topology=TopologySpec.from_dict(data["topology"]),
            crash_probability=float(data.get("crash_probability", 0.0)),
            disconnect_probability=float(data.get("disconnect_probability", 0.0)),
            disconnect_duration=float(data.get("disconnect_duration", 10.0)),
            message_loss=float(data.get("message_loss", 0.0)),
            fault_specs=tuple(
                FaultSpec.from_dict(s) for s in data.get("fault_specs", ())
            ),
            failure_plan=FailurePlan.from_dict(plan) if plan is not None else None,
            sql=str(data.get("sql", DEFAULT_SQL)),
            cardinality=int(data.get("cardinality", 96)),
            max_raw=int(data.get("max_raw", 12)),
            backup_replicas=int(data.get("backup_replicas", 1)),
            planner_fault_rate=float(data.get("planner_fault_rate", 0.1)),
            target_success=float(data.get("target_success", 0.99)),
            collection_window=float(data.get("collection_window", 20.0)),
            deadline=float(data.get("deadline", 70.0)),
            secure_channels=bool(data.get("secure_channels", False)),
            validity_tolerance=float(data.get("validity_tolerance", 0.75)),
            liability_max_share=float(data.get("liability_max_share", 0.5)),
            reliability=bool(data.get("reliability", False)),
            phase_deadline=(
                float(data["phase_deadline"])
                if data.get("phase_deadline") is not None
                else None
            ),
            optimizer=str(data.get("optimizer", OPTIMIZER_PINNED)),
            outage_spec=(
                OutageSpec.from_dict(outage_spec)
                if outage_spec is not None
                else None
            ),
            outage_plan=(
                OutagePlan.from_dict(outage_plan)
                if outage_plan is not None
                else None
            ),
            detector=bool(data.get("detector", False)),
            fencing=bool(data.get("fencing", False)),
            engine=str(data.get("engine", "row")),
        )


@dataclass
class RunOutcome:
    """One run's result plus its invariant verdicts."""

    spec: RunSpec
    result: Any
    reference: Any
    violations: list[Violation]
    clean: bool

    @property
    def ok(self) -> bool:
        return not self.violations


def _is_clean(spec: RunSpec, result: Any) -> bool:
    """Whether the run experienced no failure or fault of any kind."""
    if spec.message_loss > 0:
        return False
    if result.failure_events:
        return False
    if result.fault_injector is not None and result.fault_injector.decisions:
        return False
    stats = result.report.network_stats or {}
    loss_keys = (
        "lost",
        "dropped_timeout",
        "no_route",
        "to_dead_device",
        "fault_dropped",
        "fault_corrupted",
        "fault_duplicated",
        "fault_delayed",
        "partitioned",
        "gray_lost",
    )
    return all(not stats.get(key, 0) for key in loss_keys)


def run_single(spec: RunSpec, telemetry: Any = None) -> RunOutcome:
    """Execute one deterministic chaos run and check every invariant.

    Each run gets its own fresh :class:`~repro.telemetry.Telemetry`
    unless one is passed, keeping the process-wide registry out of the
    determinism equation.
    """
    from repro.manager.scenario import Scenario, ScenarioConfig
    from repro.telemetry import Telemetry

    if telemetry is None:
        telemetry = Telemetry()
    topology = spec.topology
    rows = generate_health_rows(topology.n_rows, seed=spec.seed)
    config = ScenarioConfig(
        n_contributors=topology.n_contributors,
        n_processors=topology.n_processors,
        rows=rows,
        schema=HEALTH_SCHEMA,
        device_mix=topology.device_mix,
        crash_probability=spec.crash_probability,
        disconnect_probability=spec.disconnect_probability,
        disconnect_duration=spec.disconnect_duration,
        message_loss=spec.message_loss,
        collection_window=spec.collection_window,
        deadline=spec.deadline,
        secure_channels=spec.secure_channels,
        seed=spec.seed,
        scenario_tag=spec.tag,
        failure_plan=spec.failure_plan,
        fault_specs=spec.fault_specs or None,
        reliability=spec.reliability,
        phase_deadline=spec.phase_deadline,
        outage_spec=spec.outage_spec,
        outage_plan=spec.outage_plan,
        detector=spec.detector,
        fencing=spec.fencing,
    )
    scenario = Scenario(config, telemetry=telemetry)
    substrate = (
        scenario.substrate_profile(fault_rate=spec.planner_fault_rate)
        if spec.optimizer == OPTIMIZER_COST
        else None
    )
    compiled = compile_query(
        spec.sql,
        query_id=f"{spec.tag}-q",
        snapshot_cardinality=spec.cardinality,
        privacy=PrivacyParameters(max_raw_per_edgelet=spec.max_raw),
        resiliency=ResiliencyParameters(
            fault_rate=spec.planner_fault_rate,
            target_success=spec.target_success,
            strategy=spec.strategy,
            backup_replicas=spec.backup_replicas,
        ),
        optimizer=spec.optimizer,
        substrate=substrate,
        engine=spec.engine,
    )
    result = scenario.run_compiled(compiled)
    reference = scenario.centralized_result(compiled.spec)
    clean = _is_clean(spec, result)
    record = RunRecord(
        result=result,
        reference=reference,
        strategy=compiled.resiliency.strategy,
        clean=clean,
        validity_tolerance=spec.validity_tolerance,
        liability_max_share=spec.liability_max_share,
    )
    violations = check_all(record)
    return RunOutcome(
        spec=spec,
        result=result,
        reference=reference,
        violations=violations,
        clean=clean,
    )


@dataclass(frozen=True)
class CampaignConfig:
    """Parameters of one chaos campaign sweep.

    The sweep grid is the cross-product of ``strategies``,
    ``crash_probabilities``, ``fault_mixes``, and ``topologies``; run
    ``i`` executes grid cell ``i % len(grid)`` with seed
    ``seed + i * 100003``, so adding runs extends coverage without
    changing earlier runs.
    """

    seed: int = 0
    runs: int = 25
    strategies: tuple[str, ...] = ("overcollection", "backup")
    crash_probabilities: tuple[float, ...] = (0.0, 0.002)
    disconnect_probability: float = 0.0
    disconnect_duration: float = 10.0
    message_loss: float = 0.0
    fault_mixes: tuple[tuple[FaultSpec, ...], ...] = ((),)
    topologies: tuple[TopologySpec, ...] = (TopologySpec(),)
    sql: str = DEFAULT_SQL
    cardinality: int = 96
    max_raw: int = 12
    backup_replicas: int = 1
    collection_window: float = 20.0
    deadline: float = 70.0
    secure_channels: bool = False
    validity_tolerance: float = 0.75
    liability_max_share: float = 0.5
    reliability: bool = False
    phase_deadline: float | None = None
    optimizer: str = OPTIMIZER_PINNED
    outage_spec: OutageSpec | None = None
    detector: bool = False
    fencing: bool = False
    engine: str = "row"
    shrink: bool = True
    shrink_budget: int = 24

    def grid(self) -> list[tuple[str, float, tuple[FaultSpec, ...], TopologySpec]]:
        cells = []
        for strategy in self.strategies:
            for crash_probability in self.crash_probabilities:
                for fault_mix in self.fault_mixes:
                    for topology in self.topologies:
                        cells.append(
                            (strategy, crash_probability, fault_mix, topology)
                        )
        return cells

    def spec_for(self, index: int) -> RunSpec:
        """The deterministic RunSpec of campaign run ``index``."""
        cells = self.grid()
        strategy, crash_probability, fault_mix, topology = cells[index % len(cells)]
        return RunSpec(
            seed=self.seed + index * _SEED_STRIDE,
            tag=f"chaos-{self.seed}-{index}",
            strategy=strategy,
            topology=topology,
            crash_probability=crash_probability,
            disconnect_probability=self.disconnect_probability,
            disconnect_duration=self.disconnect_duration,
            message_loss=self.message_loss,
            fault_specs=fault_mix,
            sql=self.sql,
            cardinality=self.cardinality,
            max_raw=self.max_raw,
            backup_replicas=self.backup_replicas,
            collection_window=self.collection_window,
            deadline=self.deadline,
            secure_channels=self.secure_channels,
            validity_tolerance=self.validity_tolerance,
            liability_max_share=self.liability_max_share,
            reliability=self.reliability,
            phase_deadline=self.phase_deadline,
            optimizer=self.optimizer,
            outage_spec=self.outage_spec,
            detector=self.detector,
            fencing=self.fencing,
            engine=self.engine,
        )


@dataclass
class CampaignResult:
    """Everything a campaign produced."""

    config: CampaignConfig
    outcomes: list[RunOutcome] = field(default_factory=list)
    artifacts: list[Any] = field(default_factory=list)  # ReproArtifact

    @property
    def violations(self) -> list[tuple[int, Violation]]:
        found = []
        for index, outcome in enumerate(self.outcomes):
            for violation in outcome.violations:
                found.append((index, violation))
        return found

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary_rows(self) -> list[list[Any]]:
        """Per-grid-cell roll-up for the campaign summary table."""
        buckets: dict[tuple[str, float, int], dict[str, Any]] = {}
        for outcome in self.outcomes:
            spec = outcome.spec
            key = (
                spec.strategy,
                spec.crash_probability,
                len(spec.fault_specs),
            )
            bucket = buckets.setdefault(
                key,
                {"runs": 0, "succeeded": 0, "violations": 0, "faults": 0},
            )
            bucket["runs"] += 1
            bucket["succeeded"] += 1 if outcome.result.report.success else 0
            bucket["violations"] += len(outcome.violations)
            injector = outcome.result.fault_injector
            bucket["faults"] += len(injector.decisions) if injector else 0
        rows = []
        for (strategy, crash_probability, n_specs), bucket in sorted(buckets.items()):
            rows.append(
                [
                    strategy,
                    crash_probability,
                    n_specs,
                    bucket["runs"],
                    bucket["succeeded"],
                    bucket["faults"],
                    bucket["violations"],
                ]
            )
        return rows


def _reproduces_with_plan(
    spec: RunSpec, invariant: str
) -> Any:
    """Build the shrinker's predicate: does this failure plan alone
    (stochastic injectors off) still trigger the same invariant?"""

    def predicate(plan: FailurePlan) -> bool:
        candidate = dataclasses.replace(
            spec,
            failure_plan=plan if (plan.crashes or plan.disconnections) else None,
            crash_probability=0.0,
            disconnect_probability=0.0,
        )
        outcome = run_single(candidate)
        return any(v.invariant == invariant for v in outcome.violations)

    return predicate


def _reproduces_with_outages(spec: RunSpec, invariant: str) -> Any:
    """The outage-axis shrink predicate: does this topology-outage
    schedule (everything else in ``spec`` held fixed) still trigger the
    same invariant?"""

    def predicate(plan: OutagePlan) -> bool:
        candidate = dataclasses.replace(
            spec,
            outage_spec=None,
            outage_plan=plan if not plan.is_empty() else None,
        )
        outcome = run_single(candidate)
        return any(v.invariant == invariant for v in outcome.violations)

    return predicate


def run_campaign(config: CampaignConfig, telemetry: Any = None) -> CampaignResult:
    """Run a full campaign; shrink and record an artifact per violation."""
    from repro.chaos.artifact import ReproArtifact
    from repro.telemetry import get_telemetry

    if telemetry is None:
        telemetry = get_telemetry()
    metrics = telemetry.metrics
    m_runs = metrics.counter("chaos.runs")
    campaign_span = telemetry.tracer.start(
        "chaos:campaign", at=0.0, seed=config.seed, runs=config.runs
    )
    result = CampaignResult(config=config)
    for index in range(config.runs):
        spec = config.spec_for(index)
        run_span = telemetry.tracer.start(
            f"chaos:run[{index}]",
            at=float(index),
            parent=campaign_span,
            seed=spec.seed,
            strategy=spec.strategy,
        )
        outcome = run_single(spec)
        result.outcomes.append(outcome)
        m_runs.inc()
        for violation in outcome.violations:
            metrics.counter(
                "chaos.invariant_violations", invariant=violation.invariant
            ).inc()
            telemetry.tracer.event(
                "chaos:violation",
                at=float(index),
                run=index,
                invariant=violation.invariant,
            )
            artifact = _build_artifact(
                config, spec, outcome, violation, ReproArtifact
            )
            result.artifacts.append(artifact)
        run_span.finish(at=float(index + 1))
    campaign_span.finish(at=float(config.runs))
    return result


def _build_artifact(
    config: CampaignConfig,
    spec: RunSpec,
    outcome: RunOutcome,
    violation: Violation,
    artifact_cls: Any,
) -> Any:
    """Shrink the failure schedule behind a violation to a minimal
    scripted :class:`FailurePlan` when possible.

    The scripted conversion replays recorded crash/disconnect events as
    a declarative plan with the stochastic injector off.  Event
    interleaving at equal timestamps can differ from the original
    injector-driven timeline, so the conversion is verification-driven:
    it is kept only if the same invariant still fires.  Otherwise the
    artifact falls back to "stochastic" mode — the original spec
    verbatim, which is equally deterministic (same seed, same tag).
    """
    if not config.shrink:
        return artifact_cls.from_violation(violation, spec, mode="stochastic")
    # pin the resolved outage schedule (if one drove this run) so the
    # failure-plan axis shrinks against a fixed topology-outage backdrop
    resolved_outage = getattr(outcome.result, "outage_plan", None)
    base_spec = spec
    if resolved_outage is not None and not resolved_outage.is_empty():
        base_spec = dataclasses.replace(
            spec, outage_spec=None, outage_plan=resolved_outage
        )
    events = outcome.result.failure_events or []
    full_plan = failure_plan_from_events(events)
    if spec.failure_plan is not None:
        # scripted inputs merge with observed events (idempotent: the
        # scripted plan's own firings are part of the event log)
        for device, at in spec.failure_plan.crashes.items():
            full_plan.crashes.setdefault(device, at)
        for device, windows in spec.failure_plan.disconnections.items():
            full_plan.disconnections.setdefault(device, list(windows))
    predicate = _reproduces_with_plan(base_spec, violation.invariant)
    if not predicate(full_plan):
        return artifact_cls.from_violation(violation, spec, mode="stochastic")
    shrunk = shrink_failure_plan(
        full_plan, predicate, max_attempts=config.shrink_budget
    )
    scripted_spec = dataclasses.replace(
        base_spec,
        failure_plan=(
            shrunk if (shrunk.crashes or shrunk.disconnections) else None
        ),
        crash_probability=0.0,
        disconnect_probability=0.0,
    )
    if (
        scripted_spec.outage_plan is not None
        and not scripted_spec.outage_plan.is_empty()
    ):
        # second axis: ddmin the outage schedule with the (already
        # shrunk) failure plan held fixed
        outage_predicate = _reproduces_with_outages(
            scripted_spec, violation.invariant
        )
        shrunk_outage = shrink_outage_plan(
            scripted_spec.outage_plan,
            outage_predicate,
            max_attempts=config.shrink_budget,
        )
        scripted_spec = dataclasses.replace(
            scripted_spec,
            outage_plan=(
                shrunk_outage if not shrunk_outage.is_empty() else None
            ),
        )
    return artifact_cls.from_violation(violation, scripted_spec, mode="scripted")
