"""Typed message records carried by the opportunistic network.

A :class:`Message` is the unit the network delivers; its payload is
usually a sealed :class:`repro.crypto.envelope.Envelope`, but the network
layer treats it as opaque.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

__all__ = ["Message", "MessageKind"]


class MessageKind(enum.Enum):
    """Application-level message kinds used by the Edgelet protocol."""

    CONTRIBUTION = "contribution"          # Data Contributor -> Snapshot Builder
    PARTITION = "partition"                # Snapshot Builder -> Computer
    PARTIAL_RESULT = "partial_result"      # Computer -> Computing Combiner
    KNOWLEDGE = "knowledge"                # Computer <-> Computer (iterative ML)
    FINAL_RESULT = "final_result"          # Combiner -> Querier
    CHECKPOINT = "checkpoint"              # Backup strategy state transfer
    HEARTBEAT = "heartbeat"                # Clock cadence signal
    ATTESTATION = "attestation"            # Attestation protocol round
    CONTROL = "control"                    # Plan distribution and bookkeeping
    ACK = "ack"                            # Transport-level acknowledgement


@dataclass
class Message:
    """One network message.

    Attributes:
        sender: device identifier of the source edgelet.
        recipient: device identifier of the destination edgelet.
        kind: protocol role of this message.
        payload: opaque content (envelope, plan fragment, ...).
        size_bytes: wire size used by the latency model.
        message_id: unique, monotonically increasing identifier,
            allocated per :class:`~repro.network.opnet.OpportunisticNetwork`
            instance when the message is first sent (``None`` before).
        sent_at: virtual time when the message entered the network
            (filled by the network).
        delivered_at: virtual time of delivery, or ``None`` if dropped.
        headers: transport-level metadata (e.g. the reliability layer's
            ``transfer_id``); opaque to the network, never sealed.
    """

    sender: str
    recipient: str
    kind: MessageKind
    payload: Any
    size_bytes: int = 256
    message_id: int | None = None
    sent_at: float | None = None
    delivered_at: float | None = None
    headers: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError("message size must be positive")

    @property
    def in_flight_time(self) -> float | None:
        """Transit time, once delivered."""
        if self.sent_at is None or self.delivered_at is None:
            return None
        return self.delivered_at - self.sent_at

    def describe(self) -> str:
        """One-line human-readable summary for execution traces."""
        ident = "?" if self.message_id is None else self.message_id
        return (
            f"#{ident} {self.kind.value} "
            f"{self.sender} -> {self.recipient} ({self.size_bytes}B)"
        )
