"""Typed message records carried by the opportunistic network.

A :class:`Message` is the unit the network delivers; its payload is
usually a sealed :class:`repro.crypto.envelope.Envelope`, but the network
layer treats it as opaque.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any

__all__ = ["Message", "MessageKind"]

_message_ids = itertools.count(1)


class MessageKind(enum.Enum):
    """Application-level message kinds used by the Edgelet protocol."""

    CONTRIBUTION = "contribution"          # Data Contributor -> Snapshot Builder
    PARTITION = "partition"                # Snapshot Builder -> Computer
    PARTIAL_RESULT = "partial_result"      # Computer -> Computing Combiner
    KNOWLEDGE = "knowledge"                # Computer <-> Computer (iterative ML)
    FINAL_RESULT = "final_result"          # Combiner -> Querier
    CHECKPOINT = "checkpoint"              # Backup strategy state transfer
    HEARTBEAT = "heartbeat"                # Clock cadence signal
    ATTESTATION = "attestation"            # Attestation protocol round
    CONTROL = "control"                    # Plan distribution and bookkeeping


@dataclass
class Message:
    """One network message.

    Attributes:
        sender: device identifier of the source edgelet.
        recipient: device identifier of the destination edgelet.
        kind: protocol role of this message.
        payload: opaque content (envelope, plan fragment, ...).
        size_bytes: wire size used by the latency model.
        message_id: unique, monotonically increasing identifier.
        sent_at: virtual time when the message entered the network
            (filled by the network).
        delivered_at: virtual time of delivery, or ``None`` if dropped.
    """

    sender: str
    recipient: str
    kind: MessageKind
    payload: Any
    size_bytes: int = 256
    message_id: int = field(default_factory=lambda: next(_message_ids))
    sent_at: float | None = None
    delivered_at: float | None = None

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError("message size must be positive")

    @property
    def in_flight_time(self) -> float | None:
        """Transit time, once delivered."""
        if self.sent_at is None or self.delivered_at is None:
            return None
        return self.delivered_at - self.sent_at

    def describe(self) -> str:
        """One-line human-readable summary for execution traces."""
        return (
            f"#{self.message_id} {self.kind.value} "
            f"{self.sender} -> {self.recipient} ({self.size_bytes}B)"
        )
