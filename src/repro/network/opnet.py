"""The opportunistic network: uncertain, store-and-forward delivery.

This is the communication substrate of Edgelet computing.  Messages are
delivered with per-link latency and loss sampled from the contact graph;
devices can be *offline* (disconnected at will or crashed), in which case
messages destined to them are either buffered until reconnection
(store-and-forward, the OppNet behaviour) or dropped after a timeout.

The network is deliberately *not* reliable: the Edgelet execution
strategies (Overcollection, Backup, heartbeat-cadenced ML) exist exactly
because this layer gives no delivery guarantee.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.network.messages import Message, MessageKind
from repro.network.simulator import Simulator
from repro.network.topology import ContactGraph, LinkQuality

__all__ = ["NetworkConfig", "DeliveryReceipt", "OpportunisticNetwork"]

Handler = Callable[[Message], None]


@dataclass(frozen=True)
class NetworkConfig:
    """Tunable knobs of the opportunistic network.

    Attributes:
        allow_relay: deliver across multi-hop contact paths (each hop
            adds its own latency and loss trial).
        buffer_timeout: how long (virtual seconds) a message waits for an
            offline recipient before being dropped; ``None`` waits
            forever.
        default_quality: link quality used when the contact graph has no
            explicit edge but relaying is disabled and the devices are
            assumed co-located (fully-connected fallback).
        global_loss_probability: extra i.i.d. loss applied to every
            message on top of per-link loss (the demonstration's
            "failure context" slider).
    """

    allow_relay: bool = True
    buffer_timeout: float | None = 120.0
    default_quality: LinkQuality = field(default_factory=LinkQuality)
    global_loss_probability: float = 0.0

    def __post_init__(self) -> None:
        if not 0 <= self.global_loss_probability <= 1:
            raise ValueError("global_loss_probability must be in [0, 1]")
        if self.buffer_timeout is not None and self.buffer_timeout < 0:
            raise ValueError("buffer_timeout must be non-negative")


@dataclass
class DeliveryReceipt:
    """Outcome record for one send attempt (for traces and stats)."""

    message_id: int
    outcome: str  # "delivered", "lost", "dropped_timeout", "no_route",
    #               "dead", "departed", "dropped_fault", "partitioned"
    latency: float | None = None


class NetworkStats:
    """Aggregate counters maintained by the network."""

    def __init__(self) -> None:
        self.sent = 0
        self.delivered = 0
        self.lost = 0
        self.dropped_timeout = 0
        self.no_route = 0
        self.to_dead_device = 0
        self.departed = 0
        self.partitioned = 0
        self.gray_lost = 0
        self.fault_dropped = 0
        self.fault_duplicated = 0
        self.fault_delayed = 0
        self.fault_corrupted = 0
        self.bytes_sent = 0
        self.bytes_delivered = 0
        self.by_kind: dict[str, int] = {}
        self.bytes_by_sender: dict[str, int] = {}
        self.bytes_by_recipient: dict[str, int] = {}

    def as_dict(self) -> dict[str, float]:
        """Snapshot of all counters plus the delivery ratio."""
        ratio = self.delivered / self.sent if self.sent else 1.0
        return {
            "sent": self.sent,
            "delivered": self.delivered,
            "lost": self.lost,
            "dropped_timeout": self.dropped_timeout,
            "no_route": self.no_route,
            "to_dead_device": self.to_dead_device,
            "departed": self.departed,
            "partitioned": self.partitioned,
            "gray_lost": self.gray_lost,
            "fault_dropped": self.fault_dropped,
            "fault_duplicated": self.fault_duplicated,
            "fault_delayed": self.fault_delayed,
            "fault_corrupted": self.fault_corrupted,
            "bytes_sent": self.bytes_sent,
            "bytes_delivered": self.bytes_delivered,
            "delivery_ratio": ratio,
        }


class OpportunisticNetwork:
    """Store-and-forward message delivery over a contact graph.

    Devices register a handler with :meth:`attach`.  Sending never
    blocks; delivery (or loss) happens later on the simulator clock.
    """

    def __init__(
        self,
        simulator: Simulator,
        topology: ContactGraph,
        config: NetworkConfig | None = None,
        seed: int = 0,
        telemetry: Any = None,
        per_query_rng: bool = False,
    ):
        self.simulator = simulator
        self.topology = topology
        self.config = config or NetworkConfig()
        self.stats = NetworkStats()
        self._seed = seed
        self._rng = random.Random(seed)
        # opt-in: loss/latency draws for messages carrying a "query"
        # header come from a stream seeded by (network seed, query id),
        # so one query's draw sequence is independent of how many other
        # queries interleave with it — the property the workload engine's
        # serial-equivalence guarantee rests on.  Off by default: the
        # single shared stream is the legacy behaviour existing
        # fixed-seed tests replay.
        self.per_query_rng = per_query_rng
        self._query_rngs: dict[str, random.Random] = {}
        # per-instance id stream: two networks in one process allocate
        # identical id sequences, so fixed-seed runs replay byte-for-byte
        self._message_ids = itertools.count(1)
        self._epoch = 0
        self._handlers: dict[str, Handler] = {}
        self._online: dict[str, bool] = {}
        self._dead: set[str] = set()
        # graceful permanent departures (churn); unlike _dead this set
        # survives reset(): a departed device belongs to no future run
        # on this network instance, so neither reset nor a later attach
        # may resurrect its handler or its draws
        self._departed: set[str] = set()
        self._inboxes: dict[str, list[tuple[float, Message]]] = {}
        self._receipts: list[DeliveryReceipt] = []
        # topology-level outage state (repro.network.outages).  Each
        # active partition is a tuple of islands (frozensets of device
        # ids); devices absent from every island sit on the implicit
        # mainland.  Gray devices keep their handler but suffer inflated
        # latency and extra loss on every link they touch.  All of this
        # is checked behind cheap truthiness guards and the gray loss
        # trials draw from a dedicated RNG, so runs without outages make
        # exactly the draws they always made.
        self._partitions: dict[int, tuple[frozenset[str], ...]] = {}
        self._partition_ids = itertools.count(1)
        self._gray: dict[str, tuple[float, float]] = {}
        self._gray_rng: random.Random | None = None
        self._departure_listeners: list[Callable[[str], None]] = []
        # optional chaos hook (see repro.network.faults.MessageFaultInjector);
        # owns its own RNG, so installing one never shifts self._rng's stream
        self.faults: Any = None
        if telemetry is None:
            telemetry = simulator.telemetry
        self.telemetry = telemetry
        metrics = telemetry.metrics
        self._m_sent_by_kind: dict[str, Any] = {}
        self._m_delivered = metrics.counter("net.messages_delivered")
        self._m_lost = metrics.counter("net.messages_lost")
        self._m_dropped = metrics.counter("net.messages_dropped_timeout")
        self._m_no_route = metrics.counter("net.messages_no_route")
        self._m_dead = metrics.counter("net.messages_to_dead_device")
        self._m_departed = metrics.counter("net.messages_to_departed_device")
        self._m_partitioned = metrics.counter("net.messages_partitioned")
        self._m_gray_lost = metrics.counter("net.messages_gray_lost")
        self._m_bytes_sent = metrics.counter("net.bytes_sent")
        self._m_bytes_delivered = metrics.counter("net.bytes_delivered")
        self._g_buffered = metrics.gauge("net.store_and_forward_occupancy")
        self._h_latency = metrics.histogram("net.delivery_latency")
        self._m_fault_dropped = metrics.counter("net.fault_dropped")
        self._m_fault_duplicated = metrics.counter("net.fault_duplicated")
        self._m_fault_delayed = metrics.counter("net.fault_delayed")
        self._m_fault_corrupted = metrics.counter("net.fault_corrupted")

    # -- device lifecycle -------------------------------------------------

    def attach(self, device_id: str, handler: Handler) -> None:
        """Register a device and its message handler (initially online).

        Registration is epoch-fenced against churn: attaching an id that
        has permanently :meth:`leave`\\ -d is a silent no-op, so neither a
        late re-attach by an in-flight execution nor a :meth:`reset` can
        resurrect a departed device.
        """
        if device_id in self._departed:
            return
        self.topology.add_device(device_id)
        self._handlers[device_id] = handler
        self._online.setdefault(device_id, True)
        self._inboxes.setdefault(device_id, [])

    def is_online(self, device_id: str) -> bool:
        """Whether the device currently accepts deliveries."""
        return self._online.get(device_id, False) and device_id not in self._dead

    def is_dead(self, device_id: str) -> bool:
        """Whether the device has permanently crashed or departed."""
        return device_id in self._dead or device_id in self._departed

    def has_departed(self, device_id: str) -> bool:
        """Whether the device has gracefully left the swarm for good."""
        return device_id in self._departed

    def set_online(self, device_id: str, online: bool) -> None:
        """Toggle temporary connectivity; reconnection flushes the inbox."""
        if device_id in self._dead or device_id in self._departed:
            return
        was_online = self._online.get(device_id, False)
        self._online[device_id] = online
        if online and not was_online:
            self._flush_inbox(device_id)

    def leave(self, device_id: str) -> None:
        """Graceful permanent departure (churn), fenced across resets.

        The device's handler is deregistered, buffered messages are
        discarded (counted under ``departed``), and the id joins the
        departed set that :meth:`reset` preserves and :meth:`attach`
        refuses — so no later run, retry, or no-op churn replay can
        bring the device (or draws on its behalf) back.  Unlike
        :meth:`kill` this is not a fault: the owner walked away.
        """
        if device_id in self._departed:
            return
        self._departed.add(device_id)
        self._online[device_id] = False
        self._handlers.pop(device_id, None)
        dropped = self._inboxes.pop(device_id, [])
        self._inboxes[device_id] = []
        for _, message in dropped:
            self.stats.departed += 1
            self._m_departed.inc()
            self._g_buffered.dec()
            self._receipts.append(
                DeliveryReceipt(message.message_id, "departed")
            )
        # notify observers (e.g. ReliableTransport) so in-flight
        # transfers to the departed peer fail immediately instead of
        # retransmitting until the budget drains.  Deliberately NOT
        # invoked from kill(): a crash is a fault the transport must
        # *discover* (that lazy discovery is what existing fixed-seed
        # crash campaigns replay), whereas a graceful departure is
        # announced by the owner walking away.
        for listener in self._departure_listeners:
            listener(device_id)

    def add_departure_listener(self, listener: Callable[[str], None]) -> None:
        """Call ``listener(device_id)`` on each graceful :meth:`leave`."""
        self._departure_listeners.append(listener)

    def kill(self, device_id: str) -> None:
        """Permanently crash a device; buffered messages are discarded."""
        self._dead.add(device_id)
        self._online[device_id] = False
        dropped = self._inboxes.pop(device_id, [])
        self._inboxes[device_id] = []
        for _, message in dropped:
            self.stats.to_dead_device += 1
            self._m_dead.inc()
            self._g_buffered.dec()
            self._receipts.append(
                DeliveryReceipt(message.message_id, "dead")
            )

    # -- topology outages ---------------------------------------------------

    def partition(self, islands: list[tuple[str, ...]] | tuple[tuple[str, ...], ...]) -> int:
        """Cut the network into components; returns a token for :meth:`heal`.

        ``islands`` lists device groups; devices in different islands —
        or in an island versus the implicit mainland of unlisted
        devices — cannot exchange messages while the partition is
        active.  Partitions compose: with several active, two devices
        communicate only if no active partition separates them.
        """
        resolved = tuple(frozenset(island) for island in islands if island)
        if not resolved:
            raise ValueError("partition needs at least one non-empty island")
        token = next(self._partition_ids)
        self._partitions[token] = resolved
        return token

    def heal(self, token: int) -> None:
        """Remove one partition (no-op if already healed or reset)."""
        self._partitions.pop(token, None)

    def partition_blocks(self, sender: str, recipient: str) -> bool:
        """Whether an active partition separates the two devices."""
        for islands in self._partitions.values():
            sender_side = recipient_side = -1
            for index, island in enumerate(islands):
                if sender in island:
                    sender_side = index
                if recipient in island:
                    recipient_side = index
            if sender_side != recipient_side:
                return True
        return False

    def set_gray(
        self, device_id: str, latency_factor: float = 1.0, extra_loss: float = 0.0
    ) -> None:
        """Mark a device gray: slow and lossy on every link, not dead."""
        if latency_factor < 1.0:
            raise ValueError("latency_factor must be >= 1")
        if not 0 <= extra_loss <= 1:
            raise ValueError("extra_loss must be in [0, 1]")
        self._gray[device_id] = (latency_factor, extra_loss)

    def clear_gray(self, device_id: str) -> None:
        """Restore a gray device to nominal link behaviour."""
        self._gray.pop(device_id, None)

    def is_gray(self, device_id: str) -> bool:
        """Whether the device is currently gray-failing."""
        return device_id in self._gray

    def _gray_effect(self, sender: str, recipient: str) -> tuple[float, float]:
        """Combined (latency factor, extra loss) for one link's endpoints."""
        factor, survive = 1.0, 1.0
        for device_id in (sender, recipient):
            entry = self._gray.get(device_id)
            if entry is not None:
                factor *= entry[0]
                survive *= 1.0 - entry[1]
        return factor, 1.0 - survive

    def _gray_trial(self) -> float:
        """Loss draw from the gray-dedicated RNG stream.

        Lazily created from a string-derived seed so the main RNG
        stream's draw sequence is untouched whether or not any device
        ever goes gray.
        """
        if self._gray_rng is None:
            self._gray_rng = random.Random(f"{self._seed}:gray")
        return self._gray_rng.random()

    # -- sending ------------------------------------------------------------

    def reset(self) -> None:
        """Return the network to its just-built state for a fresh run.

        Mirrors :meth:`repro.network.simulator.Simulator.reset`: the
        epoch fence guarantees that in-flight deliveries and expiry
        timers scheduled before the reset become no-ops, so a reused
        network never leaks buffered store-and-forward messages into the
        next run.  Topology, attached handlers, and any installed fault
        injector survive; dynamic state (online/dead flags, inboxes,
        receipts, stats, the RNG, and the message-id stream) restarts so
        a post-reset run is byte-identical to one on a fresh network.
        """
        self._epoch += 1
        self.stats = NetworkStats()
        self._rng = random.Random(self._seed)
        self._query_rngs.clear()
        self._message_ids = itertools.count(1)
        self._dead.clear()
        self._receipts.clear()
        self._partitions.clear()
        self._gray.clear()
        self._gray_rng = None
        # _departed deliberately survives: reset() rewinds dynamic state
        # of the *population that remains*, it does not re-admit devices
        # whose owners permanently left mid-history
        for device_id in self._handlers:
            if device_id in self._departed:
                continue
            self._online[device_id] = True
            self._inboxes[device_id] = []
        self._g_buffered.set(0)

    @property
    def epoch(self) -> int:
        """Monotone counter bumped by :meth:`reset` (the timer fence)."""
        return self._epoch

    def send(self, message: Message) -> None:
        """Inject a message into the network (asynchronous, unreliable)."""
        if message.message_id is None:
            message.message_id = next(self._message_ids)
        message.sent_at = self.simulator.now
        self.stats.sent += 1
        self.stats.bytes_sent += message.size_bytes
        self.stats.bytes_by_sender[message.sender] = (
            self.stats.bytes_by_sender.get(message.sender, 0) + message.size_bytes
        )
        kind = message.kind.value
        self.stats.by_kind[kind] = self.stats.by_kind.get(kind, 0) + 1
        sent_counter = self._m_sent_by_kind.get(kind)
        if sent_counter is None:
            sent_counter = self._m_sent_by_kind[kind] = (
                self.telemetry.metrics.counter("net.messages_sent", kind=kind)
            )
        sent_counter.inc()
        self._m_bytes_sent.inc(message.size_bytes)

        if message.recipient in self._departed:
            self.stats.departed += 1
            self._m_departed.inc()
            self._receipts.append(DeliveryReceipt(message.message_id, "departed"))
            return
        if message.recipient in self._dead:
            self.stats.to_dead_device += 1
            self._m_dead.inc()
            self._receipts.append(DeliveryReceipt(message.message_id, "dead"))
            return
        if self._partitions and self.partition_blocks(message.sender, message.recipient):
            self.stats.partitioned += 1
            self._m_partitioned.inc()
            self._receipts.append(DeliveryReceipt(message.message_id, "partitioned"))
            return

        copies = 1
        extra_delay = 0.0
        if self.faults is not None:
            decision = self.faults.on_send(message)
            if decision.drop:
                self.stats.fault_dropped += 1
                self._m_fault_dropped.inc()
                self._receipts.append(
                    DeliveryReceipt(message.message_id, "dropped_fault")
                )
                return
            if decision.corrupt:
                message.payload = self.faults.corrupt_payload(message.payload)
                self.stats.fault_corrupted += 1
                self._m_fault_corrupted.inc()
            if decision.copies > 1:
                self.stats.fault_duplicated += decision.copies - 1
                self._m_fault_duplicated.inc(decision.copies - 1)
            if decision.extra_delay > 0:
                self.stats.fault_delayed += 1
                self._m_fault_delayed.inc()
            copies = decision.copies
            extra_delay = decision.extra_delay

        # gray endpoints inflate latency and add loss *after* the normal
        # trials: extra loss draws come from the gray-dedicated RNG and
        # latency is scaled post-sampling, so the main stream's draw
        # count is identical with and without gray devices
        gray_factor, gray_loss = 1.0, 0.0
        if self._gray:
            gray_factor, gray_loss = self._gray_effect(
                message.sender, message.recipient
            )

        rng = self._rng_for(message)
        # each copy takes its own loss and latency trials, exactly the
        # draws the single-copy path always made (stream-compatible)
        for _ in range(copies):
            if rng.random() < self.config.global_loss_probability:
                self._record_loss(message)
                continue

            quality, hops = self._route(message.sender, message.recipient)
            if quality is None:
                self.stats.no_route += 1
                self._m_no_route.inc()
                self._receipts.append(
                    DeliveryReceipt(message.message_id, "no_route")
                )
                continue

            # one loss trial per hop
            lost = False
            for _ in range(hops):
                if rng.random() < quality.loss_probability:
                    self._record_loss(message)
                    lost = True
                    break
            if lost:
                continue

            if gray_loss > 0 and self._gray_trial() < gray_loss:
                self.stats.gray_lost += 1
                self._m_gray_lost.inc()
                self._record_loss(message)
                continue

            latency = extra_delay + gray_factor * sum(
                quality.sample_latency(message.size_bytes, rng)
                for _ in range(hops)
            )
            epoch = self._epoch
            self.simulator.schedule(
                latency,
                lambda: self._arrive(message) if self._epoch == epoch else None,
                description=f"deliver {message.describe()}",
            )

    def install_faults(self, injector: Any) -> None:
        """Install a chaos message-fault injector on the send path."""
        self.faults = injector

    def broadcast(
        self, sender: str, recipients: list[str], kind: MessageKind, payload_for: Callable[[str], object],
        size_bytes: int = 256,
    ) -> list[Message]:
        """Send one message per recipient; returns the messages sent."""
        messages = []
        for recipient in recipients:
            message = Message(
                sender=sender,
                recipient=recipient,
                kind=kind,
                payload=payload_for(recipient),
                size_bytes=size_bytes,
            )
            self.send(message)
            messages.append(message)
        return messages

    # -- internals ----------------------------------------------------------

    def _rng_for(self, message: Message) -> random.Random:
        """The RNG stream supplying this message's loss/latency draws.

        With :attr:`per_query_rng` enabled, a message carrying a
        ``query`` header draws from ``Random(f"{seed}:q:{query_id}")`` —
        a stream private to that query, unaffected by interleaved
        traffic of other queries.  Headerless messages (and the default
        mode) keep the single shared stream.
        """
        if not self.per_query_rng:
            return self._rng
        query_id = message.headers.get("query")
        if query_id is None:
            return self._rng
        rng = self._query_rngs.get(query_id)
        if rng is None:
            rng = self._query_rngs[query_id] = random.Random(
                f"{self._seed}:q:{query_id}"
            )
        return rng

    def _route(self, sender: str, recipient: str) -> tuple[LinkQuality | None, int]:
        """Find link quality and hop count between two devices."""
        direct = self.topology.quality(sender, recipient)
        if direct is not None:
            return direct, 1
        if self.config.allow_relay:
            path = self.topology.path(sender, recipient)
            if path is not None and len(path) >= 2:
                # conservatively use the worst link quality on the path
                worst = None
                for a, b in zip(path, path[1:]):
                    quality = self.topology.quality(a, b)
                    if quality is None:
                        return None, 0
                    if worst is None or quality.base_latency > worst.base_latency:
                        worst = quality
                return worst, len(path) - 1
            return None, 0
        if self.topology.has_device(sender) and self.topology.has_device(recipient):
            # co-located fallback when no explicit topology is modelled
            return self.config.default_quality, 1
        return None, 0

    def _record_loss(self, message: Message) -> None:
        self.stats.lost += 1
        self._m_lost.inc()
        self._receipts.append(DeliveryReceipt(message.message_id, "lost"))

    def _arrive(self, message: Message) -> None:
        """A message physically reaches its destination's radio."""
        recipient = message.recipient
        if recipient in self._departed:
            self.stats.departed += 1
            self._m_departed.inc()
            self._receipts.append(DeliveryReceipt(message.message_id, "departed"))
            return
        if recipient in self._dead:
            self.stats.to_dead_device += 1
            self._m_dead.inc()
            self._receipts.append(DeliveryReceipt(message.message_id, "dead"))
            return
        if self.is_online(recipient):
            self._deliver(message)
            return
        # store-and-forward: buffer until reconnection or timeout
        self._inboxes.setdefault(recipient, []).append((self.simulator.now, message))
        self._g_buffered.inc()
        if self.config.buffer_timeout is not None:
            epoch = self._epoch
            self.simulator.schedule(
                self.config.buffer_timeout,
                lambda: (
                    self._expire(recipient, message)
                    if self._epoch == epoch
                    else None
                ),
                description=f"expire {message.describe()}",
            )

    def _expire(self, recipient: str, message: Message) -> None:
        inbox = self._inboxes.get(recipient, [])
        for i, (_, buffered) in enumerate(inbox):
            if buffered.message_id == message.message_id:
                del inbox[i]
                self.stats.dropped_timeout += 1
                self._m_dropped.inc()
                self._g_buffered.dec()
                self._receipts.append(
                    DeliveryReceipt(message.message_id, "dropped_timeout")
                )
                return

    def _flush_inbox(self, device_id: str) -> None:
        inbox = self._inboxes.get(device_id, [])
        self._inboxes[device_id] = []
        self._g_buffered.dec(len(inbox))
        for _, message in inbox:
            self._deliver(message)

    def _deliver(self, message: Message) -> None:
        message.delivered_at = self.simulator.now
        self.stats.delivered += 1
        self.stats.bytes_delivered += message.size_bytes
        self._m_delivered.inc()
        self._m_bytes_delivered.inc(message.size_bytes)
        in_flight = message.in_flight_time
        if in_flight is not None:
            self._h_latency.observe(in_flight)
        self.stats.bytes_by_recipient[message.recipient] = (
            self.stats.bytes_by_recipient.get(message.recipient, 0)
            + message.size_bytes
        )
        self._receipts.append(
            DeliveryReceipt(
                message.message_id, "delivered", latency=message.in_flight_time
            )
        )
        handler = self._handlers.get(message.recipient)
        if handler is not None:
            handler(message)

    # -- observability --------------------------------------------------------

    @property
    def receipts(self) -> list[DeliveryReceipt]:
        """All delivery receipts recorded so far."""
        return list(self._receipts)

    def buffered_count(self, device_id: str) -> int:
        """Messages currently buffered for an offline device."""
        return len(self._inboxes.get(device_id, []))
