"""Per-device, per-query demultiplexing of network deliveries.

The opportunistic network (:mod:`repro.network.opnet`) registers **one**
handler per device — the right model for a physical radio, but a latent
single-query assumption once several Edgelet queries execute
concurrently over one shared device population: whichever execution
attached last would swallow every delivery, including messages belonging
to another query (or to a *finished* one whose stragglers are still in
flight).

:class:`QueryMux` turns each device's single radio handler into a
routing table keyed by the ``query`` message header.  Executions never
talk to the mux directly; they receive a :class:`QueryEndpoint` — an
opnet-compatible facade (``send``/``attach``/``is_dead``/``simulator``)
scoped to one ``query_id`` that

* stamps ``headers["query"]`` on every outbound message, and
* registers inbound handlers in the mux's routing table instead of
  overwriting the device's radio handler.

Messages whose query has been detached (the execution completed) are
*dropped at the mux* and counted in ``net.mux_unrouted`` — stale
cross-query traffic can therefore never contaminate a later execution.
Messages without a ``query`` header fall back to the device's sole
registered route when exactly one exists, which keeps single-query
paths bit-for-bit compatible.

Layering: this module sits next to the opnet, strictly below
``repro.core`` (enforced by ``tools/check_layering.py``).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.network.messages import Message

__all__ = ["QUERY_HEADER", "QueryEndpoint", "QueryMux"]

Handler = Callable[[Message], None]

#: Transport-level header naming the query an application message
#: belongs to.  Stamped by :meth:`QueryEndpoint.send`; opaque to the
#: network and never part of the sealed payload.
QUERY_HEADER = "query"


class QueryMux:
    """Routes each device's deliveries to per-query handlers.

    Args:
        network: the underlying :class:`~repro.network.opnet.
            OpportunisticNetwork` (or any object with the same
            ``send``/``attach``/``is_dead``/``simulator``/``telemetry``
            surface).
        telemetry: defaults to the network's instance.
    """

    def __init__(self, network: Any, telemetry: Any = None):
        self.network = network
        self.simulator = network.simulator
        if telemetry is None:
            telemetry = network.telemetry
        self.telemetry = telemetry
        # device_id -> query_id -> handler
        self._routes: dict[str, dict[str, Handler]] = {}
        self._radio_attached: set[str] = set()
        self.unrouted = 0
        self._m_unrouted: dict[str, Any] = {}

    # -- endpoint factory ---------------------------------------------------

    def endpoint(self, query_id: str) -> "QueryEndpoint":
        """An opnet-compatible facade scoped to ``query_id``."""
        return QueryEndpoint(self, query_id)

    # -- registration -------------------------------------------------------

    def attach(self, device_id: str, query_id: str, handler: Handler) -> None:
        """Route ``device_id``'s deliveries for ``query_id`` to ``handler``."""
        routes = self._routes.setdefault(device_id, {})
        routes[query_id] = handler
        if device_id not in self._radio_attached:
            self._radio_attached.add(device_id)
            self.network.attach(device_id, self._make_radio(device_id))

    def detach_query(self, query_id: str) -> None:
        """Remove every route of a (finished) query.

        Subsequent deliveries addressed to it are dropped and counted —
        the isolation fence auditing that no straggler ever reaches a
        later execution's handlers.
        """
        for routes in self._routes.values():
            routes.pop(query_id, None)

    def routes_for(self, device_id: str) -> dict[str, Handler]:
        """The live routing table of one device (read-only view)."""
        return dict(self._routes.get(device_id, {}))

    # -- dispatch -----------------------------------------------------------

    def _make_radio(self, device_id: str) -> Handler:
        def dispatch(message: Message) -> None:
            routes = self._routes.get(device_id, {})
            query_id = message.headers.get(QUERY_HEADER)
            handler = None
            if query_id is not None:
                handler = routes.get(query_id)
            elif len(routes) == 1:
                # legacy traffic without a query header: a device serving
                # exactly one query behaves like the pre-mux network
                handler = next(iter(routes.values()))
            if handler is None:
                self._drop(message, query_id)
                return
            handler(message)

        return dispatch

    def _drop(self, message: Message, query_id: str | None) -> None:
        self.unrouted += 1
        label = query_id if query_id is not None else "<none>"
        counter = self._m_unrouted.get(label)
        if counter is None:
            counter = self._m_unrouted[label] = self.telemetry.metrics.counter(
                "net.mux_unrouted", query=label
            )
        counter.inc()


class QueryEndpoint:
    """One query's view of the shared network.

    Drop-in for the :class:`~repro.network.opnet.OpportunisticNetwork`
    from the execution runtime's (and the reliable transport's) point of
    view.  Deliberately does **not** expose ``stats`` — transport-level
    statistics belong either to the shared network or to a per-query
    :class:`~repro.network.reliable.ReliableTransport` layered on top.
    """

    def __init__(self, mux: QueryMux, query_id: str):
        self.mux = mux
        self.query_id = query_id
        self.simulator = mux.simulator
        self.telemetry = mux.telemetry

    def send(self, message: Message) -> None:
        """Stamp the query header and hand off to the shared network."""
        message.headers.setdefault(QUERY_HEADER, self.query_id)
        self.mux.network.send(message)

    def attach(self, device_id: str, handler: Handler) -> None:
        """Register this query's handler for one device."""
        self.mux.attach(device_id, self.query_id, handler)

    def detach(self) -> None:
        """Remove every route of this query (execution finished)."""
        self.mux.detach_query(self.query_id)

    # opnet surface the reliable transport and role runtimes consult
    def is_dead(self, device_id: str) -> bool:
        return self.mux.network.is_dead(device_id)

    def is_online(self, device_id: str) -> bool:
        return self.mux.network.is_online(device_id)
