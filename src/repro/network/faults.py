"""Message-level fault model (consumed by chaos campaigns above).

The paper's failure story is device-centric: edgelets crash or
disconnect at will, and the Backup/Overcollection strategies must keep
the three properties.  Real opportunistic networks misbehave at the
*message* level too — relays drop, retransmit, and delay envelopes, and
a compromised relay can tamper with ciphertext at the TEE boundary.
This module injects exactly those faults at the
:class:`~repro.network.opnet.OpportunisticNetwork` send path:

* **drop** — the message silently disappears before routing;
* **duplicate** — extra copies enter the network (each copy then takes
  its own independent loss/latency trials, so duplicates reorder);
* **delay** — an extra latency term is added, reordering the message
  against later sends;
* **corrupt** — the payload is tampered with: sealed
  :class:`~repro.crypto.envelope.Envelope` ciphertext is bit-flipped
  (the receiver's MAC check must reject it), cleartext payloads have
  their numeric data fields scaled (a Byzantine relay fabricating
  values, which only an invariant check can catch).

Faults are described by composable, JSON-serializable
:class:`FaultSpec` records and rolled by a :class:`MessageFaultInjector`
with its own seeded RNG, so a campaign run is a pure function of its
seed and the network's RNG stream is untouched when no injector is
installed.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass, field
from typing import Any

from repro.crypto.envelope import Envelope
from repro.network.messages import Message

__all__ = [
    "FaultSpec",
    "FaultDecision",
    "MessageFaultInjector",
    "corrupt_payload",
    "parse_fault_mix",
    "FAULT_KNOBS",
    "register_fault_knob",
    "fault_mix_help",
    "message_knobs",
]

# payload keys that carry routing/protocol structure rather than data;
# corruption must not touch them or the message stops being routable and
# the fault degenerates into a plain drop
_STRUCTURAL_KEYS = frozenset(
    {
        "op_id",
        "partition_index",
        "group_index",
        "contribution_id",
        "commitment",
        "n_sets",
        "n_aggs",
        "__aggregate__",
        "stats",
        "rank",
        "shipped",
        "base",
        "registers",
        "knowledges_merged",
        "k",
        # fencing token: corrupting it would turn a tamper fault into a
        # bogus promotion/rejection, which is a different failure mode
        "generation",
    }
)


# -- fault-knob registry ------------------------------------------------------
#
# Every fault kind the chaos CLI can express registers its knobs here,
# keyed by the ``name=value`` token accepted in ``--fault-mix`` strings.
# The CLI help text and the parser's "known knobs" set are both derived
# from this registry, so a new fault family (e.g. the topology-level
# outages in :mod:`repro.network.outages`) appears in ``--fault-mix
# --help`` automatically the moment its module registers its knobs.

#: knob name -> (scope, one-line description).  Scope ``"message"``
#: knobs configure :class:`FaultSpec` rules rolled per send;
#: ``"outage"`` knobs configure topology-level outage generation.
FAULT_KNOBS: dict[str, tuple[str, str]] = {}


def register_fault_knob(name: str, scope: str, description: str) -> None:
    """Register one ``--fault-mix`` knob (idempotent per name)."""
    if scope not in ("message", "outage"):
        raise ValueError(f"unknown fault-knob scope {scope!r}")
    FAULT_KNOBS[name] = (scope, description)


def message_knobs() -> frozenset[str]:
    """Knob names that configure per-message :class:`FaultSpec` rules."""
    return frozenset(
        name for name, (scope, _) in FAULT_KNOBS.items() if scope == "message"
    )


def fault_mix_help() -> str:
    """Render the registry as CLI help text, grouped by scope."""
    lines: list[str] = []
    for scope, title in (("message", "message faults"), ("outage", "topology outages")):
        knobs = [
            (name, desc)
            for name, (knob_scope, desc) in sorted(FAULT_KNOBS.items())
            if knob_scope == scope
        ]
        if not knobs:
            continue
        lines.append(f"{title}: " + "; ".join(f"{n} ({d})" for n, d in knobs))
    return " | ".join(lines)


for _name, _desc in (
    ("drop", "P(message vanishes before routing)"),
    ("duplicate", "P(one extra copy is injected)"),
    ("delay", "P(extra latency term)"),
    ("delay_min", "min extra delay, seconds"),
    ("delay_max", "max extra delay, seconds"),
    ("corrupt", "P(payload tampered at the TEE boundary)"),
    ("corrupt_scale", "factor applied to corrupted numeric leaves"),
):
    register_fault_knob(_name, "message", _desc)


@dataclass(frozen=True)
class FaultSpec:
    """One composable message-fault rule.

    Attributes:
        kinds: message kinds (``MessageKind.value`` strings) the rule
            applies to; ``None`` applies to every kind.
        drop_probability: chance the message vanishes before routing.
        duplicate_probability: chance one extra copy is injected.
        delay_probability: chance of an extra latency term.
        delay_range: (min, max) of the uniform extra delay, seconds.
        corrupt_probability: chance the payload is tampered with.
        corrupt_scale: factor applied to numeric data leaves of
            cleartext payloads when corrupting.
    """

    kinds: tuple[str, ...] | None = None
    drop_probability: float = 0.0
    duplicate_probability: float = 0.0
    delay_probability: float = 0.0
    delay_range: tuple[float, float] = (1.0, 5.0)
    corrupt_probability: float = 0.0
    corrupt_scale: float = 4.0

    def __post_init__(self) -> None:
        for name in (
            "drop_probability",
            "duplicate_probability",
            "delay_probability",
            "corrupt_probability",
        ):
            value = getattr(self, name)
            if not 0 <= value <= 1:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        low, high = self.delay_range
        if low < 0 or high < low:
            raise ValueError(f"need 0 <= min <= max delay, got {self.delay_range}")
        if self.kinds is not None:
            object.__setattr__(self, "kinds", tuple(self.kinds))

    def matches(self, kind_value: str) -> bool:
        """Whether this rule applies to a message of the given kind."""
        return self.kinds is None or kind_value in self.kinds

    def is_noop(self) -> bool:
        """Whether this rule can never alter a message."""
        return (
            self.drop_probability == 0
            and self.duplicate_probability == 0
            and self.delay_probability == 0
            and self.corrupt_probability == 0
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible representation (artifact serialization)."""
        return {
            "kinds": list(self.kinds) if self.kinds is not None else None,
            "drop_probability": self.drop_probability,
            "duplicate_probability": self.duplicate_probability,
            "delay_probability": self.delay_probability,
            "delay_range": list(self.delay_range),
            "corrupt_probability": self.corrupt_probability,
            "corrupt_scale": self.corrupt_scale,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FaultSpec":
        kinds = data.get("kinds")
        return cls(
            kinds=tuple(kinds) if kinds is not None else None,
            drop_probability=float(data.get("drop_probability", 0.0)),
            duplicate_probability=float(data.get("duplicate_probability", 0.0)),
            delay_probability=float(data.get("delay_probability", 0.0)),
            delay_range=tuple(data.get("delay_range", (1.0, 5.0))),  # type: ignore[arg-type]
            corrupt_probability=float(data.get("corrupt_probability", 0.0)),
            corrupt_scale=float(data.get("corrupt_scale", 4.0)),
        )


@dataclass(frozen=True)
class FaultDecision:
    """The resolved fate of one send attempt (for logs and shrinking)."""

    message_id: int
    kind: str
    drop: bool = False
    copies: int = 1
    extra_delay: float = 0.0
    corrupt: bool = False

    @property
    def is_fault(self) -> bool:
        return self.drop or self.copies != 1 or self.extra_delay > 0 or self.corrupt


_CLEAN = FaultDecision(message_id=0, kind="")


def _corrupt_tree(value: Any, scale: float) -> Any:
    """Deep-copy ``value`` scaling numeric data leaves."""
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return value * scale
    if isinstance(value, dict):
        return {
            key: (val if key in _STRUCTURAL_KEYS else _corrupt_tree(val, scale))
            for key, val in value.items()
        }
    if isinstance(value, (list, tuple)):
        out = [_corrupt_tree(item, scale) for item in value]
        return tuple(out) if isinstance(value, tuple) else out
    return value


def corrupt_payload(payload: Any, scale: float = 4.0) -> Any:
    """Return a tampered copy of a message payload.

    Sealed envelopes get their first ciphertext byte flipped — the
    receiver's encrypt-then-MAC check rejects the envelope, so the
    corruption surfaces as a silent loss (the TEE boundary holds).
    Cleartext dict/list payloads get numeric data leaves multiplied by
    ``scale``, modelling a Byzantine relay that fabricates values —
    only a downstream validity check can catch that.  Other payloads
    are returned unchanged.
    """
    if isinstance(payload, Envelope):
        tampered = bytes([payload.ciphertext[0] ^ 0xFF]) + payload.ciphertext[1:]
        return dataclasses.replace(payload, ciphertext=tampered)
    if isinstance(payload, (dict, list, tuple)):
        return _corrupt_tree(payload, scale)
    return payload


class MessageFaultInjector:
    """Seeded message-fault oracle consulted by the network on send.

    Owns its own :class:`random.Random` so installing it never perturbs
    the network's loss/latency RNG stream — a campaign run with an
    all-zero fault mix is bit-for-bit identical to one with no injector
    at all.
    """

    def __init__(self, specs: list[FaultSpec] | tuple[FaultSpec, ...], seed: int = 0):
        self.specs: tuple[FaultSpec, ...] = tuple(specs)
        self.seed = seed
        self._rng = random.Random(seed)
        self.decisions: list[FaultDecision] = []

    def on_send(self, message: Message) -> FaultDecision:
        """Roll the fate of one message; faulty decisions are logged."""
        kind = message.kind.value
        drop = False
        copies = 1
        extra_delay = 0.0
        corrupt = False
        rolled = False
        for spec in self.specs:
            if not spec.matches(kind) or spec.is_noop():
                continue
            rolled = True
            if self._rng.random() < spec.drop_probability:
                drop = True
            if self._rng.random() < spec.duplicate_probability:
                copies += 1
            if self._rng.random() < spec.delay_probability:
                extra_delay += self._rng.uniform(*spec.delay_range)
            if self._rng.random() < spec.corrupt_probability:
                corrupt = True
        if not rolled:
            return _CLEAN
        decision = FaultDecision(
            message_id=message.message_id,
            kind=kind,
            drop=drop,
            copies=copies,
            extra_delay=extra_delay,
            corrupt=corrupt,
        )
        if decision.is_fault:
            self.decisions.append(decision)
        return decision

    def corrupt_payload(self, payload: Any) -> Any:
        """Tamper a payload using the first matching corrupting spec's scale."""
        scale = next(
            (s.corrupt_scale for s in self.specs if s.corrupt_probability > 0), 4.0
        )
        return corrupt_payload(payload, scale)

    def fault_counts(self) -> dict[str, int]:
        """Tally of injected faults by category (for summaries)."""
        counts = {"dropped": 0, "duplicated": 0, "delayed": 0, "corrupted": 0}
        for decision in self.decisions:
            if decision.drop:
                counts["dropped"] += 1
            if decision.copies > 1:
                counts["duplicated"] += decision.copies - 1
            if decision.extra_delay > 0:
                counts["delayed"] += 1
            if decision.corrupt:
                counts["corrupted"] += 1
        return counts


def parse_fault_mix(text: str) -> tuple[FaultSpec, ...]:
    """Parse a CLI fault-mix string into fault specs.

    Grammar (``;`` separates independent specs)::

        mix   ::= spec (";" spec)*
        spec  ::= [kinds ":"] knob ("," knob)*
        kinds ::= kind ("+" kind)*          # e.g. partition+partial_result
        knob  ::= name "=" float            # drop, duplicate, delay,
                                            # delay_min, delay_max,
                                            # corrupt, corrupt_scale

    Examples::

        drop=0.05,duplicate=0.02
        partition:corrupt=0.5,corrupt_scale=8;delay=0.1,delay_max=10
    """
    specs: list[FaultSpec] = []
    for chunk in text.split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        kinds: tuple[str, ...] | None = None
        if ":" in chunk:
            kinds_part, chunk = chunk.split(":", 1)
            kinds = tuple(k.strip() for k in kinds_part.split("+") if k.strip())
        knobs: dict[str, float] = {}
        for knob in chunk.split(","):
            knob = knob.strip()
            if not knob:
                continue
            if "=" not in knob:
                raise ValueError(f"fault-mix knob {knob!r} is not name=value")
            name, value = knob.split("=", 1)
            knobs[name.strip()] = float(value)
        known = message_knobs()
        unknown = set(knobs) - known
        if unknown:
            raise ValueError(
                f"unknown fault-mix knob(s) {sorted(unknown)}; expected {sorted(known)}"
            )
        specs.append(
            FaultSpec(
                kinds=kinds,
                drop_probability=knobs.get("drop", 0.0),
                duplicate_probability=knobs.get("duplicate", 0.0),
                delay_probability=knobs.get("delay", 0.0),
                delay_range=(
                    knobs.get("delay_min", 1.0),
                    knobs.get("delay_max", 5.0),
                ),
                corrupt_probability=knobs.get("corrupt", 0.0),
                corrupt_scale=knobs.get("corrupt_scale", 4.0),
            )
        )
    if not specs:
        raise ValueError("empty fault mix")
    return tuple(specs)
