"""End-to-end reliability layer over the opportunistic network.

The substrate (:mod:`repro.network.opnet`) is deliberately unreliable:
per-link loss, store-and-forward timeouts, crashed peers.  The Edgelet
strategies tolerate that with *overprovisioning* (extra partitions,
replica chains, blind contribution copies).  This module adds the
complementary transport-level defence — detect, retry, and give up with
a receipt:

* **Per-kind delivery policies.**  Each :class:`MessageKind` maps to a
  :class:`DeliveryPolicy` — ``at_most_once`` (fire and forget, exactly
  the raw opnet behaviour) or ``at_least_once`` (ACK-confirmed with
  retransmission).  Defaults harden the result-bearing path
  (contribution / partition / partial / final / checkpoint) and leave
  the chatty cadence kinds (heartbeat, knowledge, control, ...) cheap.
* **ACK-based retransmission** with exponential backoff and seeded
  jitter drawn from a per-concern derived RNG, so enabling the layer
  never perturbs the opnet or fault-injector RNG streams and fixed
  seeds stay bit-for-bit reproducible.
* **Adaptive timeouts.**  Per-link SRTT/RTTVAR estimation in the
  Jacobson style, with Karn's rule (no samples from retransmitted
  transfers); the retransmit timeout is ``srtt + 4 * rttvar`` clamped
  to configured bounds.
* **Per-link circuit breakers** that stop hammering a partitioned or
  dead peer after consecutive failed transfers, and a global
  **retransmission budget**; both failure modes surface as
  :class:`TransportReceipt` records (drop-with-receipt, never silent).

Everything runs on the virtual clock of the underlying network's
simulator.  This module sits *below* ``repro.core`` in the layering:
it must never import from it (enforced by ``tools/check_layering.py``).
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.network.messages import Message, MessageKind
from repro.network.opnet import OpportunisticNetwork

__all__ = [
    "AT_LEAST_ONCE",
    "AT_MOST_ONCE",
    "CircuitBreaker",
    "DeliveryPolicy",
    "ReliabilityConfig",
    "ReliableTransport",
    "RttEstimator",
    "TransportReceipt",
    "TransportStats",
]

Handler = Callable[[Message], None]

AT_MOST_ONCE = "at_most_once"
AT_LEAST_ONCE = "at_least_once"

TRANSFER_HEADER = "transfer_id"
ATTEMPT_HEADER = "attempt"


@dataclass(frozen=True)
class DeliveryPolicy:
    """How one message kind is delivered.

    Attributes:
        mode: ``at_most_once`` (raw opnet send) or ``at_least_once``
            (ACK-confirmed, retransmitted until acknowledged or spent).
        max_attempts: total transmissions per transfer, the original
            send included.
        backoff_factor: multiplier applied to the retransmit timeout on
            every successive attempt (exponential backoff).
        jitter_fraction: each armed timeout is stretched by up to this
            fraction, sampled from the transport's derived jitter RNG,
            to de-synchronise retransmission bursts.
    """

    mode: str = AT_MOST_ONCE
    max_attempts: int = 4
    backoff_factor: float = 2.0
    jitter_fraction: float = 0.1

    def __post_init__(self) -> None:
        if self.mode not in (AT_MOST_ONCE, AT_LEAST_ONCE):
            raise ValueError(f"unknown delivery mode {self.mode!r}")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.backoff_factor < 1:
            raise ValueError("backoff_factor must be >= 1")
        if not 0 <= self.jitter_fraction <= 1:
            raise ValueError("jitter_fraction must be in [0, 1]")


def default_policies() -> dict[MessageKind, DeliveryPolicy]:
    """The stock policy table (see DESIGN.md "Reliability & recovery").

    Result-bearing kinds are acknowledged; cadence and gossip kinds —
    which are periodic or redundant by construction — stay cheap.
    """
    confirmed = DeliveryPolicy(mode=AT_LEAST_ONCE)
    return {
        MessageKind.CONTRIBUTION: confirmed,
        MessageKind.PARTITION: confirmed,
        MessageKind.PARTIAL_RESULT: confirmed,
        MessageKind.FINAL_RESULT: confirmed,
        MessageKind.CHECKPOINT: confirmed,
        MessageKind.KNOWLEDGE: DeliveryPolicy(),
        MessageKind.HEARTBEAT: DeliveryPolicy(),
        MessageKind.ATTESTATION: DeliveryPolicy(),
        MessageKind.CONTROL: DeliveryPolicy(),
        MessageKind.ACK: DeliveryPolicy(),
    }


@dataclass(frozen=True)
class ReliabilityConfig:
    """Tunable knobs of the reliability layer.

    Attributes:
        policies: per-kind delivery policy overrides; kinds absent here
            fall back to :func:`default_policies`.
        initial_rto: retransmit timeout (virtual seconds) used on a link
            before any RTT sample exists.
        min_rto / max_rto: clamp bounds for the adaptive timeout, after
            backoff is applied.
        ack_size_bytes: wire size of an acknowledgement.
        retransmit_budget: total retransmissions the transport may spend
            across all transfers; ``None`` is unlimited.  Exhaustion
            drops the transfer with a ``budget_exhausted`` receipt.
        breaker_threshold: consecutive failed transfers on one link that
            trip its circuit breaker open.
        breaker_cooldown: virtual seconds an open breaker waits before
            letting a probe transfer through (half-open).
    """

    policies: tuple[tuple[MessageKind, DeliveryPolicy], ...] = ()
    initial_rto: float = 5.0
    min_rto: float = 0.25
    max_rto: float = 30.0
    ack_size_bytes: int = 32
    retransmit_budget: int | None = 1024
    breaker_threshold: int = 3
    breaker_cooldown: float = 20.0

    def __post_init__(self) -> None:
        if self.initial_rto <= 0 or self.min_rto <= 0:
            raise ValueError("timeouts must be positive")
        if self.max_rto < self.min_rto:
            raise ValueError("max_rto must be >= min_rto")
        if self.ack_size_bytes <= 0:
            raise ValueError("ack_size_bytes must be positive")
        if self.retransmit_budget is not None and self.retransmit_budget < 0:
            raise ValueError("retransmit_budget must be non-negative")
        if self.breaker_threshold < 1:
            raise ValueError("breaker_threshold must be at least 1")
        if self.breaker_cooldown < 0:
            raise ValueError("breaker_cooldown must be non-negative")

    def policy_for(self, kind: MessageKind) -> DeliveryPolicy:
        """Resolve the delivery policy for a message kind."""
        for candidate, policy in self.policies:
            if candidate is kind:
                return policy
        return default_policies().get(kind, DeliveryPolicy())


class RttEstimator:
    """Jacobson-style smoothed RTT tracker for one directed link.

    ``srtt`` and ``rttvar`` follow RFC 6298 gains (1/8 and 1/4); the
    retransmit timeout is ``srtt + 4 * rttvar``, clamped to the
    configured bounds.  Callers apply Karn's rule: samples are only fed
    from transfers that were never retransmitted.
    """

    def __init__(self, config: ReliabilityConfig):
        self._config = config
        self.srtt: float | None = None
        self.rttvar: float | None = None
        self.samples = 0

    def observe(self, sample: float) -> None:
        """Fold one round-trip sample into the smoothed estimate."""
        if sample < 0:
            raise ValueError("rtt sample must be non-negative")
        if self.srtt is None or self.rttvar is None:
            self.srtt = sample
            self.rttvar = sample / 2
        else:
            self.rttvar = 0.75 * self.rttvar + 0.25 * abs(self.srtt - sample)
            self.srtt = 0.875 * self.srtt + 0.125 * sample
        self.samples += 1

    @property
    def rto(self) -> float:
        """Current retransmit timeout (before backoff)."""
        if self.srtt is None or self.rttvar is None:
            return self._config.initial_rto
        raw = self.srtt + 4 * self.rttvar
        return min(max(raw, self._config.min_rto), self._config.max_rto)


class CircuitBreaker:
    """Consecutive-failure breaker for one directed link.

    Closed by default; :meth:`record_failure` trips it open after the
    configured threshold, and it stays open until the cooldown elapses,
    after which one probe transfer is let through (half-open).  A
    success closes it again; a failed probe re-opens it immediately.
    """

    def __init__(self, threshold: int, cooldown: float):
        self.threshold = threshold
        self.cooldown = cooldown
        self.failures = 0
        self.opened_count = 0
        self._open_until: float | None = None

    @property
    def is_open(self) -> bool:
        return self._open_until is not None

    def allows(self, now: float) -> bool:
        """Whether a transfer may use the link right now."""
        if self._open_until is None:
            return True
        return now >= self._open_until  # half-open probe

    def record_success(self) -> None:
        self.failures = 0
        self._open_until = None

    def record_failure(self, now: float) -> None:
        self.failures += 1
        if self.failures >= self.threshold:
            if self._open_until is None or now >= self._open_until:
                self.opened_count += 1
            self._open_until = now + self.cooldown


@dataclass(frozen=True)
class TransportReceipt:
    """Terminal outcome of one at-least-once transfer."""

    transfer_id: int
    kind: str
    sender: str
    recipient: str
    outcome: str  # "acked", "gave_up", "budget_exhausted",
    #               "circuit_open", "peer_dead"
    attempts: int
    rtt: float | None = None


class TransportStats:
    """Aggregate counters maintained by the reliability layer."""

    def __init__(self) -> None:
        self.sent_at_most_once = 0
        self.transfers_started = 0
        self.transfers_acked = 0
        self.transfers_failed = 0
        self.probes_sent = 0
        self.departure_fast_fails = 0
        self.retransmissions = 0
        self.acks_sent = 0
        self.stale_acks = 0
        self.duplicates_suppressed = 0
        self.rtt_samples = 0
        self.circuit_fast_fails = 0

    def as_dict(self) -> dict[str, float]:
        """Snapshot of all counters for reports and dashboards."""
        return dict(vars(self))


@dataclass
class _Pending:
    """Book-keeping for one in-flight at-least-once transfer."""

    transfer_id: int
    template: Message
    policy: DeliveryPolicy
    attempts: int = 0
    last_sent_at: float = 0.0
    retransmitted: bool = False
    done: bool = False


class ReliableTransport:
    """ACK/retransmission overlay sharing the opnet's send/attach API.

    Drop-in for the network from the runtime's point of view: callers
    use :meth:`attach` and :meth:`send` exactly as they would on the
    :class:`OpportunisticNetwork`, and the transport transparently
    acknowledges, deduplicates, and retransmits according to the
    per-kind policy table.  All timers run on the network's simulator,
    and all randomness (retransmit jitter) comes from a derived
    per-concern RNG seeded as ``f"{seed}:reliable:jitter"``.
    """

    def __init__(
        self,
        network: OpportunisticNetwork,
        config: ReliabilityConfig | None = None,
        seed: int = 0,
        telemetry: Any = None,
    ):
        self.network = network
        self.simulator = network.simulator
        self.config = config or ReliabilityConfig()
        self.stats = TransportStats()
        self._seed = seed
        self._jitter_rng = random.Random(f"{seed}:reliable:jitter")
        self._transfer_ids = itertools.count(1)
        self._pending: dict[int, _Pending] = {}
        self._seen: dict[str, set[int]] = {}
        self._estimators: dict[tuple[str, str], RttEstimator] = {}
        self._breakers: dict[tuple[str, str], CircuitBreaker] = {}
        self._receipts: list[TransportReceipt] = []
        self._budget_left = self.config.retransmit_budget
        # per-link delivery observers (e.g. the φ-accrual failure
        # detector in repro.core.runtime.detector, which must not be
        # imported from here — the layering points the other way, so it
        # registers a callback instead)
        self._link_observers: list[
            Callable[[str, str, str, float | None], None]
        ] = []
        # probes are single-shot acknowledged transfers: one timeout is
        # the evidence, retrying would only blur it
        self._probe_policy = DeliveryPolicy(
            mode=AT_LEAST_ONCE, max_attempts=1, jitter_fraction=0.0
        )
        # graceful departures fail in-flight transfers immediately
        # instead of retransmitting into the void until the budget
        # drains (the mux wrapper used by the workload engine does not
        # expose the hook; transfers there still fail via is_dead())
        register = getattr(network, "add_departure_listener", None)
        if register is not None:
            register(self._on_peer_departed)
        if telemetry is None:
            telemetry = network.telemetry
        self.telemetry = telemetry
        metrics = telemetry.metrics
        self._m_retransmissions = metrics.counter("reliable.retransmissions")
        self._m_acked = metrics.counter("reliable.transfers_acked")
        self._m_failed = metrics.counter("reliable.transfers_failed")
        self._m_acks_sent = metrics.counter("reliable.acks_sent")
        self._m_duplicates = metrics.counter("reliable.duplicates_suppressed")
        self._m_circuit = metrics.counter("reliable.circuit_fast_fails")
        self._h_rtt = metrics.histogram("reliable.rtt")

    # -- public API (opnet-compatible) --------------------------------------

    def attach(self, device_id: str, handler: Handler) -> None:
        """Register a device; its handler sees deduplicated app traffic."""
        self.network.attach(device_id, self._make_receiver(device_id, handler))

    def send(self, message: Message) -> None:
        """Send under the kind's policy (never blocks)."""
        policy = self.config.policy_for(message.kind)
        if policy.mode == AT_MOST_ONCE or message.kind is MessageKind.ACK:
            self.stats.sent_at_most_once += 1
            self.network.send(message)
            return
        if self._peer_departed(message.recipient):
            # fail fast: the owner walked away, no retransmission can
            # ever be answered
            self.stats.departure_fast_fails += 1
            self.stats.transfers_started += 1
            self._fail(
                _Pending(
                    transfer_id=next(self._transfer_ids),
                    template=message,
                    policy=policy,
                ),
                "peer_dead",
            )
            return
        transfer_id = next(self._transfer_ids)
        message.headers[TRANSFER_HEADER] = transfer_id
        pending = _Pending(
            transfer_id=transfer_id, template=message, policy=policy
        )
        self._pending[transfer_id] = pending
        self.stats.transfers_started += 1
        self._transmit(pending)

    def reset(self) -> None:
        """Clear transfer state alongside an opnet/simulator reset."""
        self.stats = TransportStats()
        self._jitter_rng = random.Random(f"{self._seed}:reliable:jitter")
        self._transfer_ids = itertools.count(1)
        self._pending.clear()
        self._seen.clear()
        self._estimators.clear()
        self._breakers.clear()
        self._receipts.clear()
        self._budget_left = self.config.retransmit_budget

    # -- observability ------------------------------------------------------

    @property
    def receipts(self) -> list[TransportReceipt]:
        """Terminal receipts for every finished at-least-once transfer."""
        return list(self._receipts)

    @property
    def pending_count(self) -> int:
        """Transfers still awaiting acknowledgement."""
        return sum(1 for p in self._pending.values() if not p.done)

    def rto_for(self, sender: str, recipient: str) -> float:
        """Current adaptive timeout of a directed link (before backoff)."""
        return self._estimator((sender, recipient)).rto

    def breaker_for(self, sender: str, recipient: str) -> CircuitBreaker:
        """The circuit breaker guarding a directed link."""
        return self._breaker((sender, recipient))

    def add_link_observer(
        self, observer: Callable[[str, str, str, float | None], None]
    ) -> None:
        """Register ``observer(sender, recipient, outcome, rtt)`` called
        on every terminal transfer outcome — the hook that feeds
        per-link delivery evidence to an adaptive failure detector
        without this module importing one."""
        self._link_observers.append(observer)

    def probe(self, sender: str, recipient: str, size_bytes: int = 32) -> int:
        """Send a single-shot liveness probe over a directed link.

        A heartbeat carrying a transfer id: the receiver ACKs it like
        any acknowledged transfer, so the probe's outcome (``acked``
        within the adaptive RTO, or ``gave_up`` on timeout) reaches the
        registered link observers.  Returns the transfer id.
        """
        message = Message(
            sender=sender,
            recipient=recipient,
            kind=MessageKind.HEARTBEAT,
            payload={"__probe__": True},
            size_bytes=size_bytes,
        )
        if self._peer_departed(recipient):
            self.stats.departure_fast_fails += 1
            self.stats.transfers_started += 1
            pending = _Pending(
                transfer_id=next(self._transfer_ids),
                template=message,
                policy=self._probe_policy,
            )
            self._fail(pending, "peer_dead")
            return pending.transfer_id
        transfer_id = next(self._transfer_ids)
        message.headers[TRANSFER_HEADER] = transfer_id
        pending = _Pending(
            transfer_id=transfer_id, template=message, policy=self._probe_policy
        )
        self._pending[transfer_id] = pending
        self.stats.transfers_started += 1
        self.stats.probes_sent += 1
        self._transmit(pending)
        return transfer_id

    # -- internals ----------------------------------------------------------

    def _peer_departed(self, device_id: str) -> bool:
        checker = getattr(self.network, "has_departed", None)
        return bool(checker is not None and checker(device_id))

    def _on_peer_departed(self, device_id: str) -> None:
        """Fail every in-flight transfer addressed to a departed peer.

        Surfacing ``peer_dead`` immediately (instead of lazily on the
        next RTO expiry, then again per attempt until the budget or
        attempt cap drained) is the graceful-departure contract: the
        network told us the owner left, so the evidence is conclusive.
        """
        doomed = [
            pending
            for pending in self._pending.values()
            if not pending.done and pending.template.recipient == device_id
        ]
        for pending in doomed:
            self.stats.departure_fast_fails += 1
            self._fail(pending, "peer_dead")

    def _estimator(self, link: tuple[str, str]) -> RttEstimator:
        estimator = self._estimators.get(link)
        if estimator is None:
            estimator = self._estimators[link] = RttEstimator(self.config)
        return estimator

    def _breaker(self, link: tuple[str, str]) -> CircuitBreaker:
        breaker = self._breakers.get(link)
        if breaker is None:
            breaker = self._breakers[link] = CircuitBreaker(
                self.config.breaker_threshold, self.config.breaker_cooldown
            )
        return breaker

    def _make_receiver(self, device_id: str, handler: Handler) -> Handler:
        def receive(message: Message) -> None:
            if message.kind is MessageKind.ACK:
                self._on_ack(message)
                return
            transfer_id = message.headers.get(TRANSFER_HEADER)
            if transfer_id is None:
                handler(message)
                return
            # acknowledge first (even duplicates: the earlier ACK may
            # have been lost, which is why the sender retransmitted)
            self._send_ack(device_id, message.sender, transfer_id, message)
            seen = self._seen.setdefault(device_id, set())
            if transfer_id in seen:
                self.stats.duplicates_suppressed += 1
                self._m_duplicates.inc()
                return
            seen.add(transfer_id)
            handler(message)

        return receive

    def _send_ack(
        self,
        device_id: str,
        peer: str,
        transfer_id: int,
        inbound: Message | None = None,
    ) -> None:
        # ACKs carry only the transfer id — no application data leaves
        # the sealed payload path through them
        self.stats.acks_sent += 1
        self._m_acks_sent.inc()
        ack = Message(
            sender=device_id,
            recipient=peer,
            kind=MessageKind.ACK,
            payload={TRANSFER_HEADER: transfer_id},
            size_bytes=self.config.ack_size_bytes,
        )
        if inbound is not None and "query" in inbound.headers:
            # route the ACK back to the query whose transfer it
            # acknowledges — under a query mux the sender's transport is
            # reachable only through that query's routing table
            ack.headers["query"] = inbound.headers["query"]
        self.network.send(ack)

    def _on_ack(self, message: Message) -> None:
        payload = message.payload
        transfer_id = (
            payload.get(TRANSFER_HEADER) if isinstance(payload, dict) else None
        )
        pending = self._pending.get(transfer_id) if transfer_id else None
        if pending is None or pending.done:
            self.stats.stale_acks += 1
            return
        pending.done = True
        link = (pending.template.sender, pending.template.recipient)
        self._breaker(link).record_success()
        rtt = None
        if not pending.retransmitted:  # Karn's rule
            rtt = self.simulator.now - pending.last_sent_at
            self._estimator(link).observe(rtt)
            self.stats.rtt_samples += 1
            self._h_rtt.observe(rtt)
        self.stats.transfers_acked += 1
        self._m_acked.inc()
        self._finish(pending, "acked", rtt=rtt)

    def _transmit(self, pending: _Pending) -> None:
        attempt = pending.attempts
        pending.attempts += 1
        pending.last_sent_at = self.simulator.now
        template = pending.template
        if attempt == 0:
            wire = template
        else:
            wire = Message(
                sender=template.sender,
                recipient=template.recipient,
                kind=template.kind,
                payload=template.payload,
                size_bytes=template.size_bytes,
                headers=dict(template.headers),
            )
        wire.headers[ATTEMPT_HEADER] = attempt
        self.network.send(wire)

        link = (template.sender, template.recipient)
        timeout = self._estimator(link).rto
        timeout *= pending.policy.backoff_factor**attempt
        timeout = min(max(timeout, self.config.min_rto), self.config.max_rto)
        if pending.policy.jitter_fraction:
            timeout *= 1 + (
                pending.policy.jitter_fraction * self._jitter_rng.random()
            )
        epoch = self.simulator.epoch
        transfer_id = pending.transfer_id
        self.simulator.schedule(
            timeout,
            lambda: (
                self._on_timeout(transfer_id)
                if self.simulator.epoch == epoch
                else None
            ),
            description=f"rto transfer#{transfer_id} attempt {attempt}",
        )

    def _on_timeout(self, transfer_id: int) -> None:
        pending = self._pending.get(transfer_id)
        if pending is None or pending.done:
            return
        now = self.simulator.now
        link = (pending.template.sender, pending.template.recipient)
        breaker = self._breaker(link)
        breaker.record_failure(now)
        if pending.attempts >= pending.policy.max_attempts:
            self._fail(pending, "gave_up")
            return
        if self.network.is_dead(pending.template.recipient):
            self._fail(pending, "peer_dead")
            return
        if not breaker.allows(now):
            self.stats.circuit_fast_fails += 1
            self._m_circuit.inc()
            self._fail(pending, "circuit_open")
            return
        if self._budget_left is not None and self._budget_left <= 0:
            self._fail(pending, "budget_exhausted")
            return
        if self._budget_left is not None:
            self._budget_left -= 1
        pending.retransmitted = True
        self.stats.retransmissions += 1
        self._m_retransmissions.inc()
        self._transmit(pending)

    def _fail(self, pending: _Pending, outcome: str) -> None:
        pending.done = True
        self.stats.transfers_failed += 1
        self._m_failed.inc()
        self._finish(pending, outcome)

    def _finish(
        self, pending: _Pending, outcome: str, rtt: float | None = None
    ) -> None:
        template = pending.template
        self._receipts.append(
            TransportReceipt(
                transfer_id=pending.transfer_id,
                kind=template.kind.value,
                sender=template.sender,
                recipient=template.recipient,
                outcome=outcome,
                attempts=pending.attempts,
                rtt=rtt,
            )
        )
        self._pending.pop(pending.transfer_id, None)
        if self._link_observers:
            # Karn's rule withholds the RTT from the *estimator* on
            # retransmitted transfers; the detector still wants an
            # arrival signal, so fall back to time-since-last-send
            sample = rtt
            if outcome == "acked" and sample is None:
                sample = self.simulator.now - pending.last_sent_at
            for observer in self._link_observers:
                observer(template.sender, template.recipient, outcome, sample)
