"""Topology-level outages: partitions, regional crashes, gray failures.

The message-level injector (:mod:`repro.network.faults`) perturbs one
send at a time; real edge deployments also fail at the *topology*
level — a Wi-Fi AP or cell sector drops a whole neighbourhood at once
(correlated crashes), a backhaul cut splits the swarm into components
that heal later (partitions), and an overloaded device turns slow and
lossy without dying (gray failure).  This module expresses those as:

* :class:`OutagePlan` — a fully-resolved, serializable schedule of
  partitions / regional crash events / gray windows, mirroring
  :class:`~repro.network.failures.FailurePlan`: artifacts replay
  byte-for-byte and ddmin shrinking works on plan atoms;
* :class:`OutageSpec` — a seeded generator configuration (region
  count, per-region partition/crash probabilities, gray knobs) that
  :func:`build_outage_plan` expands into a concrete plan as a pure
  function of ``(spec, device_ids, horizon, seed)``.

Region assignment is deterministic: sorted device ids round-robin over
``regions`` groups, modelling devices that share an AP.  Plans carry
resolved device-id tuples so replaying an artifact never recomputes
membership.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any

from repro.network.failures import FailureEvent
from repro.network.faults import register_fault_knob
from repro.network.opnet import OpportunisticNetwork
from repro.network.simulator import Simulator

__all__ = [
    "Partition",
    "RegionalCrash",
    "GrayWindow",
    "OutagePlan",
    "OutageSpec",
    "build_outage_plan",
    "assign_regions",
    "parse_outage_mix",
]


@dataclass(frozen=True)
class Partition:
    """One healing network cut: ``islands`` are mutually unreachable
    device groups (and unreachable from the implicit mainland of
    unlisted devices) during ``[start, end)``."""

    start: float
    end: float
    islands: tuple[tuple[str, ...], ...]

    def __post_init__(self) -> None:
        if not 0 <= self.start < self.end:
            raise ValueError("need 0 <= start < end")
        islands = tuple(tuple(island) for island in self.islands)
        if not islands or any(not island for island in islands):
            raise ValueError("partition needs non-empty islands")
        object.__setattr__(self, "islands", islands)

    def to_dict(self) -> dict[str, Any]:
        return {
            "start": self.start,
            "end": self.end,
            "islands": [sorted(island) for island in self.islands],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Partition":
        return cls(
            start=float(data["start"]),
            end=float(data["end"]),
            islands=tuple(tuple(str(d) for d in island) for island in data["islands"]),
        )


@dataclass(frozen=True)
class RegionalCrash:
    """One correlated crash event: every device in a region dies at
    once (an AP's whole neighbourhood going dark)."""

    at: float
    region: str
    devices: tuple[str, ...]

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError("crash time must be non-negative")
        if not self.devices:
            raise ValueError("regional crash needs at least one device")
        object.__setattr__(self, "devices", tuple(self.devices))

    def to_dict(self) -> dict[str, Any]:
        return {"at": self.at, "region": self.region, "devices": sorted(self.devices)}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "RegionalCrash":
        return cls(
            at=float(data["at"]),
            region=str(data["region"]),
            devices=tuple(str(d) for d in data["devices"]),
        )


@dataclass(frozen=True)
class GrayWindow:
    """One gray-failure window: the device stays alive but its links
    run at ``latency_factor`` × nominal latency with ``extra_loss``
    additional loss during ``[start, end)``."""

    device_id: str
    start: float
    end: float
    latency_factor: float = 4.0
    extra_loss: float = 0.3

    def __post_init__(self) -> None:
        if not 0 <= self.start < self.end:
            raise ValueError("need 0 <= start < end")
        if self.latency_factor < 1.0:
            raise ValueError("latency_factor must be >= 1")
        if not 0 <= self.extra_loss <= 1:
            raise ValueError("extra_loss must be in [0, 1]")

    def to_dict(self) -> dict[str, Any]:
        return {
            "device_id": self.device_id,
            "start": self.start,
            "end": self.end,
            "latency_factor": self.latency_factor,
            "extra_loss": self.extra_loss,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "GrayWindow":
        return cls(
            device_id=str(data["device_id"]),
            start=float(data["start"]),
            end=float(data["end"]),
            latency_factor=float(data.get("latency_factor", 4.0)),
            extra_loss=float(data.get("extra_loss", 0.3)),
        )


@dataclass
class OutagePlan:
    """Declarative topology-outage schedule (the FailurePlan analogue).

    Fully resolved: every event names concrete device ids, so a plan
    loaded from a JSON artifact replays without recomputing region
    membership.  ``apply`` installs epoch-fenced timers and returns a
    shared event log that fills as outages fire, using the same
    :class:`~repro.network.failures.FailureEvent` records with kinds
    ``partition_start`` / ``partition_heal`` / ``crash`` (one per
    regional-crash member) / ``gray_start`` / ``gray_end``.
    """

    partitions: list[Partition] = field(default_factory=list)
    regional_crashes: list[RegionalCrash] = field(default_factory=list)
    gray_windows: list[GrayWindow] = field(default_factory=list)

    def is_empty(self) -> bool:
        return not (self.partitions or self.regional_crashes or self.gray_windows)

    def partition_devices(self) -> set[str]:
        """Every device named by some partition island."""
        return {
            device
            for partition in self.partitions
            for island in partition.islands
            for device in island
        }

    def validate(self) -> None:
        for partition in self.partitions:
            seen: set[str] = set()
            for island in partition.islands:
                overlap = seen & set(island)
                if overlap:
                    raise ValueError(
                        f"device(s) {sorted(overlap)} appear in two islands of "
                        f"the partition starting at {partition.start}"
                    )
                seen |= set(island)

    def normalized(self) -> "OutagePlan":
        """Return an equivalent plan with events in deterministic order."""
        return OutagePlan(
            partitions=sorted(
                self.partitions, key=lambda p: (p.start, p.end, p.islands)
            ),
            regional_crashes=sorted(
                self.regional_crashes, key=lambda c: (c.at, c.region)
            ),
            gray_windows=sorted(
                self.gray_windows, key=lambda g: (g.start, g.end, g.device_id)
            ),
        )

    def to_dict(self) -> dict[str, Any]:
        plan = self.normalized()
        return {
            "partitions": [p.to_dict() for p in plan.partitions],
            "regional_crashes": [c.to_dict() for c in plan.regional_crashes],
            "gray_windows": [g.to_dict() for g in plan.gray_windows],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "OutagePlan":
        return cls(
            partitions=[Partition.from_dict(p) for p in data.get("partitions", [])],
            regional_crashes=[
                RegionalCrash.from_dict(c) for c in data.get("regional_crashes", [])
            ],
            gray_windows=[
                GrayWindow.from_dict(g) for g in data.get("gray_windows", [])
            ],
        )

    def apply(
        self, simulator: Simulator, network: OpportunisticNetwork
    ) -> list[FailureEvent]:
        """Install the schedule; returns the shared, initially-empty
        event log that fills as outages fire."""
        self.validate()
        plan = self.normalized()
        log: list[FailureEvent] = []
        epoch = network.epoch

        def make_partition(partition: Partition):
            token_box: list[int] = []

            def start() -> None:
                if network.epoch != epoch:
                    return
                token_box.append(network.partition(partition.islands))
                for island in partition.islands:
                    for device_id in sorted(island):
                        log.append(
                            FailureEvent(simulator.now, device_id, "partition_start")
                        )

            def heal() -> None:
                if network.epoch != epoch or not token_box:
                    return
                network.heal(token_box.pop())
                for island in partition.islands:
                    for device_id in sorted(island):
                        log.append(
                            FailureEvent(simulator.now, device_id, "partition_heal")
                        )

            return start, heal

        def make_regional_crash(crash: RegionalCrash):
            def fire() -> None:
                if network.epoch != epoch:
                    return
                for device_id in sorted(crash.devices):
                    if network.is_dead(device_id):
                        continue
                    network.kill(device_id)
                    log.append(FailureEvent(simulator.now, device_id, "crash"))

            return fire

        def make_gray(window: GrayWindow):
            def start() -> None:
                if network.epoch != epoch or network.is_dead(window.device_id):
                    return
                network.set_gray(
                    window.device_id, window.latency_factor, window.extra_loss
                )
                log.append(FailureEvent(simulator.now, window.device_id, "gray_start"))

            def end() -> None:
                if network.epoch != epoch:
                    return
                if network.is_gray(window.device_id):
                    network.clear_gray(window.device_id)
                    log.append(
                        FailureEvent(simulator.now, window.device_id, "gray_end")
                    )

            return start, end

        for partition in plan.partitions:
            start, heal = make_partition(partition)
            simulator.schedule_at(partition.start, start, "partition start")
            simulator.schedule_at(partition.end, heal, "partition heal")
        for crash in plan.regional_crashes:
            simulator.schedule_at(
                crash.at, make_regional_crash(crash), f"regional crash {crash.region}"
            )
        for window in plan.gray_windows:
            start, end = make_gray(window)
            simulator.schedule_at(window.start, start, f"gray {window.device_id}")
            simulator.schedule_at(window.end, end, f"gray end {window.device_id}")
        return log


@dataclass(frozen=True)
class OutageSpec:
    """Seeded outage-generation configuration (the campaign-side knob).

    Attributes:
        regions: number of AP/region groups devices round-robin into.
        partition_probability: per-region chance of one partition event
            cutting that region off the mainland for a while.
        partition_duration: (min, max) seconds a partition lasts.
        region_crash_probability: per-region chance the whole region
            crashes at a seeded instant (correlated failure).
        gray_probability: per-device chance of one gray window.
        gray_latency_factor: latency inflation inside a gray window.
        gray_extra_loss: additional loss probability inside a gray window.
        gray_duration: (min, max) seconds a gray window lasts.
    """

    regions: int = 4
    partition_probability: float = 0.0
    partition_duration: tuple[float, float] = (10.0, 30.0)
    region_crash_probability: float = 0.0
    gray_probability: float = 0.0
    gray_latency_factor: float = 4.0
    gray_extra_loss: float = 0.3
    gray_duration: tuple[float, float] = (10.0, 40.0)

    def __post_init__(self) -> None:
        if self.regions < 1:
            raise ValueError("regions must be >= 1")
        for name in (
            "partition_probability",
            "region_crash_probability",
            "gray_probability",
            "gray_extra_loss",
        ):
            value = getattr(self, name)
            if not 0 <= value <= 1:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.gray_latency_factor < 1.0:
            raise ValueError("gray_latency_factor must be >= 1")
        for name in ("partition_duration", "gray_duration"):
            low, high = getattr(self, name)
            if not 0 < low <= high:
                raise ValueError(f"need 0 < min <= max for {name}")
        object.__setattr__(
            self, "partition_duration", tuple(self.partition_duration)
        )
        object.__setattr__(self, "gray_duration", tuple(self.gray_duration))

    def is_noop(self) -> bool:
        return (
            self.partition_probability == 0
            and self.region_crash_probability == 0
            and self.gray_probability == 0
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "regions": self.regions,
            "partition_probability": self.partition_probability,
            "partition_duration": list(self.partition_duration),
            "region_crash_probability": self.region_crash_probability,
            "gray_probability": self.gray_probability,
            "gray_latency_factor": self.gray_latency_factor,
            "gray_extra_loss": self.gray_extra_loss,
            "gray_duration": list(self.gray_duration),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "OutageSpec":
        return cls(
            regions=int(data.get("regions", 4)),
            partition_probability=float(data.get("partition_probability", 0.0)),
            partition_duration=tuple(data.get("partition_duration", (10.0, 30.0))),  # type: ignore[arg-type]
            region_crash_probability=float(data.get("region_crash_probability", 0.0)),
            gray_probability=float(data.get("gray_probability", 0.0)),
            gray_latency_factor=float(data.get("gray_latency_factor", 4.0)),
            gray_extra_loss=float(data.get("gray_extra_loss", 0.3)),
            gray_duration=tuple(data.get("gray_duration", (10.0, 40.0))),  # type: ignore[arg-type]
        )


def assign_regions(device_ids: list[str], regions: int) -> dict[str, tuple[str, ...]]:
    """Deterministic AP/region grouping: sorted ids round-robin over
    ``regions`` groups named ``region-0`` … ``region-{n-1}``."""
    groups: dict[str, list[str]] = {f"region-{i}": [] for i in range(max(1, regions))}
    ordered = sorted(device_ids)
    names = sorted(groups)
    for index, device_id in enumerate(ordered):
        groups[names[index % len(names)]].append(device_id)
    return {name: tuple(members) for name, members in groups.items() if members}


def build_outage_plan(
    spec: OutageSpec,
    device_ids: list[str],
    horizon: float,
    seed: int,
) -> OutagePlan:
    """Expand a spec into a concrete plan — a pure function of its
    arguments, so campaign runs replay from (spec, seed) alone."""
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    rng = random.Random(f"{seed}:outages")
    plan = OutagePlan()
    regions = assign_regions(device_ids, spec.regions)
    for region_name in sorted(regions):
        members = regions[region_name]
        if rng.random() < spec.partition_probability:
            duration = rng.uniform(*spec.partition_duration)
            start = rng.uniform(0.0, max(horizon - duration, 0.0) or horizon * 0.5)
            plan.partitions.append(
                Partition(
                    start=start,
                    end=start + duration,
                    islands=(members,),
                )
            )
        if rng.random() < spec.region_crash_probability:
            plan.regional_crashes.append(
                RegionalCrash(
                    at=rng.uniform(0.0, horizon),
                    region=region_name,
                    devices=members,
                )
            )
    for device_id in sorted(device_ids):
        if rng.random() < spec.gray_probability:
            duration = rng.uniform(*spec.gray_duration)
            start = rng.uniform(0.0, max(horizon - duration, 0.0) or horizon * 0.5)
            plan.gray_windows.append(
                GrayWindow(
                    device_id=device_id,
                    start=start,
                    end=start + duration,
                    latency_factor=spec.gray_latency_factor,
                    extra_loss=spec.gray_extra_loss,
                )
            )
    return plan.normalized()


# -- CLI fault-mix integration ------------------------------------------------

_OUTAGE_KNOBS = {
    "regions": "number of AP/region groups (default 4)",
    "partition": "per-region P(partition cuts the region off for a while)",
    "partition_min": "min partition duration, seconds",
    "partition_max": "max partition duration, seconds",
    "region_crash": "per-region P(correlated crash of the whole region)",
    "gray": "per-device P(gray window: slow+lossy, not dead)",
    "gray_factor": "latency inflation inside a gray window",
    "gray_loss": "extra loss probability inside a gray window",
    "gray_min": "min gray-window duration, seconds",
    "gray_max": "max gray-window duration, seconds",
}

for _name, _desc in _OUTAGE_KNOBS.items():
    register_fault_knob(_name, "outage", _desc)


def parse_outage_mix(text: str) -> OutageSpec | None:
    """Parse the outage-scoped knobs out of a ``--fault-mix`` chunk.

    Accepts one comma-separated knob list (no kind prefix — outages are
    topology-level, not per-message-kind).  Returns ``None`` for an
    empty string.
    """
    knobs: dict[str, float] = {}
    for knob in text.split(","):
        knob = knob.strip()
        if not knob:
            continue
        if "=" not in knob:
            raise ValueError(f"outage knob {knob!r} is not name=value")
        name, value = knob.split("=", 1)
        name = name.strip()
        if name not in _OUTAGE_KNOBS:
            raise ValueError(
                f"unknown outage knob {name!r}; expected {sorted(_OUTAGE_KNOBS)}"
            )
        knobs[name] = float(value)
    if not knobs:
        return None
    return OutageSpec(
        regions=int(knobs.get("regions", 4)),
        partition_probability=knobs.get("partition", 0.0),
        partition_duration=(
            knobs.get("partition_min", 10.0),
            knobs.get("partition_max", 30.0),
        ),
        region_crash_probability=knobs.get("region_crash", 0.0),
        gray_probability=knobs.get("gray", 0.0),
        gray_latency_factor=knobs.get("gray_factor", 4.0),
        gray_extra_loss=knobs.get("gray_loss", 0.3),
        gray_duration=(knobs.get("gray_min", 10.0), knobs.get("gray_max", 40.0)),
    )


def split_chaos_mix(text: str) -> tuple[str, str]:
    """Split a combined ``--fault-mix`` string into (message part,
    outage part) by classifying each ``;``-separated chunk's knobs
    against the fault registry.  A chunk mixing both scopes is an
    error; kind-prefixed chunks are always message-scoped.
    """
    message_chunks: list[str] = []
    outage_chunks: list[str] = []
    for chunk in text.split(";"):
        stripped = chunk.strip()
        if not stripped:
            continue
        body = stripped.split(":", 1)[1] if ":" in stripped else stripped
        names = {
            knob.split("=", 1)[0].strip()
            for knob in body.split(",")
            if knob.strip()
        }
        outage_names = names & set(_OUTAGE_KNOBS)
        if ":" in stripped or not outage_names:
            message_chunks.append(stripped)
        elif outage_names == names:
            outage_chunks.append(stripped)
        else:
            raise ValueError(
                f"fault-mix chunk {stripped!r} mixes message knobs "
                f"{sorted(names - outage_names)} with outage knobs "
                f"{sorted(outage_names)}; separate them with ';'"
            )
    return ";".join(message_chunks), ",".join(outage_chunks)
