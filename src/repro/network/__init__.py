"""Opportunistic network substrate.

The Edgelet demonstration connects heterogeneous personal devices through
"uncertain" communications: opportunistic contacts, disconnections at
will, crashes, message loss.  This package provides:

* :mod:`repro.network.simulator` — a deterministic discrete-event kernel
  (virtual clock, event queue, timers, processes);
* :mod:`repro.network.messages` — typed message records;
* :mod:`repro.network.topology` — contact-graph models (who can ever talk
  to whom, and with what link quality);
* :mod:`repro.network.opnet` — the opportunistic network itself:
  store-and-forward delivery with latency/loss sampled per link;
* :mod:`repro.network.failures` — fault injection (crash, transient
  disconnection, powering devices off at will, message drops);
* :mod:`repro.network.reliable` — opt-in end-to-end reliability layer
  (per-kind delivery policies, ACK/retransmission, adaptive timeouts,
  circuit breakers) on top of the unreliable substrate.
"""

from repro.network.simulator import Event, Simulator
from repro.network.messages import Message, MessageKind
from repro.network.topology import ContactGraph, LinkQuality
from repro.network.opnet import DeliveryReceipt, NetworkConfig, OpportunisticNetwork
from repro.network.failures import FailureInjector, FailurePlan
from repro.network.mobility import CaregiverRounds, ContactSchedule, RandomWaypointContacts
from repro.network.reliable import (
    DeliveryPolicy,
    ReliabilityConfig,
    ReliableTransport,
    TransportReceipt,
)

__all__ = [
    "CaregiverRounds",
    "ContactGraph",
    "ContactSchedule",
    "DeliveryPolicy",
    "DeliveryReceipt",
    "Event",
    "FailureInjector",
    "FailurePlan",
    "LinkQuality",
    "Message",
    "MessageKind",
    "NetworkConfig",
    "RandomWaypointContacts",
    "OpportunisticNetwork",
    "ReliabilityConfig",
    "ReliableTransport",
    "Simulator",
    "TransportReceipt",
]
