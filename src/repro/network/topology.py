"""Contact-graph topology models for a swarm of personal devices.

Opportunistic networks are usually described by *contact graphs*: which
pairs of devices ever come into communication range, and how good those
contacts are.  We model each potential link with a :class:`LinkQuality`
(expected contact latency, loss probability, bandwidth) and provide
generators for the topologies used in the demonstration scenarios:

* ``fully_connected`` — an idealized always-reachable swarm (the demo's
  conference-hall Wi-Fi case);
* ``community`` — devices clustered into communities bridged by a few
  "caregiver" hubs (the DomYcile home-box case, where caregivers carry
  data between homes);
* ``random_geometric`` — devices scattered in a unit square, linked when
  within radio range.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Iterable, Iterator

import networkx as nx

__all__ = ["LinkQuality", "ContactGraph"]


@dataclass(frozen=True)
class LinkQuality:
    """Quality parameters of one (potential) contact link.

    Attributes:
        base_latency: expected one-way delay in virtual seconds when the
            contact is up (includes the opportunistic waiting time).
        latency_jitter: multiplicative jitter range; the sampled latency
            is ``base_latency * uniform(1 - j, 1 + j)``.
        loss_probability: probability that any given message on this
            link is silently dropped.
        bandwidth: bytes per virtual second, used for the size-dependent
            component of the delay.
    """

    base_latency: float = 1.0
    latency_jitter: float = 0.3
    loss_probability: float = 0.0
    bandwidth: float = 125_000.0  # 1 Mbit/s

    def __post_init__(self) -> None:
        if self.base_latency < 0:
            raise ValueError("base_latency must be non-negative")
        if not 0 <= self.latency_jitter < 1:
            raise ValueError("latency_jitter must be in [0, 1)")
        if not 0 <= self.loss_probability <= 1:
            raise ValueError("loss_probability must be in [0, 1]")
        if self.bandwidth <= 0:
            raise ValueError("bandwidth must be positive")

    def sample_latency(self, size_bytes: int, rng: random.Random) -> float:
        """Sample the one-way delay for a message of ``size_bytes``."""
        jitter = rng.uniform(1 - self.latency_jitter, 1 + self.latency_jitter)
        return self.base_latency * jitter + size_bytes / self.bandwidth

    def scaled(self, loss_probability: float) -> "LinkQuality":
        """Copy of this link with a different loss probability."""
        return LinkQuality(
            base_latency=self.base_latency,
            latency_jitter=self.latency_jitter,
            loss_probability=loss_probability,
            bandwidth=self.bandwidth,
        )


class ContactGraph:
    """An undirected contact graph with per-edge :class:`LinkQuality`.

    The graph answers two questions for the network layer: *can A talk
    to B at all*, and *with what quality*.  Devices not joined by an
    edge can still communicate through store-and-forward relaying if
    ``allow_relay`` is enabled on the network.
    """

    def __init__(self, default_quality: LinkQuality | None = None):
        self._graph = nx.Graph()
        self._default = default_quality or LinkQuality()

    # -- construction ---------------------------------------------------

    def add_device(self, device_id: str) -> None:
        """Register a device (idempotent)."""
        self._graph.add_node(device_id)

    def add_link(
        self, a: str, b: str, quality: LinkQuality | None = None
    ) -> None:
        """Add a bidirectional contact link between ``a`` and ``b``."""
        if a == b:
            raise ValueError("self-links are not allowed")
        self._graph.add_edge(a, b, quality=quality or self._default)

    def remove_link(self, a: str, b: str) -> None:
        """Drop a contact link if it exists."""
        if self._graph.has_edge(a, b):
            self._graph.remove_edge(a, b)

    # -- queries ----------------------------------------------------------

    @property
    def devices(self) -> list[str]:
        """All registered device identifiers (sorted for determinism)."""
        return sorted(self._graph.nodes)

    def has_device(self, device_id: str) -> bool:
        return device_id in self._graph

    def neighbors(self, device_id: str) -> list[str]:
        """Direct contacts of a device (sorted)."""
        if device_id not in self._graph:
            return []
        return sorted(self._graph.neighbors(device_id))

    def quality(self, a: str, b: str) -> LinkQuality | None:
        """Quality of the direct link a--b, or ``None`` if absent."""
        data = self._graph.get_edge_data(a, b)
        if data is None:
            return None
        return data["quality"]

    def path(self, a: str, b: str) -> list[str] | None:
        """Shortest relay path between two devices, or ``None``."""
        if a not in self._graph or b not in self._graph:
            return None
        try:
            return nx.shortest_path(self._graph, a, b)
        except nx.NetworkXNoPath:
            return None

    def is_connected(self) -> bool:
        """Whether the whole swarm forms one component."""
        if self._graph.number_of_nodes() == 0:
            return True
        return nx.is_connected(self._graph)

    def degree_histogram(self) -> dict[int, int]:
        """Map degree -> number of devices with that degree."""
        histogram: dict[int, int] = {}
        for _, degree in self._graph.degree:
            histogram[degree] = histogram.get(degree, 0) + 1
        return histogram

    # -- generators -------------------------------------------------------

    @classmethod
    def fully_connected(
        cls, device_ids: Iterable[str], quality: LinkQuality | None = None
    ) -> "ContactGraph":
        """Every device can contact every other device directly."""
        graph = cls(default_quality=quality)
        ids = list(device_ids)
        for device_id in ids:
            graph.add_device(device_id)
        for i, a in enumerate(ids):
            for b in ids[i + 1:]:
                graph.add_link(a, b)
        return graph

    @classmethod
    def community(
        cls,
        device_ids: Iterable[str],
        n_communities: int,
        hubs_per_community: int = 1,
        quality: LinkQuality | None = None,
        hub_quality: LinkQuality | None = None,
        seed: int = 0,
    ) -> "ContactGraph":
        """Devices split into communities; hub devices bridge them.

        Models the DomYcile deployment where home boxes only ever talk
        to visiting caregivers, and caregivers meet each other.
        """
        ids = list(device_ids)
        if n_communities <= 0:
            raise ValueError("need at least one community")
        rng = random.Random(seed)
        graph = cls(default_quality=quality)
        for device_id in ids:
            graph.add_device(device_id)
        communities: list[list[str]] = [[] for _ in range(n_communities)]
        for device_id in ids:
            communities[rng.randrange(n_communities)].append(device_id)
        hub_q = hub_quality or (quality or graph._default)
        hubs: list[str] = []
        for members in communities:
            if not members:
                continue
            local_hubs = members[: max(1, min(hubs_per_community, len(members)))]
            hubs.extend(local_hubs)
            for member in members:
                for hub in local_hubs:
                    if member != hub:
                        graph.add_link(member, hub)
            # intra-community mesh between hubs
            for i, a in enumerate(local_hubs):
                for b in local_hubs[i + 1:]:
                    graph.add_link(a, b, hub_q)
        # hubs of different communities meet each other
        for i, a in enumerate(hubs):
            for b in hubs[i + 1:]:
                graph.add_link(a, b, hub_q)
        return graph

    @classmethod
    def random_geometric(
        cls,
        device_ids: Iterable[str],
        radius: float = 0.25,
        quality: LinkQuality | None = None,
        seed: int = 0,
    ) -> "ContactGraph":
        """Devices placed uniformly in the unit square, linked in range."""
        ids = list(device_ids)
        rng = random.Random(seed)
        positions = {device_id: (rng.random(), rng.random()) for device_id in ids}
        graph = cls(default_quality=quality)
        for device_id in ids:
            graph.add_device(device_id)
        for i, a in enumerate(ids):
            ax, ay = positions[a]
            for b in ids[i + 1:]:
                bx, by = positions[b]
                if math.hypot(ax - bx, ay - by) <= radius:
                    graph.add_link(a, b)
        return graph
