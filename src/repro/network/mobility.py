"""Mobility and contact-schedule models for opportunistic connectivity.

The DomYcile deployment is the archetype: home boxes are *not* connected
to the Internet; they are "connected opportunistically by caregivers
during their visits".  Connectivity is therefore a schedule of contact
windows, not a steady link.  This module generates such schedules and
installs them on the network:

* :class:`CaregiverRounds` — every device is visited periodically
  (period, visit duration, per-device phase), like a caregiver's round;
* :class:`RandomWaypointContacts` — devices wander and meet at random,
  exponential inter-contact times (classic OppNet model).

Both produce :class:`ContactSchedule` objects that translate into
online/offline windows on the :class:`~repro.network.opnet.
OpportunisticNetwork`: a device is *online* during its contact windows
and *offline* (store-and-forward buffering upstream) in between.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.network.opnet import OpportunisticNetwork
from repro.network.simulator import Simulator

__all__ = ["ContactSchedule", "CaregiverRounds", "RandomWaypointContacts"]


@dataclass
class ContactSchedule:
    """Per-device lists of ``(start, end)`` online windows."""

    windows: dict[str, list[tuple[float, float]]] = field(default_factory=dict)

    def add_window(self, device_id: str, start: float, end: float) -> None:
        """Append one contact window (must be well-formed)."""
        if not 0 <= start < end:
            raise ValueError(f"invalid window [{start}, {end})")
        self.windows.setdefault(device_id, []).append((start, end))

    def online_fraction(self, device_id: str, horizon: float) -> float:
        """Fraction of ``[0, horizon)`` the device spends online."""
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        total = 0.0
        for start, end in self.windows.get(device_id, []):
            clipped_start = min(start, horizon)
            clipped_end = min(end, horizon)
            total += max(0.0, clipped_end - clipped_start)
        return total / horizon

    def is_online_at(self, device_id: str, time: float) -> bool:
        """Whether the schedule has the device online at ``time``."""
        return any(
            start <= time < end for start, end in self.windows.get(device_id, [])
        )

    def install(
        self, simulator: Simulator, network: OpportunisticNetwork
    ) -> None:
        """Drive the network's online/offline state from this schedule.

        Scheduled devices start offline and toggle online exactly during
        their windows; devices not in the schedule are untouched.
        """
        for device_id, windows in sorted(self.windows.items()):
            network.set_online(device_id, self.is_online_at(device_id, simulator.now))
            for start, end in sorted(windows):
                if start > simulator.now:
                    simulator.schedule_at(
                        start,
                        lambda d=device_id: network.set_online(d, True),
                        f"contact start {device_id}",
                    )
                if end > simulator.now:
                    simulator.schedule_at(
                        end,
                        lambda d=device_id: network.set_online(d, False),
                        f"contact end {device_id}",
                    )


class CaregiverRounds:
    """Periodic visit schedule (the DomYcile caregiver model).

    Every device is visited once per ``period`` for ``visit_duration``;
    the visit phase within the period is randomized per device (a
    caregiver cannot be everywhere at once).
    """

    def __init__(
        self,
        period: float = 60.0,
        visit_duration: float = 10.0,
        seed: int = 0,
    ):
        if period <= 0:
            raise ValueError("period must be positive")
        if not 0 < visit_duration <= period:
            raise ValueError("visit_duration must be in (0, period]")
        self.period = period
        self.visit_duration = visit_duration
        self._rng = random.Random(seed)

    def schedule(self, device_ids: list[str], horizon: float) -> ContactSchedule:
        """Generate visit windows for every device up to ``horizon``."""
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        result = ContactSchedule()
        for device_id in device_ids:
            phase = self._rng.uniform(0.0, self.period - self.visit_duration)
            start = phase
            while start < horizon:
                result.add_window(
                    device_id, start, min(start + self.visit_duration, horizon)
                )
                start += self.period
        return result


class RandomWaypointContacts:
    """Exponential inter-contact model (classic OppNet assumption).

    Contacts arrive as a Poisson process with mean inter-contact time
    ``mean_intercontact``; each contact lasts an exponential duration
    with mean ``mean_duration``.
    """

    def __init__(
        self,
        mean_intercontact: float = 30.0,
        mean_duration: float = 5.0,
        seed: int = 0,
    ):
        if mean_intercontact <= 0 or mean_duration <= 0:
            raise ValueError("means must be positive")
        self.mean_intercontact = mean_intercontact
        self.mean_duration = mean_duration
        self._rng = random.Random(seed)

    def schedule(self, device_ids: list[str], horizon: float) -> ContactSchedule:
        """Generate random contact windows up to ``horizon``."""
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        result = ContactSchedule()
        for device_id in device_ids:
            time = self._rng.expovariate(1.0 / self.mean_intercontact)
            while time < horizon:
                duration = self._rng.expovariate(1.0 / self.mean_duration)
                result.add_window(device_id, time, min(time + duration, horizon))
                time += duration + self._rng.expovariate(1.0 / self.mean_intercontact)
        return result
