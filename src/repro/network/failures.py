"""Fault injection for the device swarm.

The demonstration lets attendees "intentionally power off some concrete
devices to generate a failure at will" and vary a global failure
probability.  This module provides both:

* :class:`FailurePlan` — a declarative schedule of crashes and
  disconnection windows (scripted failures, reproducible);
* :class:`FailureInjector` — a stochastic process that crashes or
  disconnects devices according to per-device probabilities, driven by
  the simulator clock.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.network.opnet import OpportunisticNetwork
from repro.network.simulator import Simulator

__all__ = ["FailurePlan", "FailureInjector", "FailureEvent"]


@dataclass(frozen=True)
class FailureEvent:
    """A recorded failure occurrence (for traces and post-mortems)."""

    time: float
    device_id: str
    kind: str  # "crash", "disconnect", "reconnect"


def _merge_windows(windows: list[tuple[float, float]]) -> list[tuple[float, float]]:
    """Merge overlapping or touching (start, end) windows into a sorted union."""
    merged: list[tuple[float, float]] = []
    for start, end in sorted(windows):
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


@dataclass
class FailurePlan:
    """Declarative failure schedule.

    Attributes:
        crashes: map device_id -> virtual time of permanent crash.
        disconnections: map device_id -> list of (start, end) offline
            windows.  Windows may overlap as written; they are merged
            into their union before the schedule is installed, so a
            device never receives interleaved offline/online toggles.
    """

    crashes: dict[str, float] = field(default_factory=dict)
    disconnections: dict[str, list[tuple[float, float]]] = field(default_factory=dict)

    def crash(self, device_id: str, at: float) -> "FailurePlan":
        """Schedule a permanent crash (fluent)."""
        if at < 0:
            raise ValueError("crash time must be non-negative")
        for start, _end in self.disconnections.get(device_id, ()):
            if start >= at:
                raise ValueError(
                    f"device {device_id!r} has a disconnect window starting at "
                    f"{start} but would already be crashed at {at}"
                )
        self.crashes[device_id] = at
        return self

    def disconnect(self, device_id: str, start: float, end: float) -> "FailurePlan":
        """Schedule an offline window (fluent)."""
        if not 0 <= start < end:
            raise ValueError("need 0 <= start < end")
        crash_at = self.crashes.get(device_id)
        if crash_at is not None and start >= crash_at:
            raise ValueError(
                f"device {device_id!r} crashes at {crash_at}; cannot schedule a "
                f"disconnect starting at {start} after it is dead"
            )
        self.disconnections.setdefault(device_id, []).append((start, end))
        return self

    def normalized(self) -> "FailurePlan":
        """Return an equivalent plan with each device's windows merged
        into a sorted, non-overlapping union."""
        return FailurePlan(
            crashes=dict(self.crashes),
            disconnections={
                device_id: _merge_windows(windows)
                for device_id, windows in self.disconnections.items()
                if windows
            },
        )

    def validate(self) -> None:
        """Raise ``ValueError`` if any disconnect starts at or after the
        same device's crash time (the device would already be dead)."""
        for device_id, windows in self.disconnections.items():
            crash_at = self.crashes.get(device_id)
            if crash_at is None:
                continue
            for start, _end in windows:
                if start >= crash_at:
                    raise ValueError(
                        f"device {device_id!r} crashes at {crash_at}; disconnect "
                        f"window starting at {start} can never take effect"
                    )

    def to_dict(self) -> dict:
        """JSON-serializable form (stable key order for artifacts)."""
        return {
            "crashes": {d: self.crashes[d] for d in sorted(self.crashes)},
            "disconnections": {
                d: [list(w) for w in self.disconnections[d]]
                for d in sorted(self.disconnections)
            },
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FailurePlan":
        return cls(
            crashes={str(d): float(t) for d, t in payload.get("crashes", {}).items()},
            disconnections={
                str(d): [(float(s), float(e)) for s, e in windows]
                for d, windows in payload.get("disconnections", {}).items()
            },
        )

    def apply(self, simulator: Simulator, network: OpportunisticNetwork) -> list[FailureEvent]:
        """Install the schedule on the simulator.  Returns the shared,
        initially-empty event log that fills as failures fire."""
        self.validate()
        plan = self.normalized()
        log: list[FailureEvent] = []

        def make_crash(device_id: str):
            def fire() -> None:
                network.kill(device_id)
                log.append(FailureEvent(simulator.now, device_id, "crash"))
            return fire

        def make_toggle(device_id: str, online: bool):
            def fire() -> None:
                if network.is_dead(device_id):
                    return
                network.set_online(device_id, online)
                kind = "reconnect" if online else "disconnect"
                log.append(FailureEvent(simulator.now, device_id, kind))
            return fire

        for device_id, at in plan.crashes.items():
            simulator.schedule_at(at, make_crash(device_id), f"crash {device_id}")
        for device_id, windows in plan.disconnections.items():
            for start, end in windows:
                simulator.schedule_at(start, make_toggle(device_id, False), f"offline {device_id}")
                simulator.schedule_at(end, make_toggle(device_id, True), f"online {device_id}")
        return log


class FailureInjector:
    """Stochastic crash/disconnect process over a set of devices.

    Each *check interval*, every managed device independently:

    * crashes permanently with probability ``crash_probability``;
    * starts a disconnection window of ``disconnect_duration`` with
      probability ``disconnect_probability`` (if currently online).

    These two knobs correspond directly to the demonstration's "failure
    probability value of the scenario" slider.
    """

    def __init__(
        self,
        simulator: Simulator,
        network: OpportunisticNetwork,
        device_ids: list[str],
        crash_probability: float = 0.0,
        disconnect_probability: float = 0.0,
        disconnect_duration: float = 10.0,
        check_interval: float = 1.0,
        seed: int = 0,
    ):
        if not 0 <= crash_probability <= 1:
            raise ValueError("crash_probability must be in [0, 1]")
        if not 0 <= disconnect_probability <= 1:
            raise ValueError("disconnect_probability must be in [0, 1]")
        if disconnect_duration <= 0:
            raise ValueError("disconnect_duration must be positive")
        if check_interval <= 0:
            raise ValueError("check_interval must be positive")
        self.simulator = simulator
        self.network = network
        self.device_ids = list(device_ids)
        self.crash_probability = crash_probability
        self.disconnect_probability = disconnect_probability
        self.disconnect_duration = disconnect_duration
        self.check_interval = check_interval
        self.events: list[FailureEvent] = []
        self._rng = random.Random(seed)
        self._cancel = None

    def start(self, until: float | None = None) -> None:
        """Begin injecting failures on the simulator clock."""
        self._cancel = self.simulator.every(
            self.check_interval, self._tick, "failure-injector", until=until
        )

    def stop(self) -> None:
        """Stop injecting (already-scheduled reconnections still fire)."""
        if self._cancel is not None:
            self._cancel()
            self._cancel = None

    def _tick(self) -> None:
        for device_id in self.device_ids:
            if self.network.is_dead(device_id):
                continue
            if self._rng.random() < self.crash_probability:
                self.network.kill(device_id)
                self.events.append(
                    FailureEvent(self.simulator.now, device_id, "crash")
                )
                continue
            if (
                self.network.is_online(device_id)
                and self._rng.random() < self.disconnect_probability
            ):
                self.network.set_online(device_id, False)
                self.events.append(
                    FailureEvent(self.simulator.now, device_id, "disconnect")
                )
                self.simulator.schedule(
                    self.disconnect_duration,
                    self._make_reconnect(device_id),
                    f"reconnect {device_id}",
                )

    def _make_reconnect(self, device_id: str):
        def fire() -> None:
            if not self.network.is_dead(device_id):
                self.network.set_online(device_id, True)
                self.events.append(
                    FailureEvent(self.simulator.now, device_id, "reconnect")
                )
        return fire

    def crashed_devices(self) -> list[str]:
        """Devices that crashed so far (sorted)."""
        return sorted({e.device_id for e in self.events if e.kind == "crash"})
