"""Deterministic discrete-event simulation kernel.

Every dynamic aspect of the reproduction — message latency, device
crashes, heartbeat clocks — runs on this kernel.  The design is
intentionally small: a priority queue of :class:`Event` records ordered
by ``(time, sequence)``.  The sequence number breaks ties so that two
events at the same virtual instant fire in scheduling order, which makes
whole executions reproducible bit-for-bit given a seed.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["Event", "Simulator", "SimulationError"]


class SimulationError(Exception):
    """Raised on kernel misuse (e.g. scheduling into the past)."""


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Ordered by ``(time, sequence)``; the callback and its description are
    excluded from the ordering.
    """

    time: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    description: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event so the kernel skips it when it pops."""
        self.cancelled = True


class Simulator:
    """A virtual clock plus an event queue.

    Typical usage::

        sim = Simulator()
        sim.schedule(1.5, lambda: print("fires at t=1.5"))
        sim.run_until(10.0)
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: list[Event] = []
        self._sequence = itertools.count()
        self._processed = 0

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of not-yet-fired, not-cancelled events."""
        return sum(1 for event in self._queue if not event.cancelled)

    @property
    def processed(self) -> int:
        """Total number of events that have fired."""
        return self._processed

    def schedule(
        self, delay: float, callback: Callable[[], None], description: str = ""
    ) -> Event:
        """Schedule ``callback`` to fire ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        event = Event(
            time=self._now + delay,
            sequence=next(self._sequence),
            callback=callback,
            description=description,
        )
        heapq.heappush(self._queue, event)
        return event

    def schedule_at(
        self, time: float, callback: Callable[[], None], description: str = ""
    ) -> Event:
        """Schedule ``callback`` at an absolute virtual time."""
        return self.schedule(time - self._now, callback, description)

    def every(
        self,
        interval: float,
        callback: Callable[[], None],
        description: str = "",
        until: float | None = None,
    ) -> Callable[[], None]:
        """Fire ``callback`` every ``interval`` units, starting one
        interval from now, optionally stopping after virtual time
        ``until``.  Returns a function that cancels the recurrence.
        """
        if interval <= 0:
            raise SimulationError(f"interval must be positive (got {interval})")
        state = {"stopped": False, "event": None}

        def tick() -> None:
            if state["stopped"]:
                return
            callback()
            if until is not None and self._now + interval > until:
                return
            state["event"] = self.schedule(interval, tick, description)

        state["event"] = self.schedule(interval, tick, description)

        def cancel() -> None:
            state["stopped"] = True
            event = state["event"]
            if event is not None:
                event.cancel()

        return cancel

    def step(self) -> bool:
        """Fire the earliest pending event.  Returns ``False`` if the
        queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            event.callback()
            self._processed += 1
            return True
        return False

    def run(self, max_events: int | None = None) -> int:
        """Run until the queue drains (or ``max_events`` fire).

        Returns the number of events fired by this call.
        """
        fired = 0
        while max_events is None or fired < max_events:
            if not self.step():
                break
            fired += 1
        return fired

    def run_until(self, deadline: float) -> int:
        """Run events with ``time <= deadline`` and advance the clock to
        exactly ``deadline``.  Returns the number of events fired."""
        if deadline < self._now:
            raise SimulationError(
                f"deadline {deadline} is before current time {self._now}"
            )
        fired = 0
        while self._queue:
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            if head.time > deadline:
                break
            self.step()
            fired += 1
        self._now = deadline
        return fired

    def reset(self) -> None:
        """Drop all pending events and rewind the clock to zero."""
        self._queue.clear()
        self._now = 0.0
        self._processed = 0
