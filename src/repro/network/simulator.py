"""Deterministic discrete-event simulation kernel.

Every dynamic aspect of the reproduction — message latency, device
crashes, heartbeat clocks — runs on this kernel.  The design is
intentionally small: a priority queue of :class:`Event` records ordered
by ``(time, sequence)``.  The sequence number breaks ties so that two
events at the same virtual instant fire in scheduling order, which makes
whole executions reproducible bit-for-bit given a seed.

The kernel is instrumented through :mod:`repro.telemetry`: events
scheduled/processed/cancelled are counted, the queue depth is tracked as
a gauge, and the ``run``/``run_until`` loops are wall-clock-profiled so
simulator overhead can be separated from modeled time.  Telemetry never
influences scheduling order.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["Event", "Simulator", "SimulationError"]


class SimulationError(Exception):
    """Raised on kernel misuse (e.g. scheduling into the past)."""


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Ordered by ``(time, sequence)``; the callback and its description are
    excluded from the ordering.
    """

    time: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    description: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event so the kernel skips it when it pops."""
        self.cancelled = True


class Simulator:
    """A virtual clock plus an event queue.

    Typical usage::

        sim = Simulator()
        sim.schedule(1.5, lambda: print("fires at t=1.5"))
        sim.run_until(10.0)

    Args:
        telemetry: the :class:`repro.telemetry.Telemetry` to record
            into; defaults to the process-wide instance.
    """

    def __init__(self, telemetry: Any = None) -> None:
        if telemetry is None:
            from repro.telemetry import get_telemetry

            telemetry = get_telemetry()
        self.telemetry = telemetry
        self._now = 0.0
        self._queue: list[Event] = []
        self._sequence = itertools.count()
        self._processed = 0
        # epoch fences recurring timers: ticks armed before a reset()
        # must never re-arm after it (see `every`)
        self._epoch = 0
        metrics = telemetry.metrics
        self._m_scheduled = metrics.counter("sim.events_scheduled")
        self._m_processed = metrics.counter("sim.events_processed")
        self._m_cancelled = metrics.counter("sim.events_cancelled_skipped")
        self._g_queue = metrics.gauge("sim.queue_depth")
        self._prof_loop = telemetry.profiler.section("sim.event_loop")

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def epoch(self) -> int:
        """Reset generation counter.  Incremented by :meth:`reset`;
        one-shot timers that must not survive a reset can capture it at
        arm time and compare on fire (the fence :meth:`every` uses)."""
        return self._epoch

    @property
    def pending(self) -> int:
        """Number of not-yet-fired, not-cancelled events."""
        return sum(1 for event in self._queue if not event.cancelled)

    @property
    def processed(self) -> int:
        """Total number of events that have fired."""
        return self._processed

    def schedule(
        self, delay: float, callback: Callable[[], None], description: str = ""
    ) -> Event:
        """Schedule ``callback`` to fire ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        event = Event(
            time=self._now + delay,
            sequence=next(self._sequence),
            callback=callback,
            description=description,
        )
        heapq.heappush(self._queue, event)
        self._m_scheduled.inc()
        self._g_queue.set(len(self._queue))
        return event

    def schedule_at(
        self, time: float, callback: Callable[[], None], description: str = ""
    ) -> Event:
        """Schedule ``callback`` at an absolute virtual time."""
        return self.schedule(time - self._now, callback, description)

    def every(
        self,
        interval: float,
        callback: Callable[[], None],
        description: str = "",
        until: float | None = None,
    ) -> Callable[[], None]:
        """Fire ``callback`` every ``interval`` units, starting one
        interval from now, optionally stopping after virtual time
        ``until``.  Returns a function that cancels the recurrence.

        The recurrence is fenced to the current epoch: a
        :meth:`reset` both drops the armed event *and* poisons the
        tick closure, so a stale recurring timer can never fire or
        re-arm itself on the post-reset timeline.
        """
        if interval <= 0:
            raise SimulationError(f"interval must be positive (got {interval})")
        state = {"stopped": False, "event": None}
        epoch = self._epoch

        def tick() -> None:
            if state["stopped"] or self._epoch != epoch:
                return
            callback()
            if until is not None and self._now + interval > until:
                return
            state["event"] = self.schedule(interval, tick, description)

        state["event"] = self.schedule(interval, tick, description)

        def cancel() -> None:
            state["stopped"] = True
            event = state["event"]
            if event is not None:
                event.cancel()

        return cancel

    def step(self) -> bool:
        """Fire the earliest pending event.  Returns ``False`` if the
        queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                self._m_cancelled.inc()
                continue
            self._now = event.time
            event.callback()
            self._processed += 1
            self._m_processed.inc()
            self._g_queue.set(len(self._queue))
            return True
        return False

    def run(self, max_events: int | None = None) -> int:
        """Run until the queue drains (or ``max_events`` fire).

        Returns the number of events fired by this call.
        """
        fired = 0
        with self._prof_loop:
            while max_events is None or fired < max_events:
                if not self.step():
                    break
                fired += 1
        return fired

    def run_until(self, deadline: float) -> int:
        """Run events with ``time <= deadline`` and advance the clock to
        exactly ``deadline``.  Returns the number of events fired.

        The deadline is inclusive, consistently: an event scheduled at
        exactly ``deadline`` fires — including one scheduled *during*
        this call by another deadline-time event — and a subsequent
        ``run_until(deadline)`` is a legal no-op.
        """
        if deadline < self._now:
            raise SimulationError(
                f"deadline {deadline} is before current time {self._now}"
            )
        fired = 0
        with self._prof_loop:
            while self._queue:
                head = self._queue[0]
                if head.cancelled:
                    heapq.heappop(self._queue)
                    self._m_cancelled.inc()
                    continue
                if head.time > deadline:
                    break
                self.step()
                fired += 1
            self._now = deadline
        return fired

    def reset(self) -> None:
        """Drop all pending events and rewind the clock to zero.

        Also restarts the tie-breaking sequence (so post-reset runs are
        bit-for-bit identical to a fresh simulator) and advances the
        epoch fence that disarms any live :meth:`every` recurrence.
        """
        for event in self._queue:
            event.cancel()
        self._queue.clear()
        self._now = 0.0
        self._processed = 0
        self._sequence = itertools.count()
        self._epoch += 1
        self._g_queue.set(0)
