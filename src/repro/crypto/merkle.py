"""Merkle trees over dataset partitions.

Snapshot Builders commit to the partitions they collect with a Merkle
root; Computers can later prove that the partition they processed is the
one that was committed (integrity under the sealed-glass threat model,
where confidentiality may fall but integrity must not).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = ["MerkleTree", "InclusionProof", "verify_inclusion"]

_LEAF_PREFIX = b"\x00"
_NODE_PREFIX = b"\x01"


def _hash_leaf(data: bytes) -> bytes:
    return hashlib.sha256(_LEAF_PREFIX + data).digest()


def _hash_node(left: bytes, right: bytes) -> bytes:
    return hashlib.sha256(_NODE_PREFIX + left + right).digest()


@dataclass(frozen=True)
class InclusionProof:
    """Authentication path for one leaf.

    ``path`` lists ``(sibling_digest, sibling_is_left)`` pairs from the
    leaf up to the root.
    """

    leaf_index: int
    leaf_digest: bytes
    path: tuple[tuple[bytes, bool], ...]


class MerkleTree:
    """A binary Merkle tree with domain-separated leaf/node hashing.

    Odd nodes are promoted unchanged to the next level (Bitcoin-style
    duplication would allow forgeries; promotion does not).
    """

    def __init__(self, leaves: Iterable[bytes]):
        self._leaves = [_hash_leaf(leaf) for leaf in leaves]
        if not self._leaves:
            raise ValueError("a Merkle tree needs at least one leaf")
        self._levels = self._build(self._leaves)

    @staticmethod
    def _build(leaves: Sequence[bytes]) -> list[list[bytes]]:
        levels = [list(leaves)]
        while len(levels[-1]) > 1:
            current = levels[-1]
            nxt = []
            for i in range(0, len(current) - 1, 2):
                nxt.append(_hash_node(current[i], current[i + 1]))
            if len(current) % 2 == 1:
                nxt.append(current[-1])
            levels.append(nxt)
        return levels

    def __len__(self) -> int:
        return len(self._leaves)

    @property
    def root(self) -> bytes:
        """The Merkle root digest."""
        return self._levels[-1][0]

    def root_hex(self) -> str:
        """Hex form of the root, convenient for traces and payloads."""
        return self.root.hex()

    def prove(self, index: int) -> InclusionProof:
        """Build the inclusion proof for the ``index``-th leaf."""
        if not 0 <= index < len(self._leaves):
            raise IndexError(f"leaf index {index} out of range")
        path: list[tuple[bytes, bool]] = []
        position = index
        for level in self._levels[:-1]:
            if position % 2 == 0:
                sibling_index = position + 1
                sibling_is_left = False
            else:
                sibling_index = position - 1
                sibling_is_left = True
            if sibling_index < len(level):
                path.append((level[sibling_index], sibling_is_left))
            position //= 2
        return InclusionProof(
            leaf_index=index, leaf_digest=self._leaves[index], path=tuple(path)
        )


def verify_inclusion(root: bytes, leaf_data: bytes, proof: InclusionProof) -> bool:
    """Check that ``leaf_data`` is committed under ``root`` via ``proof``."""
    digest = _hash_leaf(leaf_data)
    if digest != proof.leaf_digest:
        return False
    for sibling, sibling_is_left in proof.path:
        if sibling_is_left:
            digest = _hash_node(sibling, digest)
        else:
            digest = _hash_node(digest, sibling)
    return digest == root
