"""Core cryptographic primitives (simulation grade).

Everything here is deterministic given its inputs, which makes protocol
traces reproducible in the discrete-event simulator.  The primitives
mirror the shapes of their real-world counterparts:

* :func:`secure_hash` / :func:`hmac_digest` — SHA-256 based digests.
* :func:`encrypt` / :func:`decrypt` — authenticated encryption with a
  SHA-256 counter-mode keystream and an HMAC tag (encrypt-then-MAC).
* :func:`generate_keypair`, :func:`sign`, :func:`verify` — Schnorr-style
  signatures over a published safe-prime group.
* :func:`diffie_hellman_shared` — classic DH key agreement in the same
  group, used to derive pairwise edgelet session keys.
* :func:`hkdf` — extract-and-expand key derivation.
"""

from __future__ import annotations

import hashlib
import hmac as _hmac
import secrets
from dataclasses import dataclass

__all__ = [
    "AuthenticationError",
    "KeyPair",
    "SymmetricKey",
    "decrypt",
    "derive_key",
    "diffie_hellman_shared",
    "encrypt",
    "generate_keypair",
    "hkdf",
    "hmac_digest",
    "secure_hash",
    "sign",
    "verify",
]

# A 1536-bit MODP safe prime (RFC 3526 group 5) with generator 2.  Small
# enough to keep simulated handshakes fast, large enough that the group
# arithmetic code path matches a realistic implementation.
GROUP_PRIME = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
    "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
    "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05"
    "98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB"
    "9ED529077096966D670C354E4ABC9804F1746C08CA237327FFFFFFFFFFFFFFFF",
    16,
)
GROUP_GENERATOR = 2
GROUP_ORDER = (GROUP_PRIME - 1) // 2

TAG_SIZE = 32
KEY_SIZE = 32
NONCE_SIZE = 16
_BLOCK = hashlib.sha256().digest_size


class AuthenticationError(Exception):
    """Raised when a ciphertext, tag, or signature fails verification."""


@dataclass(frozen=True)
class SymmetricKey:
    """A 256-bit symmetric key with separate encryption/MAC subkeys."""

    material: bytes

    def __post_init__(self) -> None:
        if len(self.material) != KEY_SIZE:
            raise ValueError(
                f"symmetric keys must be {KEY_SIZE} bytes, got {len(self.material)}"
            )

    @property
    def enc_key(self) -> bytes:
        """Subkey used for the keystream (domain-separated)."""
        return hkdf(self.material, b"edgelet-enc", KEY_SIZE)

    @property
    def mac_key(self) -> bytes:
        """Subkey used for the authentication tag (domain-separated)."""
        return hkdf(self.material, b"edgelet-mac", KEY_SIZE)

    @classmethod
    def random(cls) -> "SymmetricKey":
        """Generate a fresh random key."""
        return cls(secrets.token_bytes(KEY_SIZE))

    @classmethod
    def from_passphrase(cls, passphrase: str) -> "SymmetricKey":
        """Derive a key deterministically from a passphrase (tests/demos)."""
        return cls(hkdf(passphrase.encode("utf-8"), b"edgelet-passphrase", KEY_SIZE))

    def fingerprint(self) -> str:
        """Short hex identifier safe to log (does not reveal the key)."""
        return secure_hash(b"fp" + self.material)[:16]


@dataclass(frozen=True)
class KeyPair:
    """A Schnorr-style key pair over the published group.

    ``private`` is an exponent in ``[1, GROUP_ORDER)``; ``public`` is
    ``g^private mod p``.  The public part doubles as the edgelet's
    identity for secure operator assignment (the planner hashes it).
    """

    private: int
    public: int

    def public_bytes(self) -> bytes:
        """Serialize the public key for hashing and wire transfer."""
        return self.public.to_bytes((GROUP_PRIME.bit_length() + 7) // 8, "big")

    def fingerprint(self) -> str:
        """Short hex identifier of the public key."""
        return secure_hash(self.public_bytes())[:16]


def secure_hash(data: bytes) -> str:
    """Return the SHA-256 hex digest of ``data``."""
    return hashlib.sha256(data).hexdigest()


def hmac_digest(key: bytes, data: bytes) -> bytes:
    """Return the HMAC-SHA256 of ``data`` under ``key``."""
    return _hmac.new(key, data, hashlib.sha256).digest()


def hkdf(ikm: bytes, info: bytes, length: int) -> bytes:
    """HKDF-SHA256 (RFC 5869) with an all-zero salt.

    ``ikm`` is the input keying material, ``info`` the context string,
    and ``length`` the number of output bytes (at most ``255 * 32``).
    """
    if not 0 < length <= 255 * _BLOCK:
        raise ValueError("requested HKDF output length out of range")
    prk = _hmac.new(b"\x00" * _BLOCK, ikm, hashlib.sha256).digest()
    blocks = []
    previous = b""
    counter = 1
    while sum(len(b) for b in blocks) < length:
        previous = _hmac.new(prk, previous + info + bytes([counter]), hashlib.sha256).digest()
        blocks.append(previous)
        counter += 1
    return b"".join(blocks)[:length]


def derive_key(shared_secret: bytes, context: str) -> SymmetricKey:
    """Derive a :class:`SymmetricKey` from a shared secret and context."""
    return SymmetricKey(hkdf(shared_secret, context.encode("utf-8"), KEY_SIZE))


def _keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    """SHA-256 counter-mode keystream of ``length`` bytes."""
    out = bytearray()
    counter = 0
    while len(out) < length:
        block = hashlib.sha256(key + nonce + counter.to_bytes(8, "big")).digest()
        out.extend(block)
        counter += 1
    return bytes(out[:length])


def encrypt(key: SymmetricKey, plaintext: bytes, associated_data: bytes = b"") -> bytes:
    """Authenticated encryption (encrypt-then-MAC).

    Layout of the returned blob: ``nonce || ciphertext || tag`` where the
    tag authenticates ``nonce || associated_data || ciphertext``.
    """
    nonce = secrets.token_bytes(NONCE_SIZE)
    stream = _keystream(key.enc_key, nonce, len(plaintext))
    ciphertext = bytes(p ^ s for p, s in zip(plaintext, stream))
    tag = hmac_digest(key.mac_key, nonce + associated_data + ciphertext)
    return nonce + ciphertext + tag


def decrypt(key: SymmetricKey, blob: bytes, associated_data: bytes = b"") -> bytes:
    """Verify and decrypt a blob produced by :func:`encrypt`.

    Raises :class:`AuthenticationError` if the tag does not verify —
    callers must treat that as a hard protocol failure, never as data.
    """
    if len(blob) < NONCE_SIZE + TAG_SIZE:
        raise AuthenticationError("ciphertext too short")
    nonce = blob[:NONCE_SIZE]
    ciphertext = blob[NONCE_SIZE:-TAG_SIZE]
    tag = blob[-TAG_SIZE:]
    expected = hmac_digest(key.mac_key, nonce + associated_data + ciphertext)
    if not _hmac.compare_digest(tag, expected):
        raise AuthenticationError("authentication tag mismatch")
    stream = _keystream(key.enc_key, nonce, len(ciphertext))
    return bytes(c ^ s for c, s in zip(ciphertext, stream))


def generate_keypair(seed: bytes | None = None) -> KeyPair:
    """Generate a key pair; a ``seed`` makes it deterministic (tests)."""
    if seed is None:
        private = secrets.randbelow(GROUP_ORDER - 1) + 1
    else:
        private = int.from_bytes(hkdf(seed, b"edgelet-keygen", 48), "big") % (GROUP_ORDER - 1) + 1
    return KeyPair(private=private, public=pow(GROUP_GENERATOR, private, GROUP_PRIME))


def diffie_hellman_shared(own: KeyPair, peer_public: int) -> bytes:
    """Compute the DH shared secret between ``own`` and a peer public key."""
    if not 1 < peer_public < GROUP_PRIME - 1:
        raise ValueError("peer public key outside the group")
    shared = pow(peer_public, own.private, GROUP_PRIME)
    return shared.to_bytes((GROUP_PRIME.bit_length() + 7) // 8, "big")


def _schnorr_challenge(public: int, commitment: int, message: bytes) -> int:
    payload = (
        public.to_bytes(192, "big") + commitment.to_bytes(192, "big") + message
    )
    return int.from_bytes(hashlib.sha256(payload).digest(), "big") % GROUP_ORDER


def sign(keypair: KeyPair, message: bytes) -> tuple[int, int]:
    """Produce a Schnorr signature ``(commitment, response)``.

    The nonce is derived deterministically from the private key and the
    message (RFC 6979 style) so signing is reproducible and never leaks
    through nonce reuse.
    """
    nonce_seed = keypair.private.to_bytes(192, "big") + message
    k = int.from_bytes(hkdf(nonce_seed, b"edgelet-sign-nonce", 48), "big") % (GROUP_ORDER - 1) + 1
    commitment = pow(GROUP_GENERATOR, k, GROUP_PRIME)
    challenge = _schnorr_challenge(keypair.public, commitment, message)
    response = (k + challenge * keypair.private) % GROUP_ORDER
    return commitment, response


def verify(public: int, message: bytes, signature: tuple[int, int]) -> bool:
    """Check a Schnorr signature against ``public`` and ``message``."""
    commitment, response = signature
    if not (1 < public < GROUP_PRIME - 1 and 0 < commitment < GROUP_PRIME and 0 <= response < GROUP_ORDER):
        return False
    challenge = _schnorr_challenge(public, commitment, message)
    lhs = pow(GROUP_GENERATOR, response, GROUP_PRIME)
    rhs = (commitment * pow(public, challenge, GROUP_PRIME)) % GROUP_PRIME
    return lhs == rhs
