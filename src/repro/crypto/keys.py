"""Pairwise session-key management for a swarm of edgelets.

A :class:`KeyRing` holds one long-term key pair (sealed by the device's
TEE in the real system) and lazily derives pairwise symmetric session
keys via Diffie-Hellman + HKDF.  Both endpoints derive the same key for
the same (unordered) pair, which the tests assert as an invariant.
"""

from __future__ import annotations

from repro.crypto.primitives import (
    KeyPair,
    SymmetricKey,
    derive_key,
    diffie_hellman_shared,
    generate_keypair,
)

__all__ = ["KeyRing"]


class KeyRing:
    """Long-term identity plus a cache of pairwise session keys."""

    def __init__(self, keypair: KeyPair | None = None, seed: bytes | None = None):
        if keypair is not None and seed is not None:
            raise ValueError("pass either an explicit keypair or a seed, not both")
        self._keypair = keypair if keypair is not None else generate_keypair(seed)
        self._sessions: dict[str, SymmetricKey] = {}
        self._known_publics: dict[str, int] = {}

    @property
    def keypair(self) -> KeyPair:
        """The long-term key pair (private part never leaves the ring)."""
        return self._keypair

    @property
    def fingerprint(self) -> str:
        """Identity fingerprint of this edgelet."""
        return self._keypair.fingerprint()

    def learn_public(self, fingerprint: str, public: int) -> None:
        """Record a peer public key (learned during attestation)."""
        existing = self._known_publics.get(fingerprint)
        if existing is not None and existing != public:
            raise ValueError(f"conflicting public key for {fingerprint}")
        self._known_publics[fingerprint] = public

    def knows(self, fingerprint: str) -> bool:
        """Whether a peer's public key has been learned."""
        return fingerprint in self._known_publics

    def public_of(self, fingerprint: str) -> int:
        """The recorded public key of a peer."""
        try:
            return self._known_publics[fingerprint]
        except KeyError:
            raise KeyError(f"no public key recorded for peer {fingerprint}") from None

    def session_key(self, peer_fingerprint: str) -> SymmetricKey:
        """Derive (and cache) the pairwise session key with a peer.

        The derivation context sorts the two fingerprints so both sides
        compute the identical key.
        """
        cached = self._sessions.get(peer_fingerprint)
        if cached is not None:
            return cached
        peer_public = self.public_of(peer_fingerprint)
        shared = diffie_hellman_shared(self._keypair, peer_public)
        pair = "|".join(sorted((self.fingerprint, peer_fingerprint)))
        key = derive_key(shared, f"edgelet-session:{pair}")
        self._sessions[peer_fingerprint] = key
        return key

    def forget_sessions(self) -> None:
        """Drop all cached session keys (e.g. after a reboot)."""
        self._sessions.clear()
