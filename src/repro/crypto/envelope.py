"""Authenticated message envelopes exchanged between edgelets.

Every piece of personal data that leaves a TEE travels inside a sealed
envelope: the payload is encrypted under a pairwise session key, bound to
sender/recipient identities and to the query it belongs to, and signed by
the sender's attestation key.  Only the aggregated results reach the
successor operator in the clear *inside* its TEE — on the wire everything
is opaque, which is exactly the property the demonstration visualizes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from repro.crypto.primitives import (
    AuthenticationError,
    KeyPair,
    SymmetricKey,
    decrypt,
    encrypt,
    sign,
    verify,
)

__all__ = ["Envelope", "seal_envelope", "open_envelope"]


@dataclass(frozen=True)
class Envelope:
    """A sealed message between two edgelets.

    Attributes:
        sender: fingerprint of the sender's public key.
        recipient: fingerprint of the recipient's public key.
        query_id: identifier of the query execution this belongs to.
        kind: application-level message kind (e.g. ``"contribution"``).
        ciphertext: the encrypted, authenticated payload.
        signature: Schnorr signature by the sender over the ciphertext.
        sender_public: sender public key (group element) for verification.
    """

    sender: str
    recipient: str
    query_id: str
    kind: str
    ciphertext: bytes
    signature: tuple[int, int]
    sender_public: int

    def associated_data(self) -> bytes:
        """The header bytes bound into the AEAD tag and the signature."""
        header = {
            "sender": self.sender,
            "recipient": self.recipient,
            "query_id": self.query_id,
            "kind": self.kind,
        }
        return json.dumps(header, sort_keys=True).encode("utf-8")

    def size_bytes(self) -> int:
        """Approximate wire size, used by the network cost model."""
        return len(self.ciphertext) + len(self.associated_data()) + 2 * 192


def _encode_payload(payload: Any) -> bytes:
    """Serialize a JSON-compatible payload to canonical bytes."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")


def _decode_payload(raw: bytes) -> Any:
    return json.loads(raw.decode("utf-8"))


def seal_envelope(
    sender_keys: KeyPair,
    recipient_fingerprint: str,
    session_key: SymmetricKey,
    query_id: str,
    kind: str,
    payload: Any,
) -> Envelope:
    """Encrypt-and-sign ``payload`` for transport to a peer edgelet.

    The payload must be JSON-serializable; operator states in this
    reproduction always are.
    """
    header = {
        "sender": sender_keys.fingerprint(),
        "recipient": recipient_fingerprint,
        "query_id": query_id,
        "kind": kind,
    }
    associated = json.dumps(header, sort_keys=True).encode("utf-8")
    ciphertext = encrypt(session_key, _encode_payload(payload), associated)
    signature = sign(sender_keys, associated + ciphertext)
    return Envelope(
        sender=header["sender"],
        recipient=recipient_fingerprint,
        query_id=query_id,
        kind=kind,
        ciphertext=ciphertext,
        signature=signature,
        sender_public=sender_keys.public,
    )


def open_envelope(envelope: Envelope, session_key: SymmetricKey) -> Any:
    """Verify the signature and tag of an envelope, return its payload.

    Raises :class:`AuthenticationError` on any verification failure; the
    executor treats such envelopes as lost messages (uncertain network).
    """
    associated = envelope.associated_data()
    if not verify(envelope.sender_public, associated + envelope.ciphertext, envelope.signature):
        raise AuthenticationError("envelope signature invalid")
    plaintext = decrypt(session_key, envelope.ciphertext, associated)
    return _decode_payload(plaintext)
