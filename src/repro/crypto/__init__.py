"""Simulation-grade cryptographic substrate for Edgelet computing.

The Edgelet demonstration runs real cryptography inside TEEs (SGX
enclaves, TPM-sealed keys).  This package provides deterministic,
pure-Python equivalents built on :mod:`hashlib` and :mod:`hmac` so that
every code path of the protocol — authenticated message envelopes,
attestation quotes, partition commitments — is exercised without
external dependencies.

.. warning::
   These primitives are for **simulation and testing only**.  The stream
   cipher, the Schnorr-style signatures over a small published group, and
   the key-exchange implementation are not hardened against real
   adversaries and must never be used to protect actual data.
"""

from repro.crypto.primitives import (
    AuthenticationError,
    KeyPair,
    SymmetricKey,
    decrypt,
    derive_key,
    diffie_hellman_shared,
    encrypt,
    generate_keypair,
    hkdf,
    hmac_digest,
    secure_hash,
    sign,
    verify,
)
from repro.crypto.envelope import Envelope, open_envelope, seal_envelope
from repro.crypto.merkle import MerkleTree, verify_inclusion
from repro.crypto.keys import KeyRing

__all__ = [
    "AuthenticationError",
    "Envelope",
    "KeyPair",
    "KeyRing",
    "MerkleTree",
    "SymmetricKey",
    "decrypt",
    "derive_key",
    "diffie_hellman_shared",
    "encrypt",
    "generate_keypair",
    "hkdf",
    "hmac_digest",
    "open_envelope",
    "seal_envelope",
    "secure_hash",
    "sign",
    "verify",
    "verify_inclusion",
]
