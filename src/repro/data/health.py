"""Synthetic health-survey data (the Santé Publique France scenario).

Rows follow the shape of the DomYcile medical records the paper
describes: demographics (quasi-identifiers), clinical measurements, and
a dependency level — with genuine cluster structure in the numeric
features so the K-Means demonstration query has something to find.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.data.generators import SeededMixture
from repro.query.schema import Column, ColumnType, Schema

__all__ = ["HEALTH_SCHEMA", "generate_health_rows", "health_feature_matrix", "HEALTH_MIXTURE"]

#: Common schema of the health scenario.  ``age``/``zipcode``/``sex``
#: are quasi-identifiers; clinical columns are sensitive.
HEALTH_SCHEMA = Schema.of(
    Column("patient_id", ColumnType.INT),
    Column("age", ColumnType.INT, quasi_identifier=True),
    Column("sex", ColumnType.TEXT, quasi_identifier=True),
    Column("zipcode", ColumnType.TEXT, quasi_identifier=True),
    Column("region", ColumnType.TEXT),
    Column("bmi", ColumnType.FLOAT, sensitive=True),
    Column("systolic_bp", ColumnType.FLOAT, sensitive=True),
    Column("glucose", ColumnType.FLOAT, sensitive=True),
    Column("dependency_level", ColumnType.INT, sensitive=True),
)

_REGIONS = ("idf", "paca", "bretagne", "occitanie", "hauts-de-france")
_SEXES = ("F", "M")

#: Three latent health profiles (robust / fragile / dependent) over
#: (bmi, systolic_bp, glucose).  K-Means over these features should
#: recover ~3 clusters.
HEALTH_MIXTURE = SeededMixture(
    means=((23.0, 120.0, 0.95), (28.5, 145.0, 1.25), (21.0, 160.0, 1.60)),
    stds=((2.0, 8.0, 0.10), (2.5, 10.0, 0.15), (2.0, 12.0, 0.20)),
    mix=(0.5, 0.3, 0.2),
)

_FEATURE_COLUMNS = ("bmi", "systolic_bp", "glucose")


def generate_health_rows(count: int, seed: int = 0) -> list[dict[str, Any]]:
    """Generate ``count`` synthetic patient rows.

    Ages skew elderly (the DomYcile population receives home care);
    dependency level correlates with the latent health profile, so the
    demo's "which characteristics influence the dependency level"
    K-Means + Group-By query has a real answer.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    rng = np.random.default_rng(seed)
    points, components = HEALTH_MIXTURE.sample(count, rng)
    rows: list[dict[str, Any]] = []
    for i in range(count):
        component = int(components[i])
        age = int(np.clip(rng.normal(74, 12), 18, 103))
        dependency = int(
            np.clip(component + rng.integers(0, 2) + (1 if age > 85 else 0), 0, 5)
        )
        rows.append(
            {
                "patient_id": i + 1,
                "age": age,
                "sex": _SEXES[int(rng.integers(len(_SEXES)))],
                "zipcode": f"78{int(rng.integers(0, 1000)):03d}",
                "region": _REGIONS[int(rng.integers(len(_REGIONS)))],
                "bmi": round(float(points[i, 0]), 2),
                "systolic_bp": round(float(points[i, 1]), 1),
                "glucose": round(float(points[i, 2]), 3),
                "dependency_level": dependency,
            }
        )
    return rows


def health_feature_matrix(rows: list[dict[str, Any]]) -> np.ndarray:
    """Extract the ``(n, 3)`` clinical feature matrix used by K-Means.

    Rows missing any feature are skipped (NULL-tolerant, as the real
    snapshot may be heterogeneous).
    """
    features = [
        [row[column] for column in _FEATURE_COLUMNS]
        for row in rows
        if all(row.get(column) is not None for column in _FEATURE_COLUMNS)
    ]
    if not features:
        return np.empty((0, len(_FEATURE_COLUMNS)))
    return np.asarray(features, dtype=float)
