"""CSV import/export for relations.

A library a downstream user adopts needs to get data in and out.  These
helpers read and write :class:`~repro.query.relation.Relation` objects
as CSV with schema-driven type parsing (the CSV text ``"70"`` becomes
the INT ``70`` when the schema says so; empty cells become NULL).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Any

from repro.query.relation import Relation
from repro.query.schema import ColumnType, Schema, SchemaError

__all__ = ["load_relation_csv", "save_relation_csv"]


def _parse_cell(raw: str, ctype: ColumnType) -> Any:
    if raw == "":
        return None
    if ctype == ColumnType.INT:
        return int(raw)
    if ctype == ColumnType.FLOAT:
        return float(raw)
    if ctype == ColumnType.BOOL:
        lowered = raw.strip().lower()
        if lowered in ("true", "1", "yes"):
            return True
        if lowered in ("false", "0", "no"):
            return False
        raise SchemaError(f"cannot parse {raw!r} as a boolean")
    return raw


def _render_cell(value: Any) -> str:
    if value is None:
        return ""
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)


def save_relation_csv(relation: Relation, path: str | Path) -> int:
    """Write a relation to ``path``; returns the number of data rows."""
    columns = relation.schema.column_names
    count = 0
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(columns)
        for row in relation:
            writer.writerow([_render_cell(row.get(column)) for column in columns])
            count += 1
    return count


def load_relation_csv(schema: Schema, path: str | Path) -> Relation:
    """Read a CSV written by :func:`save_relation_csv` (or compatible).

    The header must list a subset of the schema's columns (any order);
    unknown header names raise :class:`SchemaError`.  Cells are parsed
    according to the schema's column types; empty cells load as NULL.
    """
    with open(path, newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            return Relation(schema)
        for name in header:
            if not schema.has_column(name):
                raise SchemaError(f"CSV header has unknown column {name!r}")
        types = [schema.column(name).ctype for name in header]
        rows = []
        for line_number, cells in enumerate(reader, start=2):
            if not cells:
                continue  # blank line (e.g. trailing newline)
            if len(cells) != len(header):
                raise SchemaError(
                    f"line {line_number}: expected {len(header)} cells, "
                    f"got {len(cells)}"
                )
            row = {
                name: _parse_cell(cell, ctype)
                for name, cell, ctype in zip(header, cells, types)
            }
            rows.append(row)
    return Relation(schema, rows)
