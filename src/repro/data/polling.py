"""Synthetic audience data for the opportunistic-polling use case.

Models the paper's first motivating example: attendees of a large event
(conference, museum, concert, match) contributing their centers of
interest, nationality, and age from TrustZone smartphones so services
can adapt to the audience in real time.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.query.schema import Column, ColumnType, Schema

__all__ = ["POLLING_SCHEMA", "generate_polling_rows"]

POLLING_SCHEMA = Schema.of(
    Column("attendee_id", ColumnType.INT),
    Column("age", ColumnType.INT, quasi_identifier=True),
    Column("nationality", ColumnType.TEXT, quasi_identifier=True),
    Column("interest", ColumnType.TEXT),
    Column("satisfaction", ColumnType.FLOAT, sensitive=True),
    Column("spending", ColumnType.FLOAT, sensitive=True),
)

_NATIONALITIES = ("fr", "de", "it", "es", "uk", "us", "jp", "br")
_INTERESTS = ("databases", "security", "ml", "systems", "theory", "hci")

# Interests skew by a latent "community": systems-folk spend differently
# from theory-folk, so aggregates per interest are informative.
_INTEREST_SPENDING_MEAN = {
    "databases": 45.0,
    "security": 52.0,
    "ml": 61.0,
    "systems": 48.0,
    "theory": 30.0,
    "hci": 41.0,
}


def generate_polling_rows(count: int, seed: int = 0) -> list[dict[str, Any]]:
    """Generate ``count`` synthetic attendee rows."""
    if count < 0:
        raise ValueError("count must be non-negative")
    rng = np.random.default_rng(seed)
    rows: list[dict[str, Any]] = []
    for i in range(count):
        interest = _INTERESTS[int(rng.integers(len(_INTERESTS)))]
        spending_mean = _INTEREST_SPENDING_MEAN[interest]
        rows.append(
            {
                "attendee_id": i + 1,
                "age": int(np.clip(rng.normal(36, 11), 18, 90)),
                "nationality": _NATIONALITIES[int(rng.integers(len(_NATIONALITIES)))],
                "interest": interest,
                "satisfaction": round(float(np.clip(rng.normal(3.8, 0.8), 1.0, 5.0)), 2),
                "spending": round(float(max(rng.normal(spending_mean, 12.0), 0.0)), 2),
            }
        )
    return rows
