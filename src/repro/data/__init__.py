"""Synthetic personal-data generators.

Substitutes for the data the paper works with: DomYcile medical records
(8,000 elderly people receiving home care in the Yvelines district) and
audience data for the opportunistic-polling use case.  Generators are
seeded and deterministic so experiments are reproducible.
"""

from repro.data.health import HEALTH_SCHEMA, generate_health_rows, health_feature_matrix
from repro.data.polling import POLLING_SCHEMA, generate_polling_rows
from repro.data.generators import SeededMixture, distribute_rows_to_devices

__all__ = [
    "HEALTH_SCHEMA",
    "POLLING_SCHEMA",
    "SeededMixture",
    "distribute_rows_to_devices",
    "generate_health_rows",
    "generate_polling_rows",
    "health_feature_matrix",
]
