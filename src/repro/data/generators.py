"""Common building blocks for the synthetic data generators."""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

import numpy as np

__all__ = ["SeededMixture", "distribute_rows_to_devices"]


@dataclass(frozen=True)
class SeededMixture:
    """A Gaussian mixture over numeric feature space.

    The health scenario uses a mixture so that K-Means has genuine
    cluster structure to find (e.g. dependency-level groups), letting
    accuracy metrics mean something.

    Attributes:
        means: ``(k, d)`` component means.
        stds: ``(k, d)`` per-dimension standard deviations.
        mix: ``(k,)`` component probabilities (normalized on use).
    """

    means: tuple[tuple[float, ...], ...]
    stds: tuple[tuple[float, ...], ...]
    mix: tuple[float, ...]

    def __post_init__(self) -> None:
        k = len(self.means)
        if k == 0:
            raise ValueError("mixture needs at least one component")
        if len(self.stds) != k or len(self.mix) != k:
            raise ValueError("means, stds and mix must have the same length")
        dims = {len(m) for m in self.means} | {len(s) for s in self.stds}
        if len(dims) != 1:
            raise ValueError("all components must share the dimensionality")
        if any(weight < 0 for weight in self.mix) or sum(self.mix) <= 0:
            raise ValueError("mixture weights must be non-negative, not all zero")

    @property
    def dimension(self) -> int:
        """Feature-space dimensionality."""
        return len(self.means[0])

    def sample(self, count: int, rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
        """Draw ``count`` points; returns ``(points, component_labels)``."""
        if count < 0:
            raise ValueError("count must be non-negative")
        weights = np.asarray(self.mix, dtype=float)
        weights = weights / weights.sum()
        components = rng.choice(len(self.means), size=count, p=weights)
        means = np.asarray(self.means, dtype=float)
        stds = np.asarray(self.stds, dtype=float)
        noise = rng.standard_normal((count, self.dimension))
        points = means[components] + noise * stds[components]
        return points, components


def distribute_rows_to_devices(
    rows: Sequence[dict[str, Any]],
    n_devices: int,
    rows_per_device: tuple[int, int] = (1, 1),
    seed: int = 0,
) -> list[list[dict[str, Any]]]:
    """Deal rows out to ``n_devices`` owners.

    Each device receives between ``rows_per_device[0]`` and
    ``rows_per_device[1]`` consecutive rows (a personal datastore holds
    one owner's records; in DomYcile that is one medical record, but a
    phone may hold a small history).  Rows left over after every device
    reached its quota are appended round-robin.
    """
    if n_devices <= 0:
        raise ValueError("n_devices must be positive")
    low, high = rows_per_device
    if not 1 <= low <= high:
        raise ValueError("need 1 <= low <= high for rows_per_device")
    rng = random.Random(seed)
    allocations: list[list[dict[str, Any]]] = [[] for _ in range(n_devices)]
    cursor = 0
    for device_index in range(n_devices):
        if cursor >= len(rows):
            break
        quota = rng.randint(low, high)
        take = rows[cursor: cursor + quota]
        allocations[device_index].extend(dict(row) for row in take)
        cursor += len(take)
    device_index = 0
    while cursor < len(rows):
        allocations[device_index % n_devices].append(dict(rows[cursor]))
        cursor += 1
        device_index += 1
    return allocations
