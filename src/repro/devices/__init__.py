"""TEE-enabled personal device substrate.

Models the heterogeneous hardware of the demonstration — PCs with Intel
SGX, smartphones with ARM TrustZone, DomYcile home boxes with an
STM32+TPM — at the level of the *guarantees* they provide:

* :mod:`repro.devices.tee` — the trusted execution environment
  abstraction (measurement, attestation quotes, sealed storage, and the
  "sealed glass" side-channel compromise mode);
* :mod:`repro.devices.profiles` — performance/availability profiles per
  device class;
* :mod:`repro.devices.attestation` — the remote attestation protocol
  used before any operator assignment;
* :mod:`repro.devices.datastore` — the owner's local personal datastore
  (the µ-SD card of the home box);
* :mod:`repro.devices.edgelet` — the edgelet device tying it together;
* :mod:`repro.devices.churn` — seeded arrival/departure renewal
  processes over the device population (standing-query churn).
"""

from repro.devices.tee import TEEKind, TrustedExecutionEnvironment, SealedGlassObserver
from repro.devices.profiles import DeviceProfile, HOME_BOX, PC_SGX, SMARTPHONE, profile_by_name
from repro.devices.attestation import AttestationAuthority, AttestationError, Quote
from repro.devices.datastore import LocalDatastore
from repro.devices.edgelet import Edgelet
from repro.devices.churn import ChurnModel, ChurnSpec, WindowChurn

__all__ = [
    "AttestationAuthority",
    "AttestationError",
    "ChurnModel",
    "ChurnSpec",
    "DeviceProfile",
    "Edgelet",
    "HOME_BOX",
    "LocalDatastore",
    "PC_SGX",
    "Quote",
    "SMARTPHONE",
    "SealedGlassObserver",
    "TEEKind",
    "TrustedExecutionEnvironment",
    "WindowChurn",
    "profile_by_name",
]
