"""Seeded churn over the device population of a standing query.

One-shot Edgelet queries assume a frozen crowd; a *standing* query does
not get that luxury — PrivAgE-style periodic aggregation runs over a
population whose owners join and leave between rounds.  This module is
the renewal-process model of that population:

* **departures** — each live device independently leaves for good with
  probability ``departure_probability`` per window (geometric sojourn,
  the memoryless renewal assumption);
* **arrivals** — new devices appear at ``*_arrival_rate`` expected
  devices per window (Bernoulli-rounded, so non-integer rates work);
* **data changes** — each surviving contributor refreshes its local
  datastore with probability ``data_change_probability`` per window,
  which is what decides whether incremental partition maintenance gets
  to ship a delta stamp or must recollect in full;
* **mobility** — optionally, surviving contributors are only reachable
  during exponential contact windows (the classic OppNet assumption),
  generated through :class:`repro.network.mobility.ContactSchedule`.

Determinism is the design constraint: every decision draws from a
private ``random.Random`` keyed by ``(seed, window, device id)`` or
``(seed, window, pool)``, never from any shared stream.  Two
consequences the tests rely on:

* the same spec and seed replay the exact same churn history,
  regardless of how the surrounding simulation interleaves events;
* a **no-op** churn model (all rates zero) makes *zero* draws that any
  other component can observe, so a run with no-op churn is
  byte-identical to a run with no churn model at all.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.network.mobility import ContactSchedule

__all__ = ["ChurnSpec", "WindowChurn", "ChurnModel"]


@dataclass(frozen=True)
class ChurnSpec:
    """Knobs of the population renewal process.

    Attributes:
        departure_probability: per-device, per-window probability of a
            permanent departure (applies to contributors and processors
            alike).
        contributor_arrival_rate: expected new contributors per window;
            ``None`` balances departures in expectation (rate =
            ``departure_probability * current pool size``), keeping the
            population stationary.
        processor_arrival_rate: same for the processor pool.
        data_change_probability: per-contributor, per-window probability
            that the owner's datastore gained a fresh row since the last
            window.
        mobility_mean_intercontact: when set, surviving contributors are
            online only during exponential contact windows with this
            mean inter-contact time (virtual seconds).
        mobility_mean_duration: mean contact duration for the above.
        seed: root of every private stream in the model.
    """

    departure_probability: float = 0.0
    contributor_arrival_rate: float | None = None
    processor_arrival_rate: float | None = None
    data_change_probability: float = 0.0
    mobility_mean_intercontact: float | None = None
    mobility_mean_duration: float = 5.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.departure_probability <= 1:
            raise ValueError("departure_probability must be in [0, 1]")
        if not 0 <= self.data_change_probability <= 1:
            raise ValueError("data_change_probability must be in [0, 1]")
        for rate in (self.contributor_arrival_rate, self.processor_arrival_rate):
            if rate is not None and rate < 0:
                raise ValueError("arrival rates must be non-negative")
        if self.mobility_mean_intercontact is not None:
            if self.mobility_mean_intercontact <= 0:
                raise ValueError("mobility_mean_intercontact must be positive")
            if self.mobility_mean_duration <= 0:
                raise ValueError("mobility_mean_duration must be positive")

    @property
    def any_churn(self) -> bool:
        """Whether this spec can ever perturb the population."""
        return bool(
            self.departure_probability
            or self.contributor_arrival_rate
            or self.processor_arrival_rate
            or self.data_change_probability
            or self.mobility_mean_intercontact is not None
        )


@dataclass
class WindowChurn:
    """Everything that happened to the population before one window."""

    window: int
    contributor_departures: list[str] = field(default_factory=list)
    processor_departures: list[str] = field(default_factory=list)
    contributor_arrivals: int = 0
    processor_arrivals: int = 0
    data_changes: list[str] = field(default_factory=list)

    @property
    def any_events(self) -> bool:
        return bool(
            self.contributor_departures
            or self.processor_departures
            or self.contributor_arrivals
            or self.processor_arrivals
            or self.data_changes
        )

    def as_dict(self) -> dict[str, object]:
        return {
            "window": self.window,
            "contributor_departures": list(self.contributor_departures),
            "processor_departures": list(self.processor_departures),
            "contributor_arrivals": self.contributor_arrivals,
            "processor_arrivals": self.processor_arrivals,
            "data_changes": list(self.data_changes),
        }


class ChurnModel:
    """Draws one :class:`WindowChurn` per window from private streams."""

    def __init__(self, spec: ChurnSpec):
        self.spec = spec

    # -- private streams ----------------------------------------------------

    def _device_rng(self, window: int, device_id: str, what: str) -> random.Random:
        return random.Random(f"{self.spec.seed}:churn:w{window}:{what}:{device_id}")

    def _pool_rng(self, window: int, pool: str) -> random.Random:
        return random.Random(f"{self.spec.seed}:churn:w{window}:arrivals:{pool}")

    # -- the renewal step ---------------------------------------------------

    def _arrival_count(
        self, window: int, pool: str, rate: float | None, pool_size: int
    ) -> int:
        if rate is None:
            # stationary default: replace departures in expectation
            rate = self.spec.departure_probability * pool_size
        if rate <= 0:
            return 0
        base = int(rate)
        extra = 1 if self._pool_rng(window, pool).random() < (rate - base) else 0
        return base + extra

    def step(
        self,
        window: int,
        contributors: Sequence[str],
        processors: Sequence[str],
    ) -> WindowChurn:
        """Churn events to apply before window ``window`` fires.

        Per-device decisions draw from streams keyed by the device id,
        so the outcome for one device never depends on how many other
        devices exist or in which order they are considered.
        """
        spec = self.spec
        churn = WindowChurn(window=window)
        if spec.departure_probability > 0:
            for device_id in contributors:
                rng = self._device_rng(window, device_id, "depart")
                if rng.random() < spec.departure_probability:
                    churn.contributor_departures.append(device_id)
            for device_id in processors:
                rng = self._device_rng(window, device_id, "depart")
                if rng.random() < spec.departure_probability:
                    churn.processor_departures.append(device_id)
        churn.contributor_arrivals = self._arrival_count(
            window,
            "contrib",
            spec.contributor_arrival_rate,
            len(contributors),
        )
        churn.processor_arrivals = self._arrival_count(
            window, "proc", spec.processor_arrival_rate, len(processors)
        )
        if spec.data_change_probability > 0:
            for device_id in contributors:
                if device_id in churn.contributor_departures:
                    continue  # the owner left; nobody refreshed the store
                rng = self._device_rng(window, device_id, "data")
                if rng.random() < spec.data_change_probability:
                    churn.data_changes.append(device_id)
        return churn

    # -- mobility -----------------------------------------------------------

    def contact_schedule(
        self,
        window: int,
        device_ids: Iterable[str],
        start: float,
        end: float,
    ) -> ContactSchedule | None:
        """Exponential contact windows over ``[start, end)`` for one
        execution window, or ``None`` when mobility is disabled.

        Reuses :class:`repro.network.mobility.ContactSchedule` with
        per-device private streams, so the contact pattern of a device
        is a pure function of ``(seed, window, device id)``.
        """
        mean_gap = self.spec.mobility_mean_intercontact
        if mean_gap is None:
            return None
        if not start < end:
            raise ValueError("contact horizon must be non-empty")
        mean_stay = self.spec.mobility_mean_duration
        schedule = ContactSchedule()
        for device_id in sorted(device_ids):
            rng = self._device_rng(window, device_id, "contact")
            # first contact begins the window already underway half the
            # time, so a fresh window never starts with everyone offline
            time = start + rng.expovariate(2.0 / mean_gap)
            while time < end:
                duration = rng.expovariate(1.0 / mean_stay)
                schedule.add_window(device_id, time, min(time + duration, end))
                time += duration + rng.expovariate(1.0 / mean_gap)
        return schedule
