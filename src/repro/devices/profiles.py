"""Device performance and availability profiles.

The demonstration platform mixes a laptop with SGX, TrustZone
smartphones, and STM32-based home boxes.  For the execution model what
matters is their *relative* compute speed, link quality, and propensity
to be offline — captured here as :class:`DeviceProfile` constants
calibrated from the hardware the paper lists (Core i5-9400H vs.
STM32F417, caregiver-carried boxes vs. always-on laptops).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.devices.tee import TEEKind
from repro.network.topology import LinkQuality

__all__ = ["DeviceProfile", "PC_SGX", "SMARTPHONE", "HOME_BOX", "profile_by_name"]


@dataclass(frozen=True)
class DeviceProfile:
    """Static characteristics of one device class.

    Attributes:
        name: human-readable class name.
        tee_kind: which TEE family the class carries.
        compute_rate: abstract work units per virtual second; the
            executor divides operator workloads by this to get compute
            latency.
        link: default link quality of the device's radio.
        availability: long-run fraction of time the device is reachable
            (used by stochastic scenario generators).
        storage_tuples: capacity of the local datastore in tuples.
    """

    name: str
    tee_kind: TEEKind
    compute_rate: float
    link: LinkQuality
    availability: float
    storage_tuples: int

    def __post_init__(self) -> None:
        if self.compute_rate <= 0:
            raise ValueError("compute_rate must be positive")
        if not 0 < self.availability <= 1:
            raise ValueError("availability must be in (0, 1]")
        if self.storage_tuples <= 0:
            raise ValueError("storage_tuples must be positive")

    def compute_latency(self, work_units: float) -> float:
        """Virtual seconds needed to perform ``work_units`` of work."""
        if work_units < 0:
            raise ValueError("work_units must be non-negative")
        return work_units / self.compute_rate


#: Laptop with Intel SGX (Core i5-9400H in the paper): fast, reliable.
PC_SGX = DeviceProfile(
    name="pc-sgx",
    tee_kind=TEEKind.SGX,
    compute_rate=10_000.0,
    link=LinkQuality(base_latency=0.05, latency_jitter=0.2, loss_probability=0.01,
                     bandwidth=1_250_000.0),
    availability=0.99,
    storage_tuples=1_000_000,
)

#: TrustZone smartphone: mid compute, mobile connectivity.
SMARTPHONE = DeviceProfile(
    name="smartphone-trustzone",
    tee_kind=TEEKind.TRUSTZONE,
    compute_rate=3_000.0,
    link=LinkQuality(base_latency=0.3, latency_jitter=0.5, loss_probability=0.05,
                     bandwidth=500_000.0),
    availability=0.85,
    storage_tuples=200_000,
)

#: DomYcile home box (STM32F417 + TPM + µ-SD): slow, opportunistically
#: connected by visiting caregivers.
HOME_BOX = DeviceProfile(
    name="home-box-tpm",
    tee_kind=TEEKind.TPM,
    compute_rate=150.0,
    link=LinkQuality(base_latency=5.0, latency_jitter=0.8, loss_probability=0.10,
                     bandwidth=50_000.0),
    availability=0.40,
    storage_tuples=20_000,
)

_PROFILES = {profile.name: profile for profile in (PC_SGX, SMARTPHONE, HOME_BOX)}


def profile_by_name(name: str) -> DeviceProfile:
    """Look up a built-in profile by its ``name`` field."""
    try:
        return _PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(_PROFILES))
        raise KeyError(f"unknown device profile {name!r}; known: {known}") from None
