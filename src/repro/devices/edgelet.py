"""The edgelet: one TEE-enabled personal device in the swarm.

An :class:`Edgelet` ties together a device profile, a TEE, a key ring,
and the owner's local datastore, and knows how to exchange sealed
envelopes with peers over the opportunistic network.  Operator logic
(Snapshot Builder, Computer, ...) is *assigned onto* edgelets by the
planner; the device itself is role-agnostic.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable

from repro.crypto.envelope import Envelope, open_envelope, seal_envelope
from repro.crypto.keys import KeyRing
from repro.crypto.primitives import AuthenticationError
from repro.devices.datastore import LocalDatastore
from repro.devices.profiles import DeviceProfile
from repro.devices.tee import SealedGlassObserver, TrustedExecutionEnvironment

__all__ = ["Edgelet"]

_device_counter = itertools.count(1)


class Edgelet:
    """One personal device participating in Edgelet computations.

    Attributes:
        device_id: unique, human-readable device identifier.
        profile: the device class (PC, smartphone, home box).
        tee: the simulated trusted execution environment.
        keyring: long-term identity + pairwise session keys (the key
            pair is the TEE's attestation pair, as in the real system
            where keys never leave the enclave).
        datastore: the owner's local rows.
    """

    def __init__(
        self,
        profile: DeviceProfile,
        device_id: str | None = None,
        seed: bytes | None = None,
        code_identity: str = "edgelet-runtime-v1",
    ):
        number = next(_device_counter)
        self.device_id = device_id or f"{profile.name}-{number:05d}"
        self.profile = profile
        self.tee = TrustedExecutionEnvironment.create(
            profile.tee_kind, code_identity=code_identity, seed=seed
        )
        self.keyring = KeyRing(keypair=self.tee.keypair)
        self.datastore = LocalDatastore(profile.storage_tuples)
        self._inbox_handlers: dict[str, Callable[[str, Any], None]] = {}

    # -- identity ---------------------------------------------------------

    @property
    def fingerprint(self) -> str:
        """Public-key fingerprint (used for hashing-based assignment)."""
        return self.keyring.fingerprint

    def __repr__(self) -> str:
        return f"Edgelet({self.device_id}, {self.profile.name})"

    # -- key establishment --------------------------------------------------

    def introduce(self, peer: "Edgelet") -> None:
        """Mutually learn public keys (post-attestation key exchange)."""
        self.keyring.learn_public(peer.fingerprint, peer.keyring.keypair.public)
        peer.keyring.learn_public(self.fingerprint, self.keyring.keypair.public)

    # -- sealed messaging ---------------------------------------------------

    def seal_for(
        self, peer_fingerprint: str, query_id: str, kind: str, payload: Any
    ) -> Envelope:
        """Seal a payload for a peer edgelet."""
        session = self.keyring.session_key(peer_fingerprint)
        return seal_envelope(
            self.keyring.keypair, peer_fingerprint, session, query_id, kind, payload
        )

    def open_from(self, envelope: Envelope) -> Any:
        """Open an envelope addressed to this edgelet.

        Raises :class:`AuthenticationError` on tampering or
        misaddressing; the executor counts those as lost messages.
        """
        if envelope.recipient != self.fingerprint:
            raise AuthenticationError(
                f"envelope for {envelope.recipient}, we are {self.fingerprint}"
            )
        session = self.keyring.session_key(envelope.sender)
        payload = open_envelope(envelope, session)
        # data decrypted inside the TEE becomes cleartext *inside* it —
        # exactly what a sealed-glass adversary observes.
        self.tee.process_cleartext(
            payload if isinstance(payload, list) else [payload]
        )
        return payload

    # -- local processing -----------------------------------------------------

    def compute_latency(self, work_units: float) -> float:
        """Virtual time needed for ``work_units`` on this hardware."""
        return self.profile.compute_latency(work_units)

    def contribute(
        self,
        predicate: Callable[[dict[str, Any]], bool] | None = None,
        columns: list[str] | None = None,
    ) -> list[dict[str, Any]]:
        """Select the rows this owner contributes to a query."""
        return self.datastore.select(predicate, columns)

    def compromise(self, observer: SealedGlassObserver) -> None:
        """Subject this device's TEE to a side-channel attack."""
        self.tee.compromise(observer)
