"""Remote attestation protocol between edgelets.

Before an edgelet is trusted with a Data Processor role, peers verify a
*quote*: a signature by the TEE's attestation key over its measurement
and a fresh challenge.  The :class:`AttestationAuthority` plays the role
of the manufacturer verification service (Intel IAS / TPM CA): it knows
which measurements correspond to the genuine Edgelet runtime and which
attestation keys belong to genuine hardware.

Integrity holds even for sealed-glass-compromised TEEs, so attestation
deliberately does **not** detect side-channel compromise — that is why
the partitioning counter-measures of the paper are needed at all.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass

from repro.crypto.primitives import sign, verify
from repro.devices.tee import TrustedExecutionEnvironment

__all__ = ["Quote", "AttestationAuthority", "AttestationError"]


class AttestationError(Exception):
    """Raised when a quote fails verification."""


@dataclass(frozen=True)
class Quote:
    """An attestation quote.

    Attributes:
        measurement: claimed code measurement (hex digest).
        challenge: the verifier's nonce echoed back (hex).
        public_key: attestation public key of the quoting TEE.
        signature: Schnorr signature over ``measurement || challenge``.
    """

    measurement: str
    challenge: str
    public_key: int
    signature: tuple[int, int]

    def signed_payload(self) -> bytes:
        """The bytes the signature covers."""
        return f"{self.measurement}|{self.challenge}".encode("utf-8")


class AttestationAuthority:
    """Registry of trusted measurements and genuine attestation keys."""

    def __init__(self) -> None:
        self._trusted_measurements: set[str] = set()
        self._genuine_keys: set[int] = set()

    def trust_measurement(self, measurement: str) -> None:
        """Whitelist a code measurement (the genuine Edgelet runtime)."""
        self._trusted_measurements.add(measurement)

    def register_device(self, tee: TrustedExecutionEnvironment) -> None:
        """Record a TEE's attestation key as genuine hardware."""
        self._genuine_keys.add(tee.keypair.public)

    def fresh_challenge(self) -> str:
        """Generate a verifier nonce."""
        return secrets.token_hex(16)

    @staticmethod
    def produce_quote(tee: TrustedExecutionEnvironment, challenge: str) -> Quote:
        """Have a TEE answer a challenge with a quote."""
        payload = f"{tee.measurement}|{challenge}".encode("utf-8")
        signature = sign(tee.keypair, payload)
        return Quote(
            measurement=tee.measurement,
            challenge=challenge,
            public_key=tee.keypair.public,
            signature=signature,
        )

    def verify_quote(self, quote: Quote, expected_challenge: str) -> None:
        """Verify a quote; raises :class:`AttestationError` on failure.

        Checks, in order: challenge freshness, hardware genuineness,
        measurement trust, and the signature itself.
        """
        if quote.challenge != expected_challenge:
            raise AttestationError("stale or mismatched challenge")
        if quote.public_key not in self._genuine_keys:
            raise AttestationError("attestation key is not genuine hardware")
        if quote.measurement not in self._trusted_measurements:
            raise AttestationError(
                f"untrusted measurement {quote.measurement[:16]}…"
            )
        if not verify(quote.public_key, quote.signed_payload(), quote.signature):
            raise AttestationError("quote signature invalid")

    def attest(self, tee: TrustedExecutionEnvironment) -> bool:
        """Full challenge-response round against one TEE.

        Returns ``True`` on success; raises on any verification failure
        so that callers cannot silently skip the check.
        """
        challenge = self.fresh_challenge()
        quote = self.produce_quote(tee, challenge)
        self.verify_quote(quote, challenge)
        return True
