"""Trusted Execution Environment abstraction.

A TEE, whatever its hardware realization (SGX enclave, TrustZone secure
world, TPM-backed secure boot), gives the Edgelet protocol three things:

1. **Integrity** — the code running inside is exactly the measured code;
2. **Attestability** — it can produce a quote binding its measurement to
   a challenge, verifiable by peers;
3. **Confidentiality** — data decrypted inside is invisible outside,
   *unless* a side-channel attack degrades the TEE to "sealed glass"
   mode [Tramer et al.], where integrity survives but the adversary can
   read everything the enclave manipulates.

The sealed-glass mode is first-class here because the paper's privacy
argument (horizontal/vertical partitioning bounds what a compromised TEE
exposes) is evaluated under exactly that threat model: a
:class:`SealedGlassObserver` records every cleartext item a compromised
TEE touches, and the privacy metrics read that record.
"""

from __future__ import annotations

import enum
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any

from repro.crypto.primitives import KeyPair, SymmetricKey, generate_keypair, hkdf

__all__ = ["TEEKind", "TrustedExecutionEnvironment", "SealedGlassObserver", "TEEError"]


class TEEError(Exception):
    """Raised on TEE misuse (e.g. unsealing with a foreign blob)."""


class TEEKind(enum.Enum):
    """Hardware families of the demonstration platform."""

    SGX = "sgx"              # Intel SGX enclave (PC)
    TRUSTZONE = "trustzone"  # ARM TrustZone secure world (smartphone)
    TPM = "tpm"              # TPM-backed secure boot (home box)


class SealedGlassObserver:
    """Records the cleartext data visible through a compromised TEE.

    One observer is shared by all compromised TEEs of a scenario; the
    privacy experiments interrogate it to measure actual exposure.
    """

    def __init__(self) -> None:
        self._observations: dict[str, list[Any]] = {}

    def observe(self, tee_id: str, item: Any) -> None:
        """Record that ``item`` was visible in cleartext inside ``tee_id``."""
        self._observations.setdefault(tee_id, []).append(item)

    def exposed_items(self, tee_id: str) -> list[Any]:
        """Everything observed inside one TEE."""
        return list(self._observations.get(tee_id, []))

    def exposed_tees(self) -> list[str]:
        """Identifiers of TEEs where anything was observed (sorted)."""
        return sorted(self._observations)

    def total_exposed(self) -> int:
        """Total count of observed cleartext items across all TEEs."""
        return sum(len(items) for items in self._observations.values())

    def clear(self) -> None:
        """Reset all observations."""
        self._observations.clear()


@dataclass
class TrustedExecutionEnvironment:
    """A simulated TEE instance living on one edgelet.

    Attributes:
        kind: hardware family.
        measurement: hex digest of the (simulated) enclave code; all
            honest edgelets in a scenario run the same measurement.
        keypair: the attestation/identity key pair, generated inside the
            TEE and never exported.
        compromised: when ``True`` the TEE operates in sealed-glass mode
            and leaks every cleartext item to ``observer``.
        observer: the shared sealed-glass observer (may be ``None`` when
            no compromise is simulated).
    """

    kind: TEEKind
    measurement: str
    keypair: KeyPair = field(default_factory=generate_keypair)
    compromised: bool = False
    observer: SealedGlassObserver | None = None
    _sealing_key: SymmetricKey = field(init=False, repr=False)

    def __post_init__(self) -> None:
        # Sealing key is bound to the identity and measurement, like
        # SGX's MRENCLAVE-derived sealing keys.
        seed = self.keypair.private.to_bytes(192, "big") + self.measurement.encode()
        self._sealing_key = SymmetricKey(hkdf(seed, b"tee-sealing", 32))

    @classmethod
    def create(
        cls,
        kind: TEEKind,
        code_identity: str = "edgelet-runtime-v1",
        seed: bytes | None = None,
        compromised: bool = False,
        observer: SealedGlassObserver | None = None,
    ) -> "TrustedExecutionEnvironment":
        """Boot a TEE running the given code identity."""
        measurement = hashlib.sha256(code_identity.encode("utf-8")).hexdigest()
        return cls(
            kind=kind,
            measurement=measurement,
            keypair=generate_keypair(seed),
            compromised=compromised,
            observer=observer,
        )

    @property
    def identity(self) -> str:
        """Attestation key fingerprint, the TEE's public identity."""
        return self.keypair.fingerprint()

    # -- sealed storage -----------------------------------------------------

    def seal(self, data: Any) -> bytes:
        """Seal JSON-compatible state to this TEE (survives reboots)."""
        from repro.crypto.primitives import encrypt

        blob = json.dumps(data, sort_keys=True).encode("utf-8")
        return encrypt(self._sealing_key, blob, b"sealed-state")

    def unseal(self, blob: bytes) -> Any:
        """Unseal state previously sealed by *this* TEE."""
        from repro.crypto.primitives import AuthenticationError, decrypt

        try:
            raw = decrypt(self._sealing_key, blob, b"sealed-state")
        except AuthenticationError as exc:
            raise TEEError("blob was not sealed by this TEE") from exc
        return json.loads(raw.decode("utf-8"))

    # -- confidential processing -------------------------------------------

    def process_cleartext(self, items: list[Any]) -> list[Any]:
        """Declare that ``items`` are being manipulated in cleartext
        inside the TEE.  Honest TEEs leak nothing; a compromised
        (sealed-glass) TEE reports every item to the observer.

        Returns the items unchanged so call sites can write
        ``data = tee.process_cleartext(data)`` at each decryption point.
        """
        if self.compromised and self.observer is not None:
            for item in items:
                self.observer.observe(self.identity, item)
        return items

    def compromise(self, observer: SealedGlassObserver) -> None:
        """Degrade this TEE to sealed-glass mode (side-channel attack).

        Integrity and attestation keep working — that is the point of
        the sealed-glass model — but confidentiality is gone.
        """
        self.compromised = True
        self.observer = observer
