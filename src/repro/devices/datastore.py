"""The owner's local personal datastore.

On a DomYcile home box this is the µ-SD card holding the medical record;
on a phone or PC it is the owner's personal database.  Rows are plain
dictionaries conforming to the scenario's common schema (Edgelet
computing treats the swarm as a horizontally partitioned shared
database).  Data at rest is sealed by the device's TEE.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator

__all__ = ["LocalDatastore", "DatastoreFullError"]

Row = dict[str, Any]


class DatastoreFullError(Exception):
    """Raised when inserting beyond the device's storage capacity."""


class LocalDatastore:
    """A capacity-bounded row store with predicate selection.

    The store is intentionally simple — personal datastores hold one
    owner's records, typically a handful to a few thousand rows.
    """

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._capacity = capacity
        self._rows: list[Row] = []

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    @property
    def capacity(self) -> int:
        """Maximum number of rows this device can hold."""
        return self._capacity

    def insert(self, row: Row) -> None:
        """Insert one row; raises :class:`DatastoreFullError` if full."""
        if len(self._rows) >= self._capacity:
            raise DatastoreFullError(
                f"datastore is full ({self._capacity} rows)"
            )
        self._rows.append(dict(row))

    def insert_many(self, rows: Iterable[Row]) -> int:
        """Insert rows until done or full; returns how many were stored."""
        inserted = 0
        for row in rows:
            if len(self._rows) >= self._capacity:
                break
            self._rows.append(dict(row))
            inserted += 1
        return inserted

    def select(
        self,
        predicate: Callable[[Row], bool] | None = None,
        columns: list[str] | None = None,
    ) -> list[Row]:
        """Return matching rows, optionally projected to ``columns``.

        Missing columns are projected as ``None`` so that heterogeneous
        owner records still conform to the common schema.
        """
        matched = (
            row for row in self._rows if predicate is None or predicate(row)
        )
        if columns is None:
            return [dict(row) for row in matched]
        return [{column: row.get(column) for column in columns} for row in matched]

    def clear(self) -> None:
        """Delete all rows (owner wipes the device)."""
        self._rows.clear()
