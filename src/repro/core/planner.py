"""Privacy- and resiliency-aware construction of Edgelet QEPs.

This is the machinery behind Part 1 of the demonstration: attendees pick
a query, adjust the privacy knobs (maximum raw data per edgelet,
attribute pairs to separate) and the failure probability, and watch the
QEP change shape — more horizontal partitions, more vertical column
groups, a larger overcollection degree.

Inputs:

* :class:`QuerySpec` — what to compute (a grouping-sets aggregate query
  or a K-Means clustering, over a target snapshot of cardinality ``C``);
* :class:`PrivacyParameters` — ``max_raw_per_edgelet`` drives the
  horizontal partitioning degree ``n``; ``separated_pairs`` drives the
  vertical column groups;
* :class:`ResiliencyParameters` — the fault presumption rate and target
  success probability drive the overcollection degree ``m`` (or the
  number of passive backups for the Backup strategy).

Output: a validated :class:`~repro.core.qep.QueryExecutionPlan` shaped
like Figure 3 of the paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

import networkx as nx

from repro.core.assignment import contributor_builder
from repro.core.overcollection import OvercollectionConfig
from repro.core.qep import Operator, OperatorRole, QueryExecutionPlan
from repro.core.resiliency import minimum_overcollection
from repro.query.groupby import GroupByQuery

__all__ = [
    "PlanningError",
    "QuerySpec",
    "PrivacyParameters",
    "ResiliencyParameters",
    "EdgeletPlanner",
]


class PlanningError(Exception):
    """Raised when no plan can satisfy the requested parameters."""


@dataclass(frozen=True)
class QuerySpec:
    """What the Querier wants computed.

    Attributes:
        query_id: unique identifier of the query execution.
        kind: ``"aggregate"`` (grouping-sets SQL) or ``"kmeans"``.
        group_by: the logical query (for ``aggregate``; for ``kmeans``
            an optional Group-By applied to the resulting clusters).
        snapshot_cardinality: target representative snapshot size ``C``.
        kmeans_k: number of clusters (``kmeans`` only).
        feature_columns: numeric columns clustered (``kmeans`` only).
        heartbeats: heartbeat count before the deadline (``kmeans``).
        engine: operator implementation the runtimes execute —
            ``"row"`` (dict-walking, the legacy default) or
            ``"columnar"`` (numpy column blocks,
            :mod:`repro.query.columnar`).  Both produce byte-identical
            reports; the knob trades per-row interpretation overhead
            for vectorized batches.
        placement_key: the identifier hashed into the secure routing
            and assignment digests; defaults to ``query_id``.  A
            standing query passes one key for every window so that —
            with an unchanged candidate pool — each contributor keeps
            its Snapshot Builder and each operator its device across
            windows (*sticky placement*, the substrate of incremental
            partition maintenance).  Still nothing an adversary can
            steer: the key is fixed before any window's candidate keys
            are known.
    """

    query_id: str
    kind: str
    snapshot_cardinality: int
    group_by: GroupByQuery | None = None
    kmeans_k: int = 3
    feature_columns: tuple[str, ...] = ()
    heartbeats: int = 5
    engine: str = "row"
    placement_key: str | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("aggregate", "kmeans"):
            raise ValueError(f"unknown query kind {self.kind!r}")
        if self.engine not in ("row", "columnar"):
            raise ValueError(f"unknown engine {self.engine!r}")
        if self.snapshot_cardinality <= 0:
            raise ValueError("snapshot_cardinality must be positive")
        if self.kind == "aggregate" and self.group_by is None:
            raise ValueError("aggregate queries need a group_by")
        if self.placement_key is not None and not self.placement_key:
            raise ValueError("placement_key must be non-empty when given")
        if self.kind == "kmeans":
            if not self.feature_columns:
                raise ValueError("kmeans queries need feature_columns")
            if self.kmeans_k <= 0:
                raise ValueError("kmeans_k must be positive")
            if self.heartbeats <= 0:
                raise ValueError("heartbeats must be positive")

    @property
    def effective_placement_key(self) -> str:
        """The key the routing/assignment digests hash."""
        return self.placement_key or self.query_id

    def collected_columns(self) -> list[str]:
        """Columns the Snapshot Builders must collect."""
        columns: set[str] = set()
        if self.group_by is not None:
            columns.update(self.group_by.input_columns())
        columns.update(self.feature_columns)
        return sorted(columns)


@dataclass(frozen=True)
class PrivacyParameters:
    """Privacy knobs of Part 1.

    Attributes:
        max_raw_per_edgelet: maximum number of raw tuples one Data
            Processor may hold — horizontal partitioning degree is
            ``n = ceil(C / max_raw_per_edgelet)``.
        separated_pairs: attribute pairs that must never co-reside in a
            single TEE (quasi-identifier separation).
    """

    max_raw_per_edgelet: int = 10_000
    separated_pairs: tuple[tuple[str, str], ...] = ()

    def __post_init__(self) -> None:
        if self.max_raw_per_edgelet <= 0:
            raise ValueError("max_raw_per_edgelet must be positive")
        for a, b in self.separated_pairs:
            if a == b:
                raise ValueError(f"cannot separate column {a!r} from itself")


@dataclass(frozen=True)
class ResiliencyParameters:
    """Resiliency knobs of Part 1.

    Attributes:
        fault_rate: presumed probability that one partition is lost.
        target_success: required probability that the query completes
            validly before its deadline.
        strategy: ``"overcollection"`` or ``"backup"``.
        backup_replicas: passive replicas per Data Processor (Backup
            strategy only).
    """

    fault_rate: float = 0.05
    target_success: float = 0.99
    strategy: str = "overcollection"
    backup_replicas: int = 1

    def __post_init__(self) -> None:
        if not 0 <= self.fault_rate < 1:
            raise ValueError("fault_rate must be in [0, 1)")
        if not 0 < self.target_success < 1:
            raise ValueError("target_success must be in (0, 1)")
        if self.strategy not in ("overcollection", "backup"):
            raise ValueError(f"unknown strategy {self.strategy!r}")
        if self.backup_replicas < 0:
            raise ValueError("backup_replicas must be non-negative")


class EdgeletPlanner:
    """Builds Figure-3-shaped plans from the three parameter blocks."""

    def __init__(
        self,
        privacy: PrivacyParameters | None = None,
        resiliency: ResiliencyParameters | None = None,
    ):
        self.privacy = privacy or PrivacyParameters()
        self.resiliency = resiliency or ResiliencyParameters()

    # -- public API ----------------------------------------------------------

    def plan(
        self, spec: QuerySpec, contributor_ids: list[str] | None = None,
        n_contributors: int = 0,
    ) -> QueryExecutionPlan:
        """Build and validate the QEP for ``spec``.

        ``contributor_ids`` names the contributing edgelets; when absent
        ``n_contributors`` placeholder leaves are generated (useful for
        plan-shape experiments without a device swarm).
        """
        contributors = self._contributor_ids(contributor_ids, n_contributors)
        n = self.horizontal_degree(spec)
        column_groups = self.vertical_groups(spec)
        if self.resiliency.strategy == "overcollection":
            m = minimum_overcollection(
                n, self.resiliency.fault_rate, self.resiliency.target_success
            )
            config = OvercollectionConfig(
                n=n, m=m, snapshot_cardinality=spec.snapshot_cardinality
            )
            plan = self._build_overcollection_plan(spec, contributors, config, column_groups)
        else:
            plan = self._build_backup_plan(spec, contributors, n, column_groups)
        plan.validate()
        return plan

    def horizontal_degree(self, spec: QuerySpec) -> int:
        """``n = ceil(C / max_raw_per_edgelet)``."""
        return max(1, math.ceil(spec.snapshot_cardinality / self.privacy.max_raw_per_edgelet))

    def vertical_groups(self, spec: QuerySpec) -> list[tuple[str, ...]]:
        """Partition the query's columns into co-residable groups.

        Grouping columns must accompany every aggregate, so a separation
        constraint touching a grouping column (or, for K-Means, any two
        feature columns) is unsatisfiable and raises
        :class:`PlanningError` with an explanation.

        Aggregate columns are split by greedy coloring of the conflict
        graph induced by ``separated_pairs``; columns without conflicts
        share group 0.
        """
        separated = {tuple(sorted(pair)) for pair in self.privacy.separated_pairs}
        if spec.kind == "kmeans":
            # the Computer needs the full feature vector, plus whatever
            # the optional Group-By-on-clusters round aggregates
            needed = set(spec.feature_columns)
            if spec.group_by is not None:
                needed.update(spec.group_by.input_columns())
            for a, b in separated:
                if a in needed and b in needed:
                    raise PlanningError(
                        f"cannot separate {a!r} from {b!r}: the K-Means "
                        "Computer needs both columns together"
                    )
            return [tuple(sorted(needed))]

        query = spec.group_by
        grouping_columns: set[str] = set()
        for grouping_set in query.grouping_sets:
            grouping_columns.update(grouping_set)
        aggregate_columns = sorted(
            {s.column for s in query.aggregates if s.column is not None}
        )
        for a, b in separated:
            if a in grouping_columns and b in grouping_columns:
                raise PlanningError(
                    f"cannot separate grouping columns {a!r} and {b!r}: both "
                    "must accompany every aggregate"
                )
            if (a in grouping_columns) != (b in grouping_columns):
                grouped = a if a in grouping_columns else b
                other = b if grouped == a else a
                if other in aggregate_columns or other in grouping_columns:
                    raise PlanningError(
                        f"cannot separate grouping column {grouped!r} from "
                        f"{other!r}: grouping columns reach every Computer"
                    )

        conflict = nx.Graph()
        conflict.add_nodes_from(aggregate_columns)
        for a, b in separated:
            if a in conflict and b in conflict:
                conflict.add_edge(a, b)
        coloring = nx.greedy_color(conflict, strategy="largest_first")
        n_colors = max(coloring.values(), default=0) + 1 if coloring else 1
        groups: list[set[str]] = [set() for _ in range(max(1, n_colors))]
        for column, color in sorted(coloring.items()):
            groups[color].add(column)
        ordered_grouping = tuple(sorted(grouping_columns))
        return [
            tuple(sorted(group | set(ordered_grouping)))
            for group in groups
            if group or len(groups) == 1
        ] or [ordered_grouping]

    # -- plan builders -----------------------------------------------------------

    def _contributor_ids(
        self, contributor_ids: list[str] | None, n_contributors: int
    ) -> list[str]:
        if contributor_ids:
            return list(contributor_ids)
        if n_contributors <= 0:
            raise PlanningError(
                "provide contributor_ids or a positive n_contributors"
            )
        return [f"contributor-{i:05d}" for i in range(n_contributors)]

    def _aggregates_for_group(
        self, query: GroupByQuery, group: tuple[str, ...]
    ) -> list[int]:
        """Indices of the query aggregates computable from ``group``.

        ``count(*)`` aggregates belong to the first group only (counting
        once is enough).
        """
        indices = []
        for index, spec in enumerate(query.aggregates):
            if spec.column is not None and spec.column in group:
                indices.append(index)
        return indices

    def _build_overcollection_plan(
        self,
        spec: QuerySpec,
        contributors: list[str],
        config: OvercollectionConfig,
        column_groups: list[tuple[str, ...]],
    ) -> QueryExecutionPlan:
        plan = QueryExecutionPlan(
            query_id=spec.query_id,
            metadata={
                "kind": spec.kind,
                "engine": spec.engine,
                "strategy": "overcollection",
                "overcollection": config.to_dict(),
                "column_groups": [list(group) for group in column_groups],
                "collected_columns": spec.collected_columns(),
                "fault_rate": self.resiliency.fault_rate,
                "target_success": self.resiliency.target_success,
                "heartbeats": spec.heartbeats if spec.kind == "kmeans" else None,
                "kmeans_k": spec.kmeans_k if spec.kind == "kmeans" else None,
                "group_by": spec.group_by.to_dict() if spec.group_by else None,
                "feature_columns": list(spec.feature_columns),
                "placement_key": spec.effective_placement_key,
            },
        )
        total = config.total_partitions
        builders = [
            plan.new_operator(
                OperatorRole.SNAPSHOT_BUILDER,
                params={"partition_index": i,
                        "partition_cardinality": config.partition_cardinality},
                op_id=f"builder[{i}]",
            )
            for i in range(total)
        ]
        builder_ids = [b.op_id for b in builders]
        for contributor in contributors:
            leaf = plan.new_operator(
                OperatorRole.DATA_CONTRIBUTOR,
                params={"device": contributor},
                op_id=f"contrib[{contributor}]",
            )
            target = contributor_builder(
                contributor, builder_ids, spec.effective_placement_key
            )
            plan.connect(leaf, target)

        combiner = plan.new_operator(
            OperatorRole.COMPUTING_COMBINER, op_id="combiner"
        )
        backup = plan.new_operator(
            OperatorRole.ACTIVE_BACKUP,
            params={"mirrors": combiner.op_id},
            op_id="combiner-backup",
        )
        querier = plan.new_operator(OperatorRole.QUERIER, op_id="querier")

        if spec.kind == "aggregate":
            query = spec.group_by
            for i in range(total):
                for g, group in enumerate(column_groups):
                    aggregate_indices = self._aggregates_for_group(query, group)
                    if g == 0:
                        aggregate_indices = sorted(
                            set(aggregate_indices)
                            | {
                                idx
                                for idx, agg in enumerate(query.aggregates)
                                if agg.column is None
                            }
                        )
                    computer = plan.new_operator(
                        OperatorRole.COMPUTER,
                        params={
                            "partition_index": i,
                            "group_index": g,
                            "column_group": list(group),
                            "aggregate_indices": aggregate_indices,
                        },
                        op_id=f"computer[{i},g{g}]",
                    )
                    plan.connect(builders[i], computer)
                    plan.connect(computer, combiner)
                    plan.connect(computer, backup)
        else:
            for i in range(total):
                computer = plan.new_operator(
                    OperatorRole.COMPUTER,
                    params={
                        "partition_index": i,
                        "group_index": 0,
                        "column_group": list(column_groups[0]),
                        "kmeans_k": spec.kmeans_k,
                    },
                    op_id=f"computer[{i},g0]",
                )
                plan.connect(builders[i], computer)
                plan.connect(computer, combiner)
                plan.connect(computer, backup)

        plan.connect(combiner, querier)
        plan.connect(backup, querier)
        return plan

    def _build_backup_plan(
        self,
        spec: QuerySpec,
        contributors: list[str],
        n: int,
        column_groups: list[tuple[str, ...]],
    ) -> QueryExecutionPlan:
        """Backup strategy: no overcollection, passive replicas instead.

        Each Data Processor operator gets ``backup_replicas`` standby
        operators carrying the same parameters plus a ``backup_rank``;
        the executor promotes them on primary failure.
        """
        replicas = self.resiliency.backup_replicas
        plan = QueryExecutionPlan(
            query_id=spec.query_id,
            metadata={
                "kind": spec.kind,
                "engine": spec.engine,
                "strategy": "backup",
                "backup_replicas": replicas,
                "overcollection": OvercollectionConfig(
                    n=n, m=0, snapshot_cardinality=spec.snapshot_cardinality
                ).to_dict(),
                "column_groups": [list(group) for group in column_groups],
                "collected_columns": spec.collected_columns(),
                "fault_rate": self.resiliency.fault_rate,
                "target_success": self.resiliency.target_success,
                "heartbeats": spec.heartbeats if spec.kind == "kmeans" else None,
                "kmeans_k": spec.kmeans_k if spec.kind == "kmeans" else None,
                "group_by": spec.group_by.to_dict() if spec.group_by else None,
                "feature_columns": list(spec.feature_columns),
                "placement_key": spec.effective_placement_key,
            },
        )
        builders = []
        for i in range(n):
            for rank in range(replicas + 1):
                suffix = "" if rank == 0 else f".b{rank}"
                builder = plan.new_operator(
                    OperatorRole.SNAPSHOT_BUILDER,
                    params={"partition_index": i, "backup_rank": rank},
                    op_id=f"builder[{i}]{suffix}",
                )
                if rank == 0:
                    builders.append(builder)
        primary_builder_ids = [b.op_id for b in builders]
        for contributor in contributors:
            leaf = plan.new_operator(
                OperatorRole.DATA_CONTRIBUTOR,
                params={"device": contributor},
                op_id=f"contrib[{contributor}]",
            )
            target = contributor_builder(
                contributor, primary_builder_ids, spec.effective_placement_key
            )
            plan.connect(leaf, target)
            for rank in range(1, replicas + 1):
                plan.connect(leaf, f"{target}.b{rank}")

        combiner = plan.new_operator(OperatorRole.COMPUTING_COMBINER, op_id="combiner")
        backup = plan.new_operator(
            OperatorRole.ACTIVE_BACKUP,
            params={"mirrors": combiner.op_id},
            op_id="combiner-backup",
        )
        querier = plan.new_operator(OperatorRole.QUERIER, op_id="querier")

        query = spec.group_by
        for i in range(n):
            for g, group in enumerate(column_groups):
                for rank in range(replicas + 1):
                    suffix = "" if rank == 0 else f".b{rank}"
                    params: dict[str, Any] = {
                        "partition_index": i,
                        "group_index": g,
                        "column_group": list(group),
                        "backup_rank": rank,
                    }
                    if spec.kind == "aggregate":
                        aggregate_indices = self._aggregates_for_group(query, group)
                        if g == 0:
                            aggregate_indices = sorted(
                                set(aggregate_indices)
                                | {
                                    idx
                                    for idx, agg in enumerate(query.aggregates)
                                    if agg.column is None
                                }
                            )
                        params["aggregate_indices"] = aggregate_indices
                    else:
                        params["kmeans_k"] = spec.kmeans_k
                    computer = plan.new_operator(
                        OperatorRole.COMPUTER, params=params,
                        op_id=f"computer[{i},g{g}]{suffix}",
                    )
                    for builder_rank in range(replicas + 1):
                        builder_suffix = "" if builder_rank == 0 else f".b{builder_rank}"
                        plan.connect(f"builder[{i}]{builder_suffix}", computer)
                    plan.connect(computer, combiner)
                    plan.connect(computer, backup)
        plan.connect(combiner, querier)
        plan.connect(backup, querier)
        return plan
