"""Resiliency mathematics of the Overcollection strategy.

Overcollection distributes a distributive operator over ``n + m``
edgelets, each processing one partition of cardinality ``C / n``.  The
query is *valid* as long as fewer than ``m`` partitions are lost, i.e.
at least ``n`` of the ``n + m`` survive.

Under the paper's fault presumption model, each partition independently
fails (device crash, disconnection past the deadline, lost messages)
with probability ``p``.  Survival of at least ``n`` partitions is a
binomial tail; the planner inverts it to find the smallest ``m``
achieving a target success probability.  These formulas drive the
demonstration's Part 1 ("vary the failure probability value … and
observe automatic changes in the execution plan").
"""

from __future__ import annotations

import math

__all__ = [
    "partition_survival_probability",
    "query_success_probability",
    "minimum_overcollection",
    "effective_fault_rate",
]


def partition_survival_probability(
    fault_rate: float, messages_per_partition: int = 1
) -> float:
    """Probability that one partition's whole pipeline survives.

    A partition survives only if every message on its path (contribution
    batch → Snapshot Builder → Computer → Combiner) gets through and the
    processing edgelets stay up.  With per-event fault probability
    ``fault_rate`` and ``messages_per_partition`` independent events,
    survival is ``(1 - fault_rate) ** messages_per_partition``.
    """
    if not 0 <= fault_rate <= 1:
        raise ValueError("fault_rate must be in [0, 1]")
    if messages_per_partition < 1:
        raise ValueError("messages_per_partition must be >= 1")
    return (1.0 - fault_rate) ** messages_per_partition


def query_success_probability(n: int, m: int, fault_rate: float) -> float:
    """P[at least n of n + m partitions survive], partitions i.i.d.

    This is the binomial survival function
    ``sum_{k=n}^{n+m} C(n+m, k) * s^k * (1-s)^(n+m-k)`` with
    ``s = 1 - fault_rate``.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if m < 0:
        raise ValueError("m must be non-negative")
    if not 0 <= fault_rate <= 1:
        raise ValueError("fault_rate must be in [0, 1]")
    survive = 1.0 - fault_rate
    total = n + m
    probability = 0.0
    for k in range(n, total + 1):
        try:
            probability += (
                math.comb(total, k) * survive**k * (1.0 - survive) ** (total - k)
            )
        except OverflowError:
            # C(total, k) exceeds float range for the large totals the
            # cost-based optimizer probes; the log-space term is exact
            # enough there and 0 when survive hits an endpoint
            if survive == 1.0:
                probability += 1.0 if k == total else 0.0
                continue
            if survive == 0.0:
                continue  # k >= n > 0 never matches the all-fail mass at k=0
            probability += math.exp(
                math.lgamma(total + 1)
                - math.lgamma(k + 1)
                - math.lgamma(total - k + 1)
                + k * math.log(survive)
                + (total - k) * math.log(1.0 - survive)
            )
    return min(probability, 1.0)


def minimum_overcollection(
    n: int,
    fault_rate: float,
    target_success: float = 0.99,
    max_m: int = 10_000,
) -> int:
    """Smallest ``m`` such that the query succeeds with probability at
    least ``target_success`` under the given fault rate.

    Raises ``ValueError`` if no ``m <= max_m`` reaches the target (e.g.
    ``fault_rate`` so high the target is unreachable).
    """
    if not 0 < target_success < 1:
        raise ValueError("target_success must be in (0, 1)")
    if not 0 <= fault_rate < 1:
        raise ValueError("fault_rate must be in [0, 1)")
    for m in range(max_m + 1):
        if query_success_probability(n, m, fault_rate) >= target_success:
            return m
    raise ValueError(
        f"no overcollection degree up to {max_m} reaches success "
        f"{target_success} with n={n}, fault_rate={fault_rate}"
    )


def effective_fault_rate(
    crash_probability_per_tick: float,
    disconnect_probability_per_tick: float,
    ticks_to_deadline: float,
    reconnect_covers: float = 0.5,
) -> float:
    """Fold a failure-injection context into one fault presumption rate.

    Per simulator tick a device crashes with ``crash_probability`` and
    disconnects with ``disconnect_probability``; a disconnection only
    loses the partition if the device stays offline across its send
    window, which ``reconnect_covers`` (the fraction of disconnections
    healed in time by store-and-forward) discounts.

    This is a presumption (the planner cannot observe the future) — the
    Q-RES experiment checks that plans built from it meet their target.
    """
    if ticks_to_deadline < 0:
        raise ValueError("ticks_to_deadline must be non-negative")
    if not 0 <= reconnect_covers <= 1:
        raise ValueError("reconnect_covers must be in [0, 1]")
    for name, probability in (
        ("crash_probability_per_tick", crash_probability_per_tick),
        ("disconnect_probability_per_tick", disconnect_probability_per_tick),
    ):
        if not 0 <= probability <= 1:
            raise ValueError(f"{name} must be in [0, 1]")
    survive_crashes = (1.0 - crash_probability_per_tick) ** ticks_to_deadline
    harmful_disconnect = disconnect_probability_per_tick * (1.0 - reconnect_covers)
    survive_disconnects = (1.0 - harmful_disconnect) ** ticks_to_deadline
    return 1.0 - survive_crashes * survive_disconnects
