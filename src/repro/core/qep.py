"""Query Execution Plans: the directed operator graph of Figure 2/3.

A :class:`QueryExecutionPlan` is a DAG whose vertices are operators
(Data Contributor, Snapshot Builder, Computer, Computing Combiner,
Active Backup, Querier) and whose edges carry the dataflow.  The plan is
the artifact the demonstration's Part 1 lets attendees inspect: how
horizontal/vertical partitioning and the overcollection degree reshape
it.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Iterable

import networkx as nx

__all__ = ["OperatorRole", "Operator", "QueryExecutionPlan", "PlanStructureError"]


class PlanStructureError(Exception):
    """Raised when a plan violates structural invariants."""


class OperatorRole(enum.Enum):
    """The operator vocabulary of Edgelet QEPs."""

    DATA_CONTRIBUTOR = "data_contributor"
    SNAPSHOT_BUILDER = "snapshot_builder"
    COMPUTER = "computer"
    COMPUTING_COMBINER = "computing_combiner"
    ACTIVE_BACKUP = "active_backup"
    QUERIER = "querier"

    @property
    def is_data_processor(self) -> bool:
        """Whether edgelets running this role process others' data."""
        return self in (
            OperatorRole.SNAPSHOT_BUILDER,
            OperatorRole.COMPUTER,
            OperatorRole.COMPUTING_COMBINER,
            OperatorRole.ACTIVE_BACKUP,
        )


@dataclass
class Operator:
    """One QEP vertex.

    Attributes:
        op_id: unique name inside the plan (e.g. ``computer[2,g0]``).
        role: the operator vocabulary entry.
        params: role-specific parameters — for a Computer, its
            horizontal ``partition_index`` and vertical ``column_group``;
            for a Snapshot Builder, the partition it builds; etc.
        assigned_to: device identifier once assignment has run.
    """

    op_id: str
    role: OperatorRole
    params: dict[str, Any] = field(default_factory=dict)
    assigned_to: str | None = None

    def describe(self) -> str:
        """Human-readable one-liner for traces."""
        target = f" @{self.assigned_to}" if self.assigned_to else ""
        return f"{self.op_id}<{self.role.value}>{target}"


class QueryExecutionPlan:
    """The operator DAG plus plan-level metadata.

    Metadata of interest to the experiments: the query id, the
    overcollection parameters ``(n, m)``, the vertical column groups,
    and the snapshot cardinality ``C``.
    """

    def __init__(self, query_id: str, metadata: dict[str, Any] | None = None):
        self.query_id = query_id
        self.metadata: dict[str, Any] = dict(metadata or {})
        self._graph = nx.DiGraph()
        self._counter = itertools.count(1)

    # -- construction ---------------------------------------------------------

    def add_operator(self, operator: Operator) -> Operator:
        """Add a vertex; op_ids must be unique."""
        if operator.op_id in self._graph:
            raise PlanStructureError(f"duplicate operator id {operator.op_id!r}")
        self._graph.add_node(operator.op_id, operator=operator)
        return operator

    def new_operator(
        self, role: OperatorRole, params: dict[str, Any] | None = None, op_id: str | None = None
    ) -> Operator:
        """Create, name, and add an operator in one step."""
        if op_id is None:
            op_id = f"{role.value}#{next(self._counter)}"
        operator = Operator(op_id=op_id, role=role, params=dict(params or {}))
        return self.add_operator(operator)

    def connect(self, producer: Operator | str, consumer: Operator | str) -> None:
        """Add a dataflow edge producer → consumer."""
        producer_id = producer.op_id if isinstance(producer, Operator) else producer
        consumer_id = consumer.op_id if isinstance(consumer, Operator) else consumer
        for op_id in (producer_id, consumer_id):
            if op_id not in self._graph:
                raise PlanStructureError(f"unknown operator {op_id!r}")
        self._graph.add_edge(producer_id, consumer_id)
        if not nx.is_directed_acyclic_graph(self._graph):
            self._graph.remove_edge(producer_id, consumer_id)
            raise PlanStructureError(
                f"edge {producer_id} -> {consumer_id} would create a cycle"
            )

    # -- queries ----------------------------------------------------------------

    def operator(self, op_id: str) -> Operator:
        """Look up an operator by id."""
        try:
            return self._graph.nodes[op_id]["operator"]
        except KeyError:
            raise PlanStructureError(f"unknown operator {op_id!r}") from None

    def operators(self, role: OperatorRole | None = None) -> list[Operator]:
        """All operators, optionally restricted to one role (sorted)."""
        result = [
            data["operator"]
            for _, data in self._graph.nodes(data=True)
            if role is None or data["operator"].role == role
        ]
        return sorted(result, key=lambda op: op.op_id)

    def producers_of(self, op_id: str) -> list[Operator]:
        """Upstream operators feeding ``op_id`` (sorted)."""
        return sorted(
            (self.operator(p) for p in self._graph.predecessors(op_id)),
            key=lambda op: op.op_id,
        )

    def consumers_of(self, op_id: str) -> list[Operator]:
        """Downstream operators fed by ``op_id`` (sorted)."""
        return sorted(
            (self.operator(s) for s in self._graph.successors(op_id)),
            key=lambda op: op.op_id,
        )

    def edges(self) -> list[tuple[str, str]]:
        """All dataflow edges (sorted)."""
        return sorted(self._graph.edges)

    def __len__(self) -> int:
        return self._graph.number_of_nodes()

    # -- structural metrics (Figure 2/3 observables) -----------------------------

    def role_counts(self) -> dict[str, int]:
        """Operator count per role (keys are role values)."""
        counts: dict[str, int] = {}
        for operator in self.operators():
            counts[operator.role.value] = counts.get(operator.role.value, 0) + 1
        return counts

    def fan_in(self, op_id: str) -> int:
        """Number of producers of an operator."""
        self.operator(op_id)
        return self._graph.in_degree(op_id)

    def fan_out(self, op_id: str) -> int:
        """Number of consumers of an operator."""
        self.operator(op_id)
        return self._graph.out_degree(op_id)

    def depth(self) -> int:
        """Length (in edges) of the longest dataflow path."""
        if self._graph.number_of_nodes() == 0:
            return 0
        return nx.dag_longest_path_length(self._graph)

    def assigned_devices(self) -> dict[str, str]:
        """Map op_id -> device for every assigned operator."""
        return {
            op.op_id: op.assigned_to
            for op in self.operators()
            if op.assigned_to is not None
        }

    def validate(self) -> None:
        """Check the structural invariants of an Edgelet QEP.

        * exactly one Querier, with no consumers;
        * at least one Data Contributor, each with no producers;
        * every non-Querier operator reaches the Querier;
        * Active Backups mirror a Computing Combiner's inputs.
        """
        queriers = self.operators(OperatorRole.QUERIER)
        if len(queriers) != 1:
            raise PlanStructureError(f"expected exactly 1 querier, found {len(queriers)}")
        querier = queriers[0]
        if self.fan_out(querier.op_id) != 0:
            raise PlanStructureError("the querier must be a sink")
        contributors = self.operators(OperatorRole.DATA_CONTRIBUTOR)
        if not contributors:
            raise PlanStructureError("a plan needs at least one data contributor")
        for contributor in contributors:
            if self.fan_in(contributor.op_id) != 0:
                raise PlanStructureError(
                    f"data contributor {contributor.op_id} must be a source"
                )
        reversed_graph = self._graph.reverse(copy=False)
        reachable = set(nx.descendants(reversed_graph, querier.op_id))
        reachable.add(querier.op_id)
        for operator in self.operators():
            if operator.op_id not in reachable:
                raise PlanStructureError(
                    f"operator {operator.op_id} cannot reach the querier"
                )
        for backup in self.operators(OperatorRole.ACTIVE_BACKUP):
            mirrored = backup.params.get("mirrors")
            if mirrored is None:
                raise PlanStructureError(
                    f"active backup {backup.op_id} lacks a 'mirrors' parameter"
                )
            combiner_inputs = {op.op_id for op in self.producers_of(mirrored)}
            backup_inputs = {op.op_id for op in self.producers_of(backup.op_id)}
            if combiner_inputs != backup_inputs:
                raise PlanStructureError(
                    f"active backup {backup.op_id} does not mirror the inputs "
                    f"of {mirrored}"
                )

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible representation (for traces and the web UI)."""
        return {
            "query_id": self.query_id,
            "metadata": dict(self.metadata),
            "operators": [
                {
                    "op_id": op.op_id,
                    "role": op.role.value,
                    "params": dict(op.params),
                    "assigned_to": op.assigned_to,
                }
                for op in self.operators()
            ],
            "edges": [list(edge) for edge in self.edges()],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "QueryExecutionPlan":
        """Inverse of :meth:`to_dict`."""
        plan = cls(query_id=data["query_id"], metadata=data.get("metadata"))
        for op_data in data["operators"]:
            operator = Operator(
                op_id=op_data["op_id"],
                role=OperatorRole(op_data["role"]),
                params=dict(op_data["params"]),
                assigned_to=op_data.get("assigned_to"),
            )
            plan.add_operator(operator)
        for producer_id, consumer_id in data["edges"]:
            plan.connect(producer_id, consumer_id)
        return plan
