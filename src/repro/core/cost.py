"""Energy and workload cost model.

The paper's introduction indicts the server-centric approach "in terms
of efficiency, privacy, and energy consumption", and Section 2.1 notes
that operator decomposition "can also help minimizing the workload
(e.g., when energy consumption matters)".  This module quantifies both
directions:

* :func:`estimate_plan_cost` — analytic pre-execution estimate of the
  messages, bytes, and compute work a plan will trigger (what the
  planner could minimize);
* :func:`measure_execution_cost` — post-execution per-device energy
  tally from the network's byte counters and the executor's tuple
  tallies, under a per-device-class :class:`EnergyModel`.

Defaults are order-of-magnitude radio/MCU figures (nRF-class radios at
~100 nJ/bit, Cortex-M work at ~1 µJ per abstract work unit) — absolute
joules are illustrative; *relative* costs between plans are the point.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.qep import OperatorRole, QueryExecutionPlan
from repro.network.opnet import OpportunisticNetwork

__all__ = [
    "EnergyModel",
    "PlanCostEstimate",
    "ExecutionCost",
    "estimate_plan_cost",
    "measure_execution_cost",
]


@dataclass(frozen=True)
class EnergyModel:
    """Per-device energy coefficients.

    Attributes:
        joules_per_byte_tx: radio transmit cost per byte.
        joules_per_byte_rx: radio receive cost per byte.
        joules_per_work_unit: compute cost per abstract work unit (the
            same unit :class:`~repro.devices.profiles.DeviceProfile`
            rates express).
    """

    joules_per_byte_tx: float = 8e-7
    joules_per_byte_rx: float = 6e-7
    joules_per_work_unit: float = 1e-6

    def __post_init__(self) -> None:
        for name in ("joules_per_byte_tx", "joules_per_byte_rx", "joules_per_work_unit"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")


@dataclass(frozen=True)
class PlanCostEstimate:
    """Analytic cost prediction for one plan.

    Attributes:
        messages: expected number of protocol messages.
        bytes: expected bytes on the air.
        work_units: expected total compute work (tuples touched).
        per_stage: breakdown by protocol stage.
    """

    messages: int
    bytes: int
    work_units: float
    per_stage: dict[str, int]

    def energy_joules(self, model: EnergyModel) -> float:
        """Total energy under ``model`` (tx + rx + compute)."""
        radio = self.bytes * (model.joules_per_byte_tx + model.joules_per_byte_rx)
        return radio + self.work_units * model.joules_per_work_unit


# Average payload sizes calibrated from the executor's size hints.
_CONTRIBUTION_BYTES = 96 * 2    # ~2 rows per owner
_PARTITION_BYTES_PER_ROW = 64
_PARTIAL_BYTES = 512
_KNOWLEDGE_BYTES = 512
_FINAL_BYTES = 1024


def estimate_plan_cost(plan: QueryExecutionPlan) -> PlanCostEstimate:
    """Predict the message/byte/compute cost of executing ``plan``.

    Covers both strategies: Overcollection plans count the heartbeat
    gossip for K-Means; Backup plans count the replica fan-out
    (contributions go to every rank).
    """
    contributors = len(plan.operators(OperatorRole.DATA_CONTRIBUTOR))
    builders = plan.operators(OperatorRole.SNAPSHOT_BUILDER)
    computers = plan.operators(OperatorRole.COMPUTER)
    overcollection = plan.metadata.get("overcollection") or {}
    cardinality = overcollection.get("snapshot_cardinality", 0)
    n = max(overcollection.get("n", 1), 1)
    per_partition = -(-cardinality // n)
    kind = plan.metadata.get("kind", "aggregate")
    heartbeats = plan.metadata.get("heartbeats") or 0
    replicas = plan.metadata.get("backup_replicas", 0)

    per_stage: dict[str, int] = {}
    # collection: every contributor ships to its builder (all ranks)
    contribution_fanout = 1 + (replicas if plan.metadata.get("strategy") == "backup" else 0)
    per_stage["contribution"] = contributors * contribution_fanout
    # partition shipping: each live builder feeds its computers
    builder_primaries = [
        b for b in builders if b.params.get("backup_rank", 0) == 0
    ]
    fanout = 0
    for builder in builder_primaries:
        fanout += sum(
            1 for consumer in plan.consumers_of(builder.op_id)
            if consumer.role == OperatorRole.COMPUTER
        )
    per_stage["partition"] = fanout
    # computation results / gossip
    computer_primaries = [
        c for c in computers if c.params.get("backup_rank", 0) == 0
    ]
    if kind == "kmeans" and heartbeats:
        gossip = len(computer_primaries) * (len(computer_primaries) - 1)
        per_stage["knowledge"] = gossip * max(heartbeats - 1, 0)
        per_stage["partial"] = len(computer_primaries) * 2  # combiner + backup
    else:
        per_stage["knowledge"] = 0
        per_stage["partial"] = len(computer_primaries) * 2
    per_stage["final"] = 2  # combiner + active backup to querier

    messages = sum(per_stage.values())
    total_bytes = (
        per_stage["contribution"] * _CONTRIBUTION_BYTES
        + per_stage["partition"] * per_partition * _PARTITION_BYTES_PER_ROW
        + per_stage["knowledge"] * _KNOWLEDGE_BYTES
        + per_stage["partial"] * _PARTIAL_BYTES
        + per_stage["final"] * _FINAL_BYTES
    )
    # compute: builders touch each partition once, computers once per
    # heartbeat (kmeans) or once (aggregates)
    builder_work = len(builder_primaries) * per_partition
    computer_rounds = max(heartbeats, 1) if kind == "kmeans" else 1
    computer_work = len(computer_primaries) * per_partition * computer_rounds
    return PlanCostEstimate(
        messages=messages,
        bytes=total_bytes,
        work_units=float(builder_work + computer_work),
        per_stage=per_stage,
    )


@dataclass(frozen=True)
class ExecutionCost:
    """Measured per-device energy of one execution.

    Attributes:
        per_device_joules: device_id -> joules spent (radio + compute).
        total_joules: sum over devices.
        max_device_joules: the worst single participant's bill — the
            fairness counterpart of crowd liability.
    """

    per_device_joules: dict[str, float]
    total_joules: float
    max_device_joules: float


def measure_execution_cost(
    network: OpportunisticNetwork,
    tuples_per_device: dict[str, int],
    model: EnergyModel | None = None,
) -> ExecutionCost:
    """Tally the energy actually spent, per device.

    Radio cost comes from the network's per-device byte counters;
    compute cost counts one work unit per raw tuple handled (the same
    unit the executor's latency model uses).
    """
    model = model or EnergyModel()
    per_device: dict[str, float] = {}
    for device_id, sent in network.stats.bytes_by_sender.items():
        per_device[device_id] = per_device.get(device_id, 0.0) + (
            sent * model.joules_per_byte_tx
        )
    for device_id, received in network.stats.bytes_by_recipient.items():
        per_device[device_id] = per_device.get(device_id, 0.0) + (
            received * model.joules_per_byte_rx
        )
    for device_id, tuples in tuples_per_device.items():
        per_device[device_id] = per_device.get(device_id, 0.0) + (
            tuples * model.joules_per_work_unit
        )
    total = sum(per_device.values())
    worst = max(per_device.values(), default=0.0)
    return ExecutionCost(
        per_device_joules=per_device,
        total_joules=total,
        max_device_joules=worst,
    )
