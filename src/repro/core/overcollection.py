"""Overcollection strategy configuration and validity accounting.

The Overcollection principle (Section 2.2, Figure 3): instead of
executing a distributive operator on single edgelets, distribute it over
``n + m`` edgelets, each processing one hash partition of the dataset,
where ``n`` is the minimum number of partitions to collect and ``m`` the
overcollection margin.  Validity holds as long as (1) each partition is
representative with cardinality ``C / n`` and (2) fewer than... at most
``m`` partitions are lost.

:class:`OvercollectionConfig` carries the parameters; the tally class
tracks which partitions actually arrived and decides completion,
scaling, and validity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

from repro.core.resiliency import minimum_overcollection, query_success_probability

__all__ = ["OvercollectionConfig", "PartitionTally"]


@dataclass(frozen=True)
class OvercollectionConfig:
    """Parameters of one overcollected operator.

    Attributes:
        n: minimum number of partitions that must be collected.
        m: overcollection degree (extra partitions).
        snapshot_cardinality: the target snapshot size ``C``; each
            partition holds ``C / n`` tuples.
    """

    n: int
    m: int
    snapshot_cardinality: int

    def __post_init__(self) -> None:
        if self.n <= 0:
            raise ValueError("n must be positive")
        if self.m < 0:
            raise ValueError("m must be non-negative")
        if self.snapshot_cardinality <= 0:
            raise ValueError("snapshot_cardinality must be positive")

    @property
    def total_partitions(self) -> int:
        """``n + m``."""
        return self.n + self.m

    @property
    def partition_cardinality(self) -> int:
        """Tuples per partition, ``ceil(C / n)``."""
        return math.ceil(self.snapshot_cardinality / self.n)

    def success_probability(self, fault_rate: float) -> float:
        """P[query valid] under an i.i.d. partition fault rate."""
        return query_success_probability(self.n, self.m, fault_rate)

    @classmethod
    def for_fault_rate(
        cls,
        n: int,
        snapshot_cardinality: int,
        fault_rate: float,
        target_success: float = 0.99,
    ) -> "OvercollectionConfig":
        """Choose the minimal ``m`` reaching ``target_success``."""
        m = minimum_overcollection(n, fault_rate, target_success)
        return cls(n=n, m=m, snapshot_cardinality=snapshot_cardinality)

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible representation (stored in plan metadata)."""
        return {
            "n": self.n,
            "m": self.m,
            "snapshot_cardinality": self.snapshot_cardinality,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "OvercollectionConfig":
        """Inverse of :meth:`to_dict`."""
        return cls(
            n=data["n"], m=data["m"], snapshot_cardinality=data["snapshot_cardinality"]
        )


@dataclass
class PartitionTally:
    """Tracks partition arrivals at a Combiner (or Active Backup).

    Attributes:
        config: the overcollection parameters.
        received: indices of partitions whose partial results arrived.
    """

    config: OvercollectionConfig
    received: set[int] = field(default_factory=set)

    def record(self, partition_index: int) -> None:
        """Mark a partition's partial result as received (idempotent)."""
        if not 0 <= partition_index < self.config.total_partitions:
            raise ValueError(
                f"partition index {partition_index} outside "
                f"[0, {self.config.total_partitions})"
            )
        self.received.add(partition_index)

    @property
    def received_count(self) -> int:
        """Distinct partitions received so far."""
        return len(self.received)

    @property
    def lost_count(self) -> int:
        """Partitions still missing."""
        return self.config.total_partitions - self.received_count

    def is_complete(self) -> bool:
        """Whether the minimum ``n`` partitions have arrived."""
        return self.received_count >= self.config.n

    def is_valid(self) -> bool:
        """Validity condition (2): at most ``m`` partitions lost."""
        return self.lost_count <= self.config.m

    def scaling_factor(self) -> float:
        """Extrapolation factor for count/sum aggregates.

        Partitions are representative hash samples, so when only
        ``r <= n + m`` arrived, multiplying counts by ``(n + m) / r``
        yields unbiased totals over the full snapshot.
        """
        if self.received_count == 0:
            raise ValueError("cannot scale with zero received partitions")
        return self.config.total_partitions / self.received_count

    def summary(self) -> dict[str, Any]:
        """Stats line for traces and experiment tables."""
        return {
            "n": self.config.n,
            "m": self.config.m,
            "received": self.received_count,
            "lost": self.lost_count,
            "complete": self.is_complete(),
            "valid": self.is_valid(),
        }
