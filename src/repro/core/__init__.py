"""Edgelet computing core — the paper's primary contribution.

This package implements the Edgelet data-management paradigm:
fully decentralized query computation over TEE-enabled personal devices
with three guaranteed properties:

* **Resiliency** — a query completes before a given deadline under a
  given fault presumption rate (:mod:`repro.core.resiliency`,
  :mod:`repro.core.overcollection`, :mod:`repro.core.backup`);
* **Validity** — the result is equivalent to a centralized execution
  (:mod:`repro.core.validity`);
* **Crowd Liability** — processing responsibility is spread evenly over
  the participants (:mod:`repro.core.liability`).

Plans are Query Execution Plans (:mod:`repro.core.qep`) produced by the
privacy- and resiliency-aware planner (:mod:`repro.core.planner`),
assigned to concrete edgelets by hashing public keys
(:mod:`repro.core.assignment`), and executed over the opportunistic
network by the per-role runtimes of :mod:`repro.core.runtime`
(coordinated by :class:`repro.core.runtime.ExecutionCoordinator`; the
legacy :mod:`repro.core.execution` module remains as a deprecated
shim).
"""

from repro.core.advisor import QueryProperties, StrategyRecommendation, recommend_strategy
from repro.core.cost import EnergyModel, estimate_plan_cost, measure_execution_cost
from repro.core.representativeness import RepresentativenessReport, check_representative
from repro.core.qep import Operator, OperatorRole, QueryExecutionPlan
from repro.core.resiliency import (
    minimum_overcollection,
    partition_survival_probability,
    query_success_probability,
)
from repro.core.overcollection import OvercollectionConfig
from repro.core.planner import (
    EdgeletPlanner,
    PlanningError,
    PrivacyParameters,
    QuerySpec,
    ResiliencyParameters,
)
from repro.core.assignment import SecureAssignment, assign_operators, contributor_builder
from repro.core.privacy import ExposureReport, measure_exposure
from repro.core.liability import LiabilityReport, gini_coefficient, measure_liability
from repro.core.validity import ValidityReport, compare_results
from repro.core.backup import BackupConfig, BackupChain
from repro.core.runtime import (
    BackupStrategy,
    ExecutionCoordinator,
    ExecutionReport,
    OvercollectionStrategy,
    StrategyRuntime,
    infer_strategy,
)
from repro.core.backup_execution import BackupExecutor
from repro.core.execution import EdgeletExecutor

__all__ = [
    "BackupChain",
    "BackupConfig",
    "BackupExecutor",
    "BackupStrategy",
    "EdgeletExecutor",
    "ExecutionCoordinator",
    "EnergyModel",
    "EdgeletPlanner",
    "ExecutionReport",
    "ExposureReport",
    "LiabilityReport",
    "Operator",
    "QueryProperties",
    "OperatorRole",
    "OvercollectionConfig",
    "OvercollectionStrategy",
    "PlanningError",
    "PrivacyParameters",
    "QueryExecutionPlan",
    "RepresentativenessReport",
    "QuerySpec",
    "ResiliencyParameters",
    "SecureAssignment",
    "StrategyRecommendation",
    "StrategyRuntime",
    "ValidityReport",
    "assign_operators",
    "check_representative",
    "compare_results",
    "contributor_builder",
    "estimate_plan_cost",
    "gini_coefficient",
    "infer_strategy",
    "measure_exposure",
    "measure_execution_cost",
    "measure_liability",
    "minimum_overcollection",
    "recommend_strategy",
    "partition_survival_probability",
    "query_success_probability",
]
