"""The Backup resiliency strategy.

Where Overcollection spends extra *data partitions*, Backup spends extra
*devices*: each Data Processor operator has an ordered chain of passive
replicas holding its checkpointed input.  If the primary misses its
deadline (crash or disconnection), the next replica in line takes over
and re-executes from the checkpoint.  The price is latency — promotions
happen sequentially after timeouts — and complexity; the benefit is that
it works for *non-distributive* processing, where Overcollection does
not apply (Section 3.3, "Can any form of computation be handled?").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["BackupConfig", "BackupChain", "PromotionRecord"]


@dataclass(frozen=True)
class BackupConfig:
    """Parameters of the Backup strategy.

    Attributes:
        replicas: number of passive replicas per Data Processor.
        takeover_timeout: virtual seconds a replica waits for proof of
            life from its predecessor before promoting itself.
    """

    replicas: int = 1
    takeover_timeout: float = 30.0

    def __post_init__(self) -> None:
        if self.replicas < 0:
            raise ValueError("replicas must be non-negative")
        if self.takeover_timeout <= 0:
            raise ValueError("takeover_timeout must be positive")

    def worst_case_delay(self) -> float:
        """Extra latency if every replica in the chain must promote."""
        return self.replicas * self.takeover_timeout


@dataclass(frozen=True)
class PromotionRecord:
    """One recorded takeover (for traces and the Q-GEN bench)."""

    time: float
    operator_id: str
    from_rank: int
    to_rank: int


@dataclass
class BackupChain:
    """State machine of one operator's primary + replicas.

    The chain tracks which rank is currently *active*, the checkpointed
    input state each replica holds, and the promotion history.  It is
    driven by the executor: :meth:`checkpoint` when input arrives,
    :meth:`report_failure` when the active rank is observed dead or the
    takeover timeout elapses.
    """

    operator_id: str
    config: BackupConfig
    device_by_rank: dict[int, str] = field(default_factory=dict)
    active_rank: int = 0
    checkpoints: dict[int, Any] = field(default_factory=dict)
    promotions: list[PromotionRecord] = field(default_factory=list)
    exhausted: bool = False

    def register(self, rank: int, device_id: str) -> None:
        """Bind one rank of the chain to a device."""
        if rank < 0 or rank > self.config.replicas:
            raise ValueError(
                f"rank {rank} outside [0, {self.config.replicas}]"
            )
        self.device_by_rank[rank] = device_id

    @property
    def active_device(self) -> str | None:
        """Device currently responsible for the operator."""
        if self.exhausted:
            return None
        return self.device_by_rank.get(self.active_rank)

    def checkpoint(self, state: Any) -> None:
        """Replicate the operator's input state to every standby rank."""
        for rank in range(self.config.replicas + 1):
            self.checkpoints[rank] = state

    def checkpoint_for(self, rank: int) -> Any:
        """The state a given rank would resume from."""
        return self.checkpoints.get(rank)

    def report_failure(self, time: float) -> str | None:
        """Promote the next replica; returns its device or ``None``.

        ``None`` means the chain is exhausted — the operator (and with
        it the query, under strict Backup semantics) has failed.
        """
        if self.exhausted:
            return None
        next_rank = self.active_rank + 1
        if next_rank > self.config.replicas or next_rank not in self.device_by_rank:
            self.exhausted = True
            return None
        self.promotions.append(
            PromotionRecord(
                time=time,
                operator_id=self.operator_id,
                from_rank=self.active_rank,
                to_rank=next_rank,
            )
        )
        self.active_rank = next_rank
        return self.device_by_rank[next_rank]

    def promotion_count(self) -> int:
        """How many takeovers happened."""
        return len(self.promotions)
