"""Secure assignment of operators to edgelets.

"A secure assignment of these operators is then essential to avoid any
targeted attacks" (Section 2.1).  The danger is an adversary steering a
chosen operator (say, the Snapshot Builder that will see a victim's
data) onto a device it controls.  The defense is determinism nobody
controls: assignments derive from hashing participants' *public keys*
together with the query identifier, so they are verifiable by everyone
and predictable by no one who cannot choose keys after seeing the query.

Two assignments matter:

* :func:`contributor_builder` — which Snapshot Builder a Data
  Contributor sends to (Figure 2: "by hashing their public key");
* :func:`assign_operators` — which processing edgelet runs each Data
  Processor operator of the plan.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.core.qep import OperatorRole, QueryExecutionPlan

__all__ = ["SecureAssignment", "assign_operators", "contributor_builder", "AssignmentError"]


class AssignmentError(Exception):
    """Raised when there are not enough distinct processors to assign."""


def _digest(*parts: str) -> int:
    payload = "|".join(parts).encode("utf-8")
    return int.from_bytes(hashlib.sha256(payload).digest()[:8], "big")


def contributor_builder(
    contributor_fingerprint: str, builder_ids: list[str], query_id: str
) -> str:
    """Deterministically route a contributor to one Snapshot Builder.

    The bucket is ``H(fingerprint | query_id) mod len(builders)`` over
    the *sorted* builder list, so every participant computes the same
    routing without coordination.
    """
    if not builder_ids:
        raise AssignmentError("no snapshot builders to route to")
    ordered = sorted(builder_ids)
    index = _digest(contributor_fingerprint, query_id) % len(ordered)
    return ordered[index]


@dataclass
class SecureAssignment:
    """The outcome of operator assignment.

    Attributes:
        query_id: the assigned query.
        operator_to_device: op_id -> device fingerprint/id.
        device_load: device -> number of operators it runs.
    """

    query_id: str
    operator_to_device: dict[str, str] = field(default_factory=dict)

    @property
    def device_load(self) -> dict[str, int]:
        """How many operators each device runs."""
        load: dict[str, int] = {}
        for device in self.operator_to_device.values():
            load[device] = load.get(device, 0) + 1
        return load

    def devices(self) -> list[str]:
        """All devices used by this assignment (sorted)."""
        return sorted(set(self.operator_to_device.values()))


def assign_operators(
    plan: QueryExecutionPlan,
    processor_ids: list[str],
    exclusive: bool = True,
) -> SecureAssignment:
    """Assign every Data Processor operator of ``plan`` to a device.

    Candidates are ranked per operator by
    ``H(device | placement_key | op_id)``; the best-ranked *free* device
    wins.  With ``exclusive=True`` (the default, matching the paper's
    crowd-liability goal) a device runs at most one operator; the
    function raises :class:`AssignmentError` when processors run out.

    The placement key defaults to the query id; a standing query plans
    every window with one fixed key (``QuerySpec.placement_key``) so an
    unchanged candidate pool re-derives an unchanged assignment —
    sticky placement, without which incremental partition maintenance
    would re-ship every contribution to a freshly-hashed builder each
    window.

    The assignment is written into ``operator.assigned_to`` and also
    returned as a :class:`SecureAssignment`.
    """
    processors = sorted(set(processor_ids))
    if not processors:
        raise AssignmentError("no processing edgelets available")
    placement_key = plan.metadata.get("placement_key") or plan.query_id
    assignment = SecureAssignment(query_id=plan.query_id)
    taken: set[str] = set()
    data_processors = [
        operator for operator in plan.operators() if operator.role.is_data_processor
    ]
    if exclusive and len(data_processors) > len(processors):
        raise AssignmentError(
            f"{len(data_processors)} data processors but only "
            f"{len(processors)} candidate edgelets"
        )
    for operator in data_processors:
        ranked = sorted(
            processors,
            key=lambda device: _digest(device, placement_key, operator.op_id),
        )
        chosen = None
        for device in ranked:
            if not exclusive or device not in taken:
                chosen = device
                break
        if chosen is None:
            raise AssignmentError(
                f"no free edgelet left for operator {operator.op_id}"
            )
        taken.add(chosen)
        operator.assigned_to = chosen
        assignment.operator_to_device[operator.op_id] = chosen
    return assignment
