"""Statistical representativeness checks for partitions.

Overcollection's validity condition (1) — Section 2.2 — requires that
"each of the n+m partitions is representative and has a cardinality
C/n".  Hash partitioning gives representativeness *in expectation*; this
module tests it *in fact*, so a Snapshot Builder (or an auditor) can
flag a partition whose distribution deviates from the snapshot's —
whether by hash misfortune or by a poisoning attempt.

Per column:

* numeric columns — two-sample Kolmogorov-Smirnov test;
* text/bool columns — chi-square test on category frequencies.

A partition is judged representative when no column rejects at the
(Bonferroni-corrected) significance level.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from scipy import stats

from repro.query.schema import ColumnType, Schema

__all__ = ["ColumnCheck", "RepresentativenessReport", "check_representative"]


@dataclass(frozen=True)
class ColumnCheck:
    """Outcome of one column's distribution test.

    Attributes:
        column: tested column name.
        test: ``"ks"`` or ``"chi2"`` (or ``"skipped"`` for empty data).
        p_value: the test's p-value (1.0 when skipped).
        rejected: whether the null (same distribution) was rejected at
            the corrected level.
    """

    column: str
    test: str
    p_value: float
    rejected: bool


@dataclass(frozen=True)
class RepresentativenessReport:
    """Aggregated verdict over all tested columns."""

    checks: tuple[ColumnCheck, ...]
    alpha: float

    @property
    def representative(self) -> bool:
        """True when no column rejected."""
        return not any(check.rejected for check in self.checks)

    def rejected_columns(self) -> list[str]:
        """Columns whose distribution deviates."""
        return [check.column for check in self.checks if check.rejected]


def _values(rows: list[dict[str, Any]], column: str) -> list[Any]:
    return [row[column] for row in rows if row.get(column) is not None]


def _ks_check(
    column: str, sample: list[float], reference: list[float], level: float
) -> ColumnCheck:
    if len(sample) < 5 or len(reference) < 5:
        return ColumnCheck(column, "skipped", 1.0, False)
    result = stats.ks_2samp(sample, reference)
    return ColumnCheck(column, "ks", float(result.pvalue), result.pvalue < level)


def _chi2_check(
    column: str, sample: list[Any], reference: list[Any], level: float
) -> ColumnCheck:
    if len(sample) < 5 or len(reference) < 5:
        return ColumnCheck(column, "skipped", 1.0, False)
    categories = sorted({*sample, *reference}, key=repr)
    sample_counts = [sum(1 for v in sample if v == c) for c in categories]
    reference_counts = [sum(1 for v in reference if v == c) for c in categories]
    # drop categories empty in both (cannot happen) / tiny expected cells
    table = [
        (s, r) for s, r in zip(sample_counts, reference_counts) if s + r > 0
    ]
    if len(table) < 2:
        return ColumnCheck(column, "skipped", 1.0, False)
    contingency = list(zip(*table))
    result = stats.chi2_contingency(contingency)
    return ColumnCheck(column, "chi2", float(result.pvalue), result.pvalue < level)


def check_representative(
    partition_rows: list[dict[str, Any]],
    reference_rows: list[dict[str, Any]],
    schema: Schema,
    columns: list[str] | None = None,
    alpha: float = 0.01,
) -> RepresentativenessReport:
    """Test whether a partition's distribution matches the reference.

    ``columns`` restricts the test (default: every schema column present
    in the reference).  ``alpha`` is the family-wise significance level;
    each column is tested at ``alpha / n_columns`` (Bonferroni).
    """
    if not 0 < alpha < 1:
        raise ValueError("alpha must be in (0, 1)")
    names = columns if columns is not None else schema.column_names
    names = [name for name in names if schema.has_column(name)]
    if not names:
        raise ValueError("no testable columns")
    level = alpha / len(names)
    checks: list[ColumnCheck] = []
    for name in names:
        ctype = schema.column(name).ctype
        sample = _values(partition_rows, name)
        reference = _values(reference_rows, name)
        if ctype in (ColumnType.INT, ColumnType.FLOAT):
            checks.append(_ks_check(name, sample, reference, level))
        else:
            checks.append(_chi2_check(name, sample, reference, level))
    return RepresentativenessReport(checks=tuple(checks), alpha=alpha)
