"""Crowd liability accounting.

Edgelet computing shifts liability from a single data controller to the
crowd of participants: "the liability of the processing is equally
distributed among all query participants".  This module quantifies that
distribution for a plan/execution: how much processing (operators run,
raw tuples handled) each participant carried, and how even the spread is
(Gini coefficient, max share).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

from repro.core.qep import OperatorRole, QueryExecutionPlan

__all__ = ["LiabilityReport", "gini_coefficient", "measure_liability"]


def gini_coefficient(values: Iterable[float]) -> float:
    """Gini coefficient of a non-negative distribution.

    0.0 means perfectly even (ideal crowd liability), values toward 1.0
    mean one participant concentrates the processing.  Empty or all-zero
    input yields 0.0.
    """
    data = sorted(float(v) for v in values)
    if any(v < 0 for v in data):
        raise ValueError("liability shares must be non-negative")
    n = len(data)
    total = sum(data)
    if n == 0 or total == 0.0:
        return 0.0
    cumulative_rank_sum = sum((i + 1) * value for i, value in enumerate(data))
    return (2.0 * cumulative_rank_sum) / (n * total) - (n + 1) / n


@dataclass(frozen=True)
class LiabilityReport:
    """Distribution of processing liability over participants.

    Attributes:
        operators_per_device: data-processor operators run per device.
        tuples_per_device: raw tuples handled per device (``None`` when
            no execution-level tally was provided).
        gini_operators: Gini coefficient of the operator distribution.
        max_share: largest single-device fraction of total operators.
    """

    operators_per_device: dict[str, int]
    tuples_per_device: dict[str, int] | None
    gini_operators: float
    max_share: float

    def is_crowd_liable(self, max_allowed_share: float = 0.2) -> bool:
        """Whether no participant exceeds ``max_allowed_share``."""
        if not 0 < max_allowed_share <= 1:
            raise ValueError("max_allowed_share must be in (0, 1]")
        return self.max_share <= max_allowed_share

    def summary(self) -> dict[str, Any]:
        """Stats line for experiment tables."""
        return {
            "participants": len(self.operators_per_device),
            "gini_operators": self.gini_operators,
            "max_share": self.max_share,
        }


def measure_liability(
    plan: QueryExecutionPlan,
    tuples_per_device: dict[str, int] | None = None,
) -> LiabilityReport:
    """Measure how evenly a plan spreads processing over devices.

    The plan must already be assigned (``assigned_to`` set on every
    data-processor operator); unassigned plans raise ``ValueError``.
    """
    operators_per_device: dict[str, int] = {}
    for operator in plan.operators():
        if not operator.role.is_data_processor:
            continue
        if operator.assigned_to is None:
            raise ValueError(f"operator {operator.op_id} is not assigned")
        device = operator.assigned_to
        operators_per_device[device] = operators_per_device.get(device, 0) + 1
    total = sum(operators_per_device.values())
    max_share = (
        max(operators_per_device.values()) / total if total else 0.0
    )
    return LiabilityReport(
        operators_per_device=operators_per_device,
        tuples_per_device=dict(tuples_per_device) if tuples_per_device else None,
        gini_operators=gini_coefficient(operators_per_device.values()),
        max_share=max_share,
    )
