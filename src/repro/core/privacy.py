"""Privacy exposure metrics under the sealed-glass threat model.

Side-channel attacks can degrade a TEE to "sealed glass": integrity
survives but everything processed in cleartext becomes visible.  The
paper's counter-measures are the two partitionings:

* **horizontal** — each Data Processor sees only ``C / n`` of the
  snapshot, bounding how many individuals one compromised TEE exposes;
* **vertical** — separated attribute pairs (quasi-identifier
  combinations) never co-reside in one TEE, so no single compromise
  yields a linkable record.

:func:`measure_exposure` computes both bounds for a plan, and
:func:`observed_exposure` cross-checks them against what a
:class:`~repro.devices.tee.SealedGlassObserver` actually recorded during
an execution — the plan-level bound must dominate the observation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import Any

from repro.core.qep import OperatorRole, QueryExecutionPlan
from repro.devices.tee import SealedGlassObserver

__all__ = ["ExposureReport", "measure_exposure", "observed_exposure"]


@dataclass(frozen=True)
class ExposureReport:
    """Plan-level privacy exposure bounds.

    Attributes:
        max_raw_tuples_per_edgelet: worst-case number of raw tuples a
            single compromised Data Processor TEE can expose.
        exposure_fraction: that worst case as a fraction of the snapshot
            cardinality ``C``.
        column_groups: the vertical column groups of the plan.
        co_exposed_pairs: unordered column pairs that co-reside in at
            least one TEE.
        separated_pairs: the pairs the scenario asked to separate.
        separation_respected: whether no separated pair is co-exposed.
    """

    max_raw_tuples_per_edgelet: int
    exposure_fraction: float
    column_groups: tuple[tuple[str, ...], ...]
    co_exposed_pairs: frozenset[tuple[str, str]]
    separated_pairs: frozenset[tuple[str, str]]
    separation_respected: bool

    def summary(self) -> dict[str, Any]:
        """Stats line for experiment tables."""
        return {
            "max_raw_tuples_per_edgelet": self.max_raw_tuples_per_edgelet,
            "exposure_fraction": self.exposure_fraction,
            "n_column_groups": len(self.column_groups),
            "n_co_exposed_pairs": len(self.co_exposed_pairs),
            "separation_respected": self.separation_respected,
        }


def _normalize_pair(a: str, b: str) -> tuple[str, str]:
    return (a, b) if a <= b else (b, a)


def measure_exposure(
    plan: QueryExecutionPlan,
    separated_pairs: list[tuple[str, str]] | None = None,
) -> ExposureReport:
    """Compute the exposure bounds of a plan.

    Reads the plan metadata written by the planner: the overcollection
    config (for per-partition cardinality) and each Computer's
    ``column_group`` parameter (for co-residence).
    """
    overcollection = plan.metadata.get("overcollection")
    if overcollection is None:
        raise ValueError("plan metadata lacks 'overcollection'")
    n = overcollection["n"]
    cardinality = overcollection["snapshot_cardinality"]
    per_partition = -(-cardinality // n)  # ceil division

    # Snapshot builders see a whole partition across all columns; with
    # vertical partitioning, computers see one column group of it.  The
    # worst single-TEE raw exposure is therefore the builder's.
    builders = plan.operators(OperatorRole.SNAPSHOT_BUILDER)
    max_tuples = per_partition if builders else cardinality

    column_groups: list[tuple[str, ...]] = []
    seen_groups: set[tuple[str, ...]] = set()
    for computer in plan.operators(OperatorRole.COMPUTER):
        group = tuple(computer.params.get("column_group", ()))
        if group and group not in seen_groups:
            seen_groups.add(group)
            column_groups.append(group)

    co_exposed: set[tuple[str, str]] = set()
    for group in column_groups:
        for a, b in combinations(sorted(set(group)), 2):
            co_exposed.add(_normalize_pair(a, b))
    # The snapshot builder itself co-exposes whatever columns it collects.
    builder_columns = plan.metadata.get("collected_columns", [])
    for a, b in combinations(sorted(set(builder_columns)), 2):
        co_exposed.add(_normalize_pair(a, b))

    separated = frozenset(
        _normalize_pair(a, b) for a, b in (separated_pairs or [])
    )
    respected = not (separated & co_exposed)
    return ExposureReport(
        max_raw_tuples_per_edgelet=max_tuples,
        exposure_fraction=max_tuples / cardinality if cardinality else 0.0,
        column_groups=tuple(column_groups),
        co_exposed_pairs=frozenset(co_exposed),
        separated_pairs=separated,
        separation_respected=respected,
    )


@dataclass(frozen=True)
class ObservedExposure:
    """What a sealed-glass adversary actually saw during an execution."""

    tuples_per_tee: dict[str, int]
    columns_per_tee: dict[str, frozenset[str]]

    @property
    def max_tuples(self) -> int:
        """Largest per-TEE raw tuple exposure observed."""
        return max(self.tuples_per_tee.values(), default=0)

    def co_exposed_pairs(self) -> frozenset[tuple[str, str]]:
        """Column pairs observed together inside at least one TEE."""
        pairs: set[tuple[str, str]] = set()
        for columns in self.columns_per_tee.values():
            for a, b in combinations(sorted(columns), 2):
                pairs.add(_normalize_pair(a, b))
        return frozenset(pairs)


def observed_exposure(observer: SealedGlassObserver) -> ObservedExposure:
    """Summarize a sealed-glass observer's record.

    Only dict-shaped items (rows) count as raw-tuple exposure; the
    aggregated payloads exchanged between operators are dicts of states,
    which we classify by the marker key ``"__aggregate__"`` that the
    executor stamps on non-raw payloads.
    """
    tuples_per_tee: dict[str, int] = {}
    columns_per_tee: dict[str, set[str]] = {}
    for tee_id in observer.exposed_tees():
        count = 0
        columns: set[str] = set()
        for item in observer.exposed_items(tee_id):
            if isinstance(item, dict) and "__aggregate__" not in item:
                count += 1
                columns.update(k for k, v in item.items() if v is not None)
        tuples_per_tee[tee_id] = count
        columns_per_tee[tee_id] = columns
    return ObservedExposure(
        tuples_per_tee=tuples_per_tee,
        columns_per_tee={k: frozenset(v) for k, v in columns_per_tee.items()},
    )
