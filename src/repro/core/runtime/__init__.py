"""Per-role operator runtimes and the execution coordinator.

The legacy ``EdgeletExecutor`` god-class is decomposed into one small
runtime per :class:`repro.core.qep.OperatorRole` plus a pluggable
resiliency strategy:

========================  ==============================================
module                    owns
========================  ==============================================
:mod:`.context`           shared clock/network/plan state and services
:mod:`.contributor`       jittered contribution scheduling
:mod:`.builder`           snapshot intake, freeze, commit, ship
:mod:`.computer`          aggregate folding and K-Means heartbeats
:mod:`.combiner`          partial/knowledge merge algebra and finalize
:mod:`.querier`           final-result dedup and report assembly
:mod:`.strategy`          Overcollection / Backup resiliency policies
:mod:`.recovery`          phase watchdogs and standby reprovisioning
:mod:`.incremental`       cross-window contribution cache (delta stamps)
:mod:`.coordinator`       routing, dedup, phase timers, run horizon
========================  ==============================================

``repro.core.execution`` and ``repro.core.backup_execution`` remain as
deprecated thin shims over :class:`ExecutionCoordinator`.
"""

from repro.core.runtime.builder import BuilderRuntime, commit_snapshot, ship_partition
from repro.core.runtime.combiner import CombinerRuntime, CombinerState, stitch_groups
from repro.core.runtime.computer import ComputerRuntime
from repro.core.runtime.context import ExecutionContext
from repro.core.runtime.contributor import ContributorRuntime
from repro.core.runtime.coordinator import ExecutionCoordinator, infer_strategy
from repro.core.runtime.incremental import STAMP_BYTES, ContributionCache
from repro.core.runtime.querier import QuerierRuntime
from repro.core.runtime.recovery import RecoveryConfig, RecoveryRuntime
from repro.core.runtime.report import ExecutionError, ExecutionReport, KMeansOutcome
from repro.core.runtime.strategy import (
    BackupStrategy,
    OvercollectionStrategy,
    StrategyRuntime,
)

__all__ = [
    "BackupStrategy",
    "BuilderRuntime",
    "CombinerRuntime",
    "CombinerState",
    "ComputerRuntime",
    "ContributionCache",
    "ContributorRuntime",
    "ExecutionContext",
    "ExecutionCoordinator",
    "ExecutionError",
    "ExecutionReport",
    "KMeansOutcome",
    "OvercollectionStrategy",
    "QuerierRuntime",
    "RecoveryConfig",
    "RecoveryRuntime",
    "STAMP_BYTES",
    "StrategyRuntime",
    "commit_snapshot",
    "infer_strategy",
    "ship_partition",
    "stitch_groups",
]
