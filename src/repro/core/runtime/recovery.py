"""Query-level recovery: phase watchdogs and participant reprovisioning.

The reliability transport (:mod:`repro.network.reliable`) hardens
individual message deliveries; this module hardens the *query*.  A
:class:`RecoveryRuntime` arms watchdog timers over the computation
phase (each Fig. 2 phase already has a boundary on the virtual clock —
``collect_end`` and ``deadline_at``; the watchdog adds an intermediate
computation-phase deadline).  When a check finds a (partition, group)
cell whose partial never reached any live combiner and whose assigned
Computer is unreachable, it *reprovisions*: a standby device is
re-recruited from the assignment pool, the operator is reassigned, and
the Snapshot Builder re-ships the retained partition to it.

Graceful degradation — the combiner emitting a partial, coverage- and
bound-annotated ``FINAL_RESULT`` when quorum stays unreachable — is
driven by the :class:`RecoveryConfig` here but implemented where the
finalize logic lives (:mod:`repro.core.runtime.combiner`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from repro.core.runtime.builder import commit_snapshot, ship_partition
from repro.core.runtime.context import ExecutionContext
from repro.core.runtime.detector import DetectorConfig, PhiAccrualDetector
from repro.devices.edgelet import Edgelet

if TYPE_CHECKING:
    from repro.core.runtime.builder import BuilderRuntime
    from repro.core.runtime.combiner import CombinerRuntime
    from repro.core.runtime.computer import ComputerRuntime

__all__ = ["RecoveryConfig", "RecoveryRuntime"]


@dataclass(frozen=True)
class RecoveryConfig:
    """Knobs of the query-level recovery layer.

    Attributes:
        watchdog_interval: virtual seconds between computation-phase
            watchdog checks.
        collection_grace: delay after the collection window closes
            before the first check (partitions need time to ship).
        reprovision: re-recruit standby Computers for unreachable ones.
        max_reprovisions: total reprovisionings allowed per execution.
        degrade: at the deadline, emit an explicitly-labelled partial
            result instead of failing when some vertical group received
            zero partitions.
        phase_deadline: computation-phase deadline as an offset (virtual
            seconds) from the execution start; ``None`` defaults to 85%
            of the query deadline.  Watchdog checks stop there — past
            it, recovery could no longer land a partial before the
            combiner fires anyway.
    """

    watchdog_interval: float = 5.0
    collection_grace: float = 1.0
    reprovision: bool = True
    max_reprovisions: int = 8
    degrade: bool = True
    phase_deadline: float | None = None

    def __post_init__(self) -> None:
        if self.watchdog_interval <= 0:
            raise ValueError("watchdog_interval must be positive")
        if self.collection_grace < 0:
            raise ValueError("collection_grace must be non-negative")
        if self.max_reprovisions < 0:
            raise ValueError("max_reprovisions must be non-negative")
        if self.phase_deadline is not None and self.phase_deadline <= 0:
            raise ValueError("phase_deadline must be positive")


class RecoveryRuntime:
    """Arms the phase watchdogs and performs reprovisioning.

    Standby candidates are consumed in the (deterministic) order the
    assignment pool provides them, skipping any that are unreachable at
    reprovision time.  Reprovisioning is an aggregate-path mechanism:
    K-Means Computers carry iterative local state that a standby cannot
    reconstruct mid-cadence, so kmeans runs only get the watchdog
    telemetry, not reassignment.
    """

    def __init__(
        self,
        ctx: ExecutionContext,
        builder: "BuilderRuntime",
        computer: "ComputerRuntime",
        combiner: "CombinerRuntime",
        standby_ids: list[str],
        attach_device: Callable[[Edgelet], None],
    ):
        self.ctx = ctx
        self.config: RecoveryConfig = ctx.recovery
        self.builder = builder
        self.computer = computer
        self.combiner = combiner
        self.standbys = [d for d in standby_ids if d in ctx.devices]
        self.attach_device = attach_device
        self.checks_run = 0
        metrics = ctx.telemetry.metrics
        query_id = ctx.plan.query_id
        self._m_checks = metrics.counter("exec.watchdog_checks", query=query_id)
        self._m_fired = metrics.counter(
            "exec.watchdog_fired", query=query_id, phase="computation"
        )
        self._m_reprovisions = metrics.counter(
            "exec.reprovisions", query=query_id
        )
        self._m_suspicions = metrics.counter(
            "exec.detector_suspicions", query=query_id
        )
        # adaptive failure detection (opt-in): build the φ-accrual
        # detector and feed it every transport delivery observation
        self.detector: PhiAccrualDetector | None = None
        setting = ctx.detector
        if setting:
            if isinstance(setting, PhiAccrualDetector):
                self.detector = setting
            elif isinstance(setting, DetectorConfig):
                self.detector = PhiAccrualDetector(setting)
            else:
                self.detector = PhiAccrualDetector()
            # expose the live instance for invariants and benches
            ctx.detector = self.detector
            register = getattr(ctx.transport, "add_link_observer", None)
            if register is not None:
                register(self._on_link_event)

    def _on_link_event(
        self, sender: str, recipient: str, outcome: str, rtt: float | None
    ) -> None:
        if self.detector is not None:
            self.detector.on_link_event(
                sender, recipient, outcome, rtt, self.ctx.simulator.now
            )

    # -- scheduling ----------------------------------------------------------

    def computation_deadline(self) -> float:
        """Absolute virtual time the computation phase must finish by."""
        offset = self.config.phase_deadline
        if offset is None:
            offset = 0.85 * self.ctx.deadline
        return self.ctx.start_time + min(offset, self.ctx.deadline)

    def arm(self) -> None:
        """Schedule the computation-phase watchdog checks."""
        ctx = self.ctx
        first = ctx.collect_end + self.config.collection_grace
        last = self.computation_deadline()
        epoch = ctx.simulator.epoch
        at = first
        times = []
        while at < last:
            times.append(at)
            at += self.config.watchdog_interval
        times.append(last)
        for when in times:
            ctx.simulator.schedule_at(
                when,
                lambda: (
                    self.check() if ctx.simulator.epoch == epoch else None
                ),
                "recovery-watchdog",
            )
        if self.detector is not None and hasattr(ctx.transport, "probe"):
            # liveness probes at twice the watchdog cadence: the
            # detector needs inter-arrival samples before a check can
            # trust its φ, and failed probes feed the failure streak
            # that surfaces gray (alive-but-degraded) devices
            at = first - 0.5 * self.config.watchdog_interval
            if at <= ctx.collect_end:
                # a computer is legitimately silent through collection,
                # so φ over its build-phase cadence would read as death
                # at the first check: clamp the lead probe into the
                # grace window so fresh evidence exists by then
                at = min(
                    ctx.collect_end + 0.5 * self.config.collection_grace,
                    first,
                )
            while at < last:
                ctx.simulator.schedule_at(
                    at,
                    lambda: (
                        self.probe_round()
                        if ctx.simulator.epoch == epoch
                        else None
                    ),
                    "detector-probe",
                )
                at += 0.5 * self.config.watchdog_interval

    def probe_round(self) -> None:
        """Probe every assigned Computer device from the combiner."""
        ctx = self.ctx
        if ctx.report.success:
            return
        combiner_op = ctx.plan.operator("combiner")
        prober = ctx.device_of(combiner_op).device_id
        if not ctx.network.is_online(prober):
            return
        targets = sorted(
            {
                op.assigned_to
                for op in self.computer.computers
                if op.assigned_to is not None
            }
        )
        for target in targets:
            if target == prober:
                continue
            ctx.transport.probe(prober, target)

    # -- the watchdog check --------------------------------------------------

    def _received_cells(self) -> set[tuple[int, int]]:
        """(partition, group) cells already at some live combiner."""
        cells: set[tuple[int, int]] = set()
        for name, state in self.combiner.states.items():
            combiner_device = self.ctx.device_of(self.ctx.plan.operator(name))
            if self.ctx.network.is_dead(combiner_device.device_id):
                continue
            cells.update(state.partials)
            cells.update((p, 0) for p in state.knowledges)
        return cells

    def check(self) -> None:
        """One watchdog pass: find starved cells, reprovision owners."""
        ctx = self.ctx
        if ctx.report.success:
            return
        self.checks_run += 1
        self._m_checks.inc()
        received = self._received_cells()
        for operator in list(self.computer.computers):
            cell = (
                operator.params["partition_index"],
                operator.params.get("group_index", 0),
            )
            if cell in received:
                continue
            device_id = operator.assigned_to
            if device_id is None:
                continue
            reachable = ctx.network.is_online(device_id)
            if reachable and self.detector is not None and self.detector.suspect(
                device_id, ctx.simulator.now
            ):
                # nominally online but the accrual detector has lost
                # confidence (partitioned away or gray): treat as gone
                reachable = False
                self._m_suspicions.inc()
                ctx.trace(
                    f"detector: {device_id} suspected "
                    f"(suspicion over threshold), cell {cell} missing"
                )
            if reachable:
                continue  # reachable: maybe just slow, leave it be
            self._m_fired.inc()
            ctx.trace(
                f"watchdog: {operator.op_id} unreachable on {device_id}, "
                f"cell {cell} missing"
            )
            if (
                self.config.reprovision
                and ctx.kind == "aggregate"
                and len(ctx.report.reprovisions) < self.config.max_reprovisions
            ):
                self.reprovision(operator, cell)

    # -- reprovisioning ------------------------------------------------------

    def _next_standby(self) -> str | None:
        while self.standbys:
            candidate = self.standbys[0]
            if self.ctx.network.is_online(candidate):
                return self.standbys.pop(0)
            self.standbys.pop(0)
        return None

    def reprovision(self, operator: Any, cell: tuple[int, int]) -> None:
        """Re-recruit a standby device for one starved Computer cell."""
        ctx = self.ctx
        partition_index, _group_index = cell
        builder_op = self.builder.builder_by_partition.get(partition_index)
        rows = self.builder.rows_by_partition.get(partition_index)
        if builder_op is None or not rows:
            ctx.trace(
                f"watchdog: no retained partition {partition_index}, "
                f"cannot reprovision {operator.op_id}"
            )
            return
        builder_device = ctx.device_of(builder_op)
        if not ctx.network.is_online(builder_device.device_id):
            ctx.trace(
                f"watchdog: builder for partition {partition_index} "
                f"unreachable, cannot reprovision {operator.op_id}"
            )
            return
        new_id = self._next_standby()
        if new_id is None:
            ctx.trace(f"watchdog: no standby left for {operator.op_id}")
            return
        old_id = operator.assigned_to
        operator.assigned_to = new_id
        self.attach_device(ctx.devices[new_id])
        # the cell's first-wins guard must forget the dead device's copy
        # so the re-shipped partition actually executes
        self.computer.partitions_seen.discard(cell)
        ctx.report.reprovisions.append(
            (ctx.simulator.now, operator.op_id, old_id or "?", new_id)
        )
        self._m_reprovisions.inc()
        if self.detector is not None and old_id:
            # the displaced device's history must not poison a later
            # suspicion check should the id be re-recruited
            self.detector.forget(old_id)
        generation: int | None = None
        if ctx.fencing:
            # mint the fencing token: the new owner's partials carry a
            # strictly higher generation, so a zombie predecessor that
            # resurfaces (healed partition, recovered gray link) loses
            # at the combiner instead of split-braining the cell.  Top
            # over every generation already *fired* for the cell too —
            # backup-replica ranks double as generations, and the token
            # must outrank those as well
            prior = ctx.generations.get(cell, 0)
            for _time, fired_cell, _device, fired_gen in ctx.fire_log:
                if fired_cell == cell:
                    prior = max(prior, fired_gen)
            generation = prior + 1
            ctx.generations[cell] = generation
        ctx.trace(
            f"watchdog: reprovisioned {operator.op_id} "
            f"from {old_id} to standby {new_id}"
            + (f" at generation {generation}" if generation is not None else "")
        )
        ship_partition(
            ctx,
            builder_device,
            partition_index,
            rows,
            commit_snapshot(rows),
            [operator],
            generation=generation,
        )
