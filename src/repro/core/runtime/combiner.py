"""Computing Combiner runtime and its pure merge/finalize algebra.

:class:`CombinerState` is the side-effect-free algebra one combiner
instance applies — idempotent partial recording, tallying, merge /
extrapolate / stitch at the deadline.  :class:`CombinerRuntime` drives
two of them (the Computing Combiner and its Active Backup, running the
identical logic in parallel) against the network: it records inbound
partials/knowledges and, at the deadline, finalizes and ships results
to the Querier.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.core.overcollection import OvercollectionConfig, PartitionTally
from repro.core.qep import OperatorRole
from repro.core.validity import coverage_confidence, partial_validity_bound
from repro.core.runtime.context import ExecutionContext
from repro.core.runtime.report import ExecutionError, KMeansOutcome
from repro.devices.edgelet import Edgelet
from repro.ml.distributed_kmeans import CentroidKnowledge, merge_knowledge
from repro.network.messages import MessageKind
from repro.query.columnar import merge_partials_columnar
from repro.query.groupby import (
    GroupByQuery,
    GroupingSetsResult,
    PartialGroups,
    finalize_partials,
    merge_partials,
)

if TYPE_CHECKING:
    from repro.core.runtime.computer import ComputerRuntime

__all__ = ["CombinerState", "CombinerRuntime", "stitch_groups", "COMBINER_NAMES"]

COMBINER_NAMES = ("combiner", "combiner-backup")


class CombinerState:
    """Shared merge algebra of the Computing Combiner and its Active Backup."""

    def __init__(
        self,
        name: str,
        config: OvercollectionConfig,
        n_groups: int,
        query: GroupByQuery | None,
        extrapolate: bool,
        engine: str = "row",
    ):
        self.name = name
        self.config = config
        self.n_groups = n_groups
        self.query = query
        self.extrapolate = extrapolate
        # "columnar" merges partials as column blocks (bit-identical
        # results); the stored partials stay row-format PartialGroups
        # either way — the dedup/fencing invariants introspect them
        self.engine = engine
        self._merge = (
            merge_partials_columnar if engine == "columnar" else merge_partials
        )
        self.partials: dict[tuple[int, int], PartialGroups] = {}
        self.knowledges: dict[int, CentroidKnowledge] = {}
        self.group_tallies = [PartitionTally(config) for _ in range(n_groups)]
        # fencing: the generation whose partial currently holds each
        # cell; consulted only on the fenced path
        self.accepted_generations: dict[tuple[int, int], int] = {}
        self.fenced_rejections = 0
        self.fenced_replacements = 0

    def record_partial(
        self,
        partition_index: int,
        group_index: int,
        partial: PartialGroups,
        generation: int = 0,
        fenced: bool = False,
    ) -> str:
        """Accept one aggregate partial result; returns the disposition.

        Unfenced (the legacy path): strictly first-wins per cell —
        ``"accepted"`` or ``"duplicate"``.  Fenced: acceptance is
        monotone in the generation token — a strictly higher generation
        *replaces* the held partial (the reprovisioned owner fences out
        its predecessor), an equal one is first-wins (``"rejected"``),
        and a lower one is stale and ``"rejected"`` outright.
        """
        key = (partition_index, group_index)
        if not fenced:
            if key in self.partials:
                return "duplicate"
            self.partials[key] = partial
            self.group_tallies[group_index].record(partition_index)
            return "accepted"
        current = self.accepted_generations.get(key)
        if current is None:
            self.partials[key] = partial
            self.accepted_generations[key] = generation
            self.group_tallies[group_index].record(partition_index)
            return "accepted"
        if generation > current:
            self.partials[key] = partial
            self.accepted_generations[key] = generation
            self.fenced_replacements += 1
            return "replaced"
        self.fenced_rejections += 1
        return "rejected"

    def record_knowledge(self, partition_index: int, knowledge: CentroidKnowledge) -> None:
        """Accept one K-Means knowledge (last write wins per partition)."""
        self.knowledges[partition_index] = knowledge
        self.group_tallies[0].record(partition_index)

    def tally_summary(self) -> dict[str, Any]:
        """Worst-group tally summary (the binding constraint)."""
        summaries = [tally.summary() for tally in self.group_tallies]
        worst = min(summaries, key=lambda s: s["received"])
        worst["per_group_received"] = [s["received"] for s in summaries]
        return worst

    def finalize_aggregate(
        self, aggregate_indices_per_group: list[list[int]]
    ) -> GroupingSetsResult | None:
        """Merge, extrapolate, and assemble the final aggregate rows.

        Each vertical group contributes its own aggregates; rows of the
        same grouping-set key are merged across groups.  Returns
        ``None`` when some group received zero partitions.
        """
        if self.query is None:
            raise ExecutionError("aggregate finalize without a query")
        per_group_results: list[GroupingSetsResult] = []
        for group_index in range(self.n_groups):
            tally = self.group_tallies[group_index]
            if tally.received_count == 0:
                return None
            group_query = GroupByQuery(
                grouping_sets=self.query.grouping_sets,
                aggregates=tuple(
                    self.query.aggregates[i]
                    for i in aggregate_indices_per_group[group_index]
                ),
            )
            merged = self._merge(
                group_query,
                (
                    self.partials[(p, g)]
                    for (p, g) in sorted(self.partials)
                    if g == group_index
                ),
            )
            result = finalize_partials(group_query, merged)
            if self.extrapolate and tally.lost_count > 0:
                result = result.scaled_counts(tally.scaling_factor())
            per_group_results.append(result)
        return stitch_groups(self.query, per_group_results, aggregate_indices_per_group)

    def finalize_partial(
        self, aggregate_indices_per_group: list[list[int]]
    ) -> tuple[GroupingSetsResult | None, dict[str, Any]]:
        """Best-effort finalize over the covered vertical groups only.

        The graceful-degradation path: vertical groups with zero
        received partitions are *omitted* (their aggregate columns are
        simply absent from the rows) rather than failing the whole
        query.  Returns the partial result plus a coverage annotation;
        ``(None, {})`` when nothing at all arrived.
        """
        if self.query is None:
            raise ExecutionError("aggregate finalize without a query")
        covered = [
            g
            for g in range(self.n_groups)
            if self.group_tallies[g].received_count > 0
        ]
        if not covered:
            return None, {}
        per_group_results: list[GroupingSetsResult] = []
        covered_indices: list[list[int]] = []
        for group_index in covered:
            tally = self.group_tallies[group_index]
            group_query = GroupByQuery(
                grouping_sets=self.query.grouping_sets,
                aggregates=tuple(
                    self.query.aggregates[i]
                    for i in aggregate_indices_per_group[group_index]
                ),
            )
            merged = self._merge(
                group_query,
                (
                    self.partials[(p, g)]
                    for (p, g) in sorted(self.partials)
                    if g == group_index
                ),
            )
            result = finalize_partials(group_query, merged)
            if self.extrapolate and tally.lost_count > 0:
                result = result.scaled_counts(tally.scaling_factor())
            per_group_results.append(result)
            covered_indices.append(aggregate_indices_per_group[group_index])
        # HAVING may reference aggregates of an uncovered group; with
        # partial coverage the predicate is unevaluable and skipped
        result = stitch_groups(
            self.query,
            per_group_results,
            covered_indices,
            apply_having=len(covered) == self.n_groups,
        )
        per_group_received = [t.received_count for t in self.group_tallies]
        coverage = {
            "groups_covered": len(covered),
            "groups_total": self.n_groups,
            "per_group_received": per_group_received,
            "received_fraction": coverage_confidence(
                per_group_received, self.config.total_partitions
            ),
        }
        return result, coverage

    def finalize_kmeans(self) -> KMeansOutcome | None:
        """Merge all received Computer knowledges into final centroids.

        Knowledges whose k differs (Computers on starved partitions cap
        k at their point count) cannot be barycenter-matched; the
        combiner keeps the most common k and drops the rest.
        """
        if not self.knowledges:
            return None
        ordered = [self.knowledges[i] for i in sorted(self.knowledges)]
        k_counts: dict[int, int] = {}
        for knowledge in ordered:
            k_counts[knowledge.k] = k_counts.get(knowledge.k, 0) + 1
        dominant_k = max(k_counts, key=lambda k: (k_counts[k], k))
        ordered = [kn for kn in ordered if kn.k == dominant_k]
        merged = ordered[0]
        if len(ordered) > 1:
            merged = merge_knowledge(ordered[0], ordered[1:])
        return KMeansOutcome(
            centroids=merged.centroids,
            weights=merged.weights,
            knowledges_merged=len(ordered),
        )


def stitch_groups(
    query: GroupByQuery,
    per_group: list[GroupingSetsResult],
    aggregate_indices_per_group: list[list[int]],
    apply_having: bool = True,
) -> GroupingSetsResult:
    """Assemble per-vertical-group results into one result row set."""
    import json as _json

    stitched_sets: list[tuple[dict[str, Any], ...]] = []
    for set_index, grouping_set in enumerate(query.grouping_sets):
        merged_rows: dict[str, dict[str, Any]] = {}
        for group_index, result in enumerate(per_group):
            names = [
                query.aggregates[i].output_name
                for i in aggregate_indices_per_group[group_index]
            ]
            for row in result.per_set_rows[set_index]:
                key = _json.dumps(
                    [row.get(c) for c in grouping_set], separators=(",", ":")
                )
                target = merged_rows.setdefault(
                    key, {c: row.get(c) for c in grouping_set}
                )
                for name in names:
                    target[name] = row.get(name)
        candidates = (merged_rows[key] for key in sorted(merged_rows))
        # HAVING applies here: only now are all of a row's aggregates
        # (possibly spread over vertical groups) present
        ordered = tuple(
            row
            for row in candidates
            if not apply_having
            or query.having is None
            or query.having.evaluate(row)
        )
        stitched_sets.append(ordered)
    return GroupingSetsResult(query, tuple(stitched_sets))


class CombinerRuntime:
    """Drives the Computing Combiner and its Active Backup."""

    role = OperatorRole.COMPUTING_COMBINER

    def __init__(self, ctx: ExecutionContext, computer: "ComputerRuntime"):
        self.ctx = ctx
        self.computer = computer
        self.states: dict[str, CombinerState] = {}
        for name in COMBINER_NAMES:
            self.states[name] = CombinerState(
                name=name,
                config=ctx.config,
                n_groups=len(ctx.column_groups),
                query=ctx.query,
                extrapolate=ctx.extrapolate_lost,
                engine=ctx.engine,
            )
        self.stats_partials: dict[str, dict[int, PartialGroups]] = {
            name: {} for name in COMBINER_NAMES
        }

    # -- recording -----------------------------------------------------------

    def on_partial_result(
        self,
        device: Edgelet,
        payload: dict[str, Any],
        sender: str | None = None,
    ) -> None:
        """Record one inbound partial (aggregate or cluster-stats).

        ``sender`` is the originating device of the message (threaded
        from dispatch); it feeds the arrival evidence log that the
        ``no-split-brain`` chaos invariant audits.
        """
        op_id = payload.get("op_id", "")
        state = self.states.get(op_id)
        if state is None:
            return
        partial = PartialGroups.from_dict(payload["partial"])
        if payload.get("stats"):
            self.stats_partials[op_id][payload["partition_index"]] = partial
            return
        generation = int(payload.get("generation", 0))
        disposition = state.record_partial(
            payload["partition_index"],
            payload["group_index"],
            partial,
            generation=generation,
            fenced=self.ctx.fencing,
        )
        cell = (payload["partition_index"], payload["group_index"])
        self.ctx.arrival_log.append(
            (
                self.ctx.simulator.now,
                cell,
                op_id,
                sender or "?",
                generation,
                disposition,
            )
        )
        self.ctx.m_partials.inc()

    def on_knowledge(self, device: Edgelet, payload: dict[str, Any]) -> None:
        """Record one inbound Computer knowledge (kmeans kind)."""
        if self.ctx.network.is_dead(device.device_id):
            return
        knowledge = CentroidKnowledge.from_payload(payload["knowledge"])
        self.states[payload["op_id"]].record_knowledge(
            payload["partition_index"], knowledge
        )
        self.ctx.m_knowledges.inc()

    # -- combination ---------------------------------------------------------

    def finalize(self) -> None:
        """Deadline: both combiners merge and ship the final result."""
        ctx = self.ctx
        ctx.mark_combination_start()
        for name in COMBINER_NAMES:
            combiner_op = ctx.plan.operator(name)
            device = ctx.device_of(combiner_op)
            if not ctx.network.is_online(device.device_id):
                ctx.trace(f"{name} offline at deadline")
                continue
            state = self.states[name]
            degrade = ctx.recovery is not None and getattr(
                ctx.recovery, "degrade", False
            )
            if ctx.kind == "aggregate":
                with ctx.prof_combine:
                    result = state.finalize_aggregate(
                        self.computer.aggregate_indices_per_group
                    )
                degradation: dict[str, Any] = {}
                if result is None and degrade:
                    # graceful degradation: quorum unreachable for some
                    # vertical group — emit what arrived, explicitly
                    # labelled with coverage and a validity bound
                    with ctx.prof_combine:
                        result, coverage = state.finalize_partial(
                            self.computer.aggregate_indices_per_group
                        )
                    if result is not None:
                        degradation = {
                            "degraded": True,
                            "coverage": coverage,
                            "validity_bound": partial_validity_bound(
                                coverage["per_group_received"],
                                state.config.total_partitions,
                            ),
                        }
                        ctx.trace(
                            f"{name}: quorum unreachable, emitting degraded "
                            f"partial result "
                            f"({coverage['groups_covered']}/"
                            f"{coverage['groups_total']} groups covered)"
                        )
                if result is None:
                    ctx.trace(f"{name}: no partitions received, cannot finalize")
                    continue
                payload: dict[str, Any] = {
                    "__aggregate__": True,
                    "combiner": name,
                    "tally": state.tally_summary(),
                    "rows": [list(rows) for rows in result.per_set_rows],
                    **degradation,
                }
            else:
                with ctx.prof_combine:
                    outcome = state.finalize_kmeans()
                if outcome is None:
                    ctx.trace(f"{name}: no knowledges received, cannot finalize")
                    continue
                if ctx.stats_query is not None and name == "combiner":
                    # launch the Group-By-on-clusters round: ship the
                    # final centroids back to every Computer
                    for computer in self.computer.computers:
                        target = ctx.device_of(computer)
                        ctx.ship(
                            device, target, MessageKind.KNOWLEDGE,
                            {
                                "__aggregate__": True,
                                "op_id": computer.op_id,
                                "final_centroids": outcome.centroids.tolist(),
                            },
                            size_hint=512,
                        )
                payload = {
                    "__aggregate__": True,
                    "combiner": name,
                    "tally": state.tally_summary(),
                    "centroids": outcome.centroids.tolist(),
                    "weights": outcome.weights.tolist(),
                    "knowledges_merged": outcome.knowledges_merged,
                }
                summary = state.tally_summary()
                if degrade and not summary["complete"]:
                    # fewer knowledges than the validity condition asks
                    # for: the clustering is still usable but partial —
                    # label it instead of presenting it as complete
                    received = summary["per_group_received"]
                    payload.update(
                        degraded=True,
                        coverage={
                            "groups_covered": sum(1 for r in received if r),
                            "groups_total": len(received),
                            "per_group_received": received,
                            "received_fraction": coverage_confidence(
                                received, state.config.total_partitions
                            ),
                        },
                        validity_bound=partial_validity_bound(
                            received, state.config.total_partitions
                        ),
                    )
            ctx.audit(device, name, "combine", 0)
            querier_op = ctx.plan.operators(OperatorRole.QUERIER)[0]
            querier_device = ctx.device_of(querier_op)
            ctx.ship(
                device, querier_device, MessageKind.FINAL_RESULT, payload,
                size_hint=1024,
            )
            ctx.trace(f"{name} sent final result to querier")

    def finalize_stats(self) -> None:
        """Combiners merge the per-cluster statistics and ship them."""
        ctx = self.ctx
        if ctx.stats_query is None:
            return
        for name in COMBINER_NAMES:
            device = ctx.device_of(ctx.plan.operator(name))
            if not ctx.network.is_online(device.device_id):
                continue
            partials = self.stats_partials[name]
            if not partials:
                continue
            merged = (
                merge_partials_columnar if ctx.engine == "columnar"
                else merge_partials
            )(
                ctx.stats_query,
                (partials[key] for key in sorted(partials)),
            )
            result = finalize_partials(ctx.stats_query, merged)
            querier_device = ctx.device_of(
                ctx.plan.operators(OperatorRole.QUERIER)[0]
            )
            ctx.ship(
                device, querier_device, MessageKind.FINAL_RESULT,
                {
                    "__aggregate__": True,
                    "combiner": name,
                    "stats_rows": [list(rows) for rows in result.per_set_rows],
                },
                size_hint=1024,
            )
            ctx.trace(f"{name} sent cluster statistics to querier")
