"""Data Contributor runtime: jittered, possibly-repeated contributions.

Each Data Contributor filters/projects its own rows inside its TEE and
ships them (sealed) to its hash-assigned Snapshot Builder — and, under
the Backup strategy, to every passive replica of that builder (the plan
wires one dataflow edge per rank, so the same closure serves both
strategies).
"""

from __future__ import annotations

from repro.core.qep import OperatorRole
from repro.core.runtime.context import ExecutionContext
from repro.core.runtime.incremental import STAMP_BYTES
from repro.core.runtime.report import ExecutionError
from repro.network.messages import MessageKind
from repro.query.columnar import scan_filter_project

__all__ = ["ContributorRuntime"]


class ContributorRuntime:
    """Schedules every contributor's staggered transmissions."""

    role = OperatorRole.DATA_CONTRIBUTOR

    def __init__(self, ctx: ExecutionContext):
        self.ctx = ctx

    def schedule_contributions(self) -> None:
        """Arm one jittered send per contributor per configured copy."""
        ctx = self.ctx
        contributors = ctx.plan.operators(OperatorRole.DATA_CONTRIBUTOR)
        predicate = None
        if ctx.query is not None and ctx.query.where is not None:
            where = ctx.query.where
            predicate = lambda row: where.evaluate(row)
        for leaf in contributors:
            device = ctx.devices.get(leaf.params["device"])
            if device is None:
                raise ExecutionError(
                    f"contributor device {leaf.params['device']} missing"
                )
            consumers = ctx.plan.consumers_of(leaf.op_id)
            primary = [
                c for c in consumers if c.params.get("backup_rank", 0) == 0
            ]
            if not primary:
                continue
            for copy_index in range(ctx.contribution_copies):
                send_at = ctx.start_time + ctx.rng.uniform(
                    0.0, ctx.collection_window * 0.6
                )
                ctx.simulator.schedule_at(
                    send_at,
                    self._make_contribution(device, consumers, predicate),
                    f"contribute {device.device_id} (copy {copy_index})",
                )

    def _make_contribution(self, device, consumers, predicate):
        ctx = self.ctx

        def fire() -> None:
            if not ctx.network.is_online(device.device_id):
                return  # owner kept the device offline; no contribution
            if ctx.engine == "columnar":
                # vectorized scan/filter/project inside the TEE; rows
                # materialize only here, at the envelope boundary, and
                # are value-identical to the row engine's select
                where = ctx.query.where if ctx.query is not None else None
                rows = scan_filter_project(
                    device.contribute(), where, ctx.collected_columns
                )
            else:
                rows = device.contribute(predicate, ctx.collected_columns)
            if not rows:
                return
            cache = ctx.contribution_cache
            digest = cache.digest(rows) if cache is not None else None
            full_size = 96 * len(rows)
            for consumer in consumers:
                target = ctx.device_of(consumer)
                base = {
                    "op_id": consumer.op_id,
                    "partition_index": consumer.params["partition_index"],
                    "contribution_id": f"{device.fingerprint}:{consumer.op_id}",
                }
                if cache is not None and cache.match(
                    device.device_id, target.device_id, digest
                ):
                    # Unchanged rows to an unchanged builder: ship a
                    # delta stamp the builder resolves from its retained
                    # copy instead of re-shipping the full partition slice.
                    cache.count_stamp(full_size)
                    ctx.ship(
                        device,
                        target,
                        MessageKind.CONTRIBUTION,
                        {
                            **base,
                            "contributor": device.device_id,
                            "stamp": digest,
                        },
                        size_hint=STAMP_BYTES,
                    )
                    continue
                if cache is not None:
                    cache.store(device.device_id, target.device_id, digest, rows)
                    cache.count_full()
                ctx.ship(
                    device,
                    target,
                    MessageKind.CONTRIBUTION,
                    {**base, "rows": rows},
                    size_hint=full_size,
                )
        return fire
