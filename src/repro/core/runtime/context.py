"""Shared execution context for the per-role operator runtimes.

The :class:`ExecutionContext` owns everything every role runtime needs
but no role owns alone: the clock, the network, the device map, the
validated plan configuration, the report under construction, sealed
transport, audit, phase accounting, and the telemetry instruments.
Role runtimes (:mod:`repro.core.runtime.contributor` …) hold only their
own operator state and reach everything else through this object.
"""

from __future__ import annotations

import random
from typing import Any

from repro.core.overcollection import OvercollectionConfig
from repro.core.qep import Operator, OperatorRole, QueryExecutionPlan
from repro.core.runtime.report import ExecutionError, ExecutionReport
from repro.crypto.primitives import AuthenticationError
from repro.devices.edgelet import Edgelet
from repro.network.messages import Message, MessageKind
from repro.network.opnet import OpportunisticNetwork
from repro.network.simulator import Simulator
from repro.query.groupby import GroupByQuery

__all__ = ["ExecutionContext"]


class ExecutionContext:
    """Per-execution shared state and services.

    Construction validates the knobs and parses the plan metadata once;
    see :class:`repro.core.runtime.ExecutionCoordinator` for the
    argument documentation (the coordinator forwards them verbatim).
    """

    def __init__(
        self,
        simulator: Simulator,
        network: OpportunisticNetwork,
        devices: dict[str, Edgelet],
        plan: QueryExecutionPlan,
        collection_window: float = 30.0,
        deadline: float = 100.0,
        secure_channels: bool = True,
        extrapolate_lost: bool = True,
        contribution_copies: int = 1,
        audit_ledger: Any = None,
        telemetry: Any = None,
        seed: int = 0,
        transport: Any = None,
        recovery: Any = None,
        contribution_cache: Any = None,
        fencing: bool = False,
        detector: Any = None,
    ):
        if contribution_copies < 1:
            raise ExecutionError("contribution_copies must be at least 1")
        if deadline <= collection_window:
            raise ExecutionError("deadline must exceed the collection window")
        self.simulator = simulator
        self.network = network
        # optional reliability overlay (repro.network.reliable); ``None``
        # sends straight on the raw opportunistic network, bit-for-bit
        # the legacy behaviour
        self.transport = transport
        # optional RecoveryConfig (repro.core.runtime.recovery); ``None``
        # disables watchdogs, reprovisioning, and graceful degradation
        self.recovery = recovery
        # optional ContributionCache (repro.core.runtime.incremental);
        # ``None`` ships every contribution in full — the one-shot
        # behaviour.  A standing-query engine threads one cache through
        # consecutive windows so unchanged contributions travel as stamps.
        self.contribution_cache = contribution_cache
        # split-brain fencing (opt-in): each reprovisioning of a
        # (partition, group) cell bumps its generation number, the token
        # travels builder → computer → combiner, and the combiner
        # accepts monotonically.  Off by default because the token adds
        # a payload key, and sealed-envelope sizes feed latency draws —
        # legacy fixed-seed runs must stay byte-identical.
        self.fencing = fencing
        # current fencing generation per (partition, group) cell;
        # absent means generation 0 (the original provisioning)
        self.generations: dict[tuple[int, int], int] = {}
        # evidence logs for the no-split-brain invariant: every partial
        # *fired* toward a combiner (time, cell, device, generation) and
        # every partial *arriving* at a combiner
        # (time, cell, combiner_op, device, generation, disposition)
        self.fire_log: list[tuple[float, tuple[int, int], str, int]] = []
        self.arrival_log: list[tuple[float, tuple[int, int], str, str, int, str]] = []
        # optional DetectorConfig (repro.core.runtime.detector); ``None``
        # keeps the fixed watchdog heuristic
        self.detector = detector
        self.devices = devices
        self.plan = plan
        # All phase boundaries are relative to the execution's start
        # time, so several queries can run back-to-back on one simulator.
        self.start_time = simulator.now
        self.collection_window = collection_window
        self.deadline = deadline
        self.collect_end = self.start_time + collection_window
        self.deadline_at = self.start_time + deadline
        self.secure_channels = secure_channels
        self.extrapolate_lost = extrapolate_lost
        self.contribution_copies = contribution_copies
        self.audit_ledger = audit_ledger
        self._contribution_filters: dict[Any, Any] = {}
        self.rng = random.Random(seed)
        self.report = ExecutionReport(query_id=plan.query_id)

        if telemetry is None:
            telemetry = simulator.telemetry
        self.telemetry = telemetry
        self.report.telemetry = telemetry
        metrics = telemetry.metrics
        query_id = plan.query_id
        self.m_contributions = metrics.counter(
            "exec.contributions_accepted", query=query_id
        )
        self.m_tuples = metrics.counter("exec.tuples_collected", query=query_id)
        self.m_snapshots = metrics.counter("exec.snapshots_frozen", query=query_id)
        self.m_partials = metrics.counter("exec.partials_recorded", query=query_id)
        self.m_knowledges = metrics.counter(
            "exec.knowledges_recorded", query=query_id
        )
        self.m_heartbeats = metrics.counter("exec.heartbeats_run", query=query_id)
        self.m_finals = metrics.counter("exec.final_results", query=query_id)
        self.prof_aggregate = telemetry.profiler.section("operator.aggregate")
        self.prof_heartbeat = telemetry.profiler.section("operator.kmeans_heartbeat")
        self.prof_combine = telemetry.profiler.section("operator.combine")
        self._m_dropped_payloads: dict[str, Any] = {}
        self._m_role_dispatches: dict[str, Any] = {}

        # Phase spans: the structured execution timeline.  The
        # collection span closes at the first frozen snapshot and the
        # computation span opens at the first partial/K-Means init,
        # mirroring exactly what the legacy substring heuristics mined
        # from the text trace.  Spans left open (a phase that never
        # happened) render as ``None`` boundaries.
        from repro.telemetry import NullTracer

        tracer = telemetry.tracer
        self.span_execution = tracer.start(
            "execution",
            at=self.start_time,
            query_id=query_id,
            kind=plan.metadata["kind"],
        )
        self.span_collection = tracer.start(
            "phase:collection", at=self.start_time, parent=self.span_execution
        )
        self.span_computation: Any = None
        self.span_combination: Any = None
        # A no-op tracer hands out one shared inert span; publishing it
        # would poison phase_timeline, which then rightly falls back to
        # the legacy text-trace scan.
        self.record_phase_spans = not isinstance(tracer, NullTracer)
        if self.record_phase_spans:
            self.report.phase_spans["execution"] = self.span_execution
            self.report.phase_spans["collection"] = self.span_collection

        metadata = plan.metadata
        self.kind: str = metadata["kind"]
        # operator engine: "row" (legacy dict walks) or "columnar"
        # (numpy column blocks); absent in plans built before the knob
        # existed, which therefore replay on the row engine
        self.engine: str = metadata.get("engine") or "row"
        self.config = OvercollectionConfig.from_dict(metadata["overcollection"])
        self.column_groups: list[list[str]] = [
            list(group) for group in metadata["column_groups"]
        ]
        self.collected_columns: list[str] = list(metadata["collected_columns"])
        self.query: GroupByQuery | None = (
            GroupByQuery.from_dict(metadata["group_by"])
            if metadata.get("group_by")
            else None
        )
        self.heartbeats: int = metadata.get("heartbeats") or 0
        self.kmeans_k: int = metadata.get("kmeans_k") or 0
        self.feature_columns: list[str] = list(metadata.get("feature_columns") or [])

        # Demo query (ii): "a K-Means followed by a Group By on the
        # resulting clusters".  When a kmeans spec carries a group_by,
        # a second round groups the partitions by assigned cluster.
        self.stats_query: GroupByQuery | None = None
        if self.kind == "kmeans" and self.query is not None:
            self.stats_query = GroupByQuery(
                grouping_sets=(("cluster",),),
                aggregates=self.query.aggregates,
            )

    # -- lookups & accounting ------------------------------------------------

    def device_of(self, operator: Operator) -> Edgelet:
        """Resolve an operator's assigned :class:`Edgelet`."""
        device_id = operator.assigned_to
        if device_id is None:
            raise ExecutionError(f"operator {operator.op_id} is unassigned")
        try:
            return self.devices[device_id]
        except KeyError:
            raise ExecutionError(
                f"operator {operator.op_id} assigned to unknown device {device_id}"
            ) from None

    def trace(self, message: str) -> None:
        """Append one human-readable event to the report's text trace."""
        self.report.trace.append((self.simulator.now, message))

    def count_tuples(self, device_id: str, count: int) -> None:
        """Attribute ``count`` raw tuples to a processing device."""
        tallies = self.report.tuples_per_device
        tallies[device_id] = tallies.get(device_id, 0) + count

    def audit(self, device: Edgelet, op_id: str, action: str, tuple_count: int) -> None:
        """Append a signed record to the audit ledger, if one is wired."""
        if self.audit_ledger is None:
            return
        self.audit_ledger.append(
            device.keyring.keypair,
            self.plan.query_id,
            op_id,
            action,
            tuple_count,
            self.simulator.now,
        )

    def count_dropped_payload(self, reason: str) -> None:
        """Count one silently dropped inbound payload, by reason."""
        counter = self._m_dropped_payloads.get(reason)
        if counter is None:
            counter = self.telemetry.metrics.counter(
                "executor.payloads_dropped",
                query=self.plan.query_id,
                reason=reason,
            )
            self._m_dropped_payloads[reason] = counter
        counter.inc()

    def count_role_dispatch(self, role: str) -> None:
        """Count one message dispatched to a role runtime."""
        counter = self._m_role_dispatches.get(role)
        if counter is None:
            counter = self.telemetry.metrics.counter(
                "exec.messages_dispatched",
                query=self.plan.query_id,
                role=role,
            )
            self._m_role_dispatches[role] = counter
        counter.inc()

    # -- phase accounting ----------------------------------------------------

    def mark_collection_end(self) -> None:
        """First snapshot froze: the collection phase is over."""
        if self.span_collection.end is None:
            now = self.simulator.now
            self.span_collection.finish(at=now)
            self.telemetry.tracer.mark(
                f"exec.{self.plan.query_id}.collection_end", at=now
            )

    def mark_computation_start(self) -> None:
        """First partial/K-Means init: the computation phase began."""
        if self.span_computation is None:
            now = self.simulator.now
            self.span_computation = self.telemetry.tracer.start(
                "phase:computation", at=now, parent=self.span_execution
            )
            if self.record_phase_spans:
                self.report.phase_spans["computation"] = self.span_computation
            self.telemetry.tracer.mark(
                f"exec.{self.plan.query_id}.computation_start", at=now
            )

    def mark_combination_start(self) -> None:
        """The combiner deadline fired: the combination phase began."""
        if self.span_combination is None:
            now = self.simulator.now
            if self.span_computation is not None:
                self.span_computation.finish(at=now)
            self.span_combination = self.telemetry.tracer.start(
                "phase:combination", at=now, parent=self.span_execution
            )
            if self.record_phase_spans:
                self.report.phase_spans["combination"] = self.span_combination

    # -- sealed transport ----------------------------------------------------

    def ship(
        self,
        sender: Edgelet,
        recipient: Edgelet,
        kind: MessageKind,
        payload: Any,
        size_hint: int = 256,
    ) -> None:
        """Seal (or not) and send a payload between two edgelets."""
        if self.secure_channels:
            sender.keyring.learn_public(
                recipient.fingerprint, recipient.keyring.keypair.public
            )
            recipient.keyring.learn_public(
                sender.fingerprint, sender.keyring.keypair.public
            )
            envelope = sender.seal_for(
                recipient.fingerprint, self.plan.query_id, kind.value, payload
            )
            wire_payload: Any = envelope
            size = envelope.size_bytes()
        else:
            wire_payload = payload
            size = max(size_hint, 64)
        transport = self.transport if self.transport is not None else self.network
        transport.send(
            Message(
                sender=sender.device_id,
                recipient=recipient.device_id,
                kind=kind,
                payload=wire_payload,
                size_bytes=size,
            )
        )

    def attach(self, device_id: str, handler: Any) -> None:
        """Attach a device handler via the transport (or raw network)."""
        transport = self.transport if self.transport is not None else self.network
        transport.attach(device_id, handler)

    def unwrap(self, device: Edgelet, message: Message) -> Any | None:
        """Open a received payload; ``None`` means drop it (tampered).

        Dropped payloads are counted in the ``executor.payloads_dropped``
        counter (labelled by reason) so corruption campaigns can assert
        the TEE boundary actually rejected the tampered envelopes.
        """
        if not self.secure_channels:
            payload = message.payload
            items = payload.get("rows") if isinstance(payload, dict) else None
            device.tee.process_cleartext(items if items is not None else [payload])
            return payload
        try:
            return device.open_from(message.payload)
        except AuthenticationError:
            self.trace(
                f"{device.device_id} dropped unauthenticated {message.kind.value}"
            )
            self.count_dropped_payload("unauthenticated")
            return None

    def resolve_contribution(
        self, receiver: Edgelet, payload: dict[str, Any]
    ) -> list[dict[str, Any]] | None:
        """Rows carried by a contribution payload, stamps included.

        A full payload carries ``rows`` directly.  A delta stamp (sent
        when a :class:`~repro.core.runtime.incremental.ContributionCache`
        is active and the edge's retained digest still matches) carries
        only ``stamp``/``contributor`` and resolves against the cache on
        the receiving device's side.  ``None`` means the payload could
        not be materialized — stale stamp after churn invalidation — and
        must be dropped; the sender falls back to full recollection on
        the next window.
        """
        rows = payload.get("rows")
        if rows is not None:
            return rows
        cache = self.contribution_cache
        stamp = payload.get("stamp")
        contributor = payload.get("contributor")
        if cache is None or stamp is None or contributor is None:
            return None
        return cache.resolve(contributor, receiver.device_id, stamp)

    def is_duplicate_contribution(
        self, dedup_key: Any, payload: dict[str, Any]
    ) -> bool:
        """Bloom-filter dedup of retransmitted contributions.

        One filter per receiving operator; constant memory, so it also
        fits a RAM-starved home box.  False positives (rare at the
        configured error rate) drop a legitimate contribution — the
        snapshot stays representative, only marginally smaller.
        """
        contribution_id = payload.get("contribution_id")
        if contribution_id is None:
            return False
        from repro.query.sketches import BloomFilter

        bloom = self._contribution_filters.get(dedup_key)
        if bloom is None:
            capacity = max(
                64, 2 * len(self.plan.operators(OperatorRole.DATA_CONTRIBUTOR))
            )
            bloom = BloomFilter(capacity=capacity, error_rate=0.001)
            self._contribution_filters[dedup_key] = bloom
        return not bloom.add_if_new(contribution_id)
