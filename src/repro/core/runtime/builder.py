"""Snapshot Builder runtime: contribution intake, freeze, commit, ship.

Under the Overcollection strategy one primary builder owns each hash
partition: it deduplicates retransmitted contributions with a Bloom
filter, caps the partition at ``C / n`` tuples, commits to the frozen
snapshot with a Merkle root, and ships column-group projections to the
Computers.  (Under the Backup strategy the replica chains in
:class:`repro.core.runtime.strategy.BackupStrategy` drive these same
mechanics per rank.)
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.core.qep import Operator, OperatorRole
from repro.core.runtime.context import ExecutionContext
from repro.crypto.merkle import MerkleTree
from repro.devices.edgelet import Edgelet
from repro.network.messages import MessageKind
from repro.query.columnar import ColumnBatch

__all__ = ["BuilderRuntime", "commit_snapshot", "ship_partition"]


def commit_snapshot(rows: list[dict[str, Any]]) -> str:
    """Merkle-commit a frozen partition (order-sensitive, per row)."""
    return MerkleTree(
        [repr(sorted(row.items())).encode("utf-8") for row in rows]
    ).root_hex()


def ship_partition(
    ctx: ExecutionContext,
    device: Edgelet,
    partition_index: int,
    rows: list[dict[str, Any]],
    commitment: str,
    consumers: Iterable[Operator],
    generation: int | None = None,
) -> None:
    """Project the partition per consumer column group and send it.

    ``generation`` is the fencing token stamped on a reprovisioning
    re-ship; it rides the payload only when set, because the extra key
    changes sealed-envelope sizes and thereby latency draws — legacy
    runs must make byte-identical draws.
    """
    batch = (
        ColumnBatch.from_rows(rows, ctx.collected_columns)
        if ctx.engine == "columnar"
        else None
    )
    for consumer in consumers:
        group = consumer.params.get("column_group") or ctx.collected_columns
        if batch is not None:
            # column-block projection; rows materialize only at the
            # envelope boundary, value-identical to the dict walk
            projected = batch.project(group).to_rows()
        else:
            projected = [
                {column: row.get(column) for column in group} for row in rows
            ]
        target = ctx.device_of(consumer)
        payload = {
            "op_id": consumer.op_id,
            "partition_index": partition_index,
            "group_index": consumer.params.get("group_index", 0),
            "commitment": commitment,
            "rows": projected,
        }
        if generation is not None:
            payload["generation"] = generation
        ctx.ship(
            device,
            target,
            MessageKind.PARTITION,
            payload,
            size_hint=64 * len(projected),
        )


class BuilderRuntime:
    """Primary (rank-0) Snapshot Builder execution."""

    role = OperatorRole.SNAPSHOT_BUILDER

    def __init__(self, ctx: ExecutionContext):
        self.ctx = ctx
        self.builder_by_partition: dict[int, Operator] = {}
        self.rows_by_partition: dict[int, list[dict[str, Any]]] = {}

    def index(self) -> None:
        """Collect the primary builders out of the plan."""
        for builder in self.ctx.plan.operators(OperatorRole.SNAPSHOT_BUILDER):
            if builder.params.get("backup_rank", 0) == 0:
                partition_index = builder.params["partition_index"]
                self.builder_by_partition[partition_index] = builder
                self.rows_by_partition[partition_index] = []

    # -- collection ----------------------------------------------------------

    def on_contribution(self, device: Edgelet, payload: dict[str, Any]) -> None:
        """Accept one (possibly duplicated) contributor transmission."""
        ctx = self.ctx
        if ctx.simulator.now > ctx.collect_end:
            return  # too late, snapshot frozen
        partition_index = payload["partition_index"]
        if ctx.is_duplicate_contribution(partition_index, payload):
            return
        rows = ctx.resolve_contribution(device, payload)
        if rows is None:
            ctx.count_dropped_payload("stale_stamp")
            return
        bucket = self.rows_by_partition.get(partition_index)
        if bucket is None:
            return
        cap = ctx.config.partition_cardinality
        room = cap - len(bucket)
        if room <= 0:
            return
        accepted = rows[:room]
        bucket.extend(accepted)
        ctx.count_tuples(device.device_id, len(accepted))
        ctx.m_contributions.inc()
        ctx.m_tuples.inc(len(accepted))

    def end_collection(self) -> None:
        """Builders freeze, commit, and ship their partitions."""
        ctx = self.ctx
        for partition_index, builder in sorted(self.builder_by_partition.items()):
            device = ctx.device_of(builder)
            if ctx.network.is_dead(device.device_id):
                ctx.trace(f"{builder.op_id} dead at end of collection")
                continue
            rows = self.rows_by_partition.get(partition_index, [])
            cap = ctx.config.partition_cardinality
            if len(rows) > cap:
                rows = rows[:cap]
            if not rows:
                ctx.trace(f"{builder.op_id} collected no rows")
                continue
            commitment = commit_snapshot(rows)
            ctx.trace(
                f"{builder.op_id} snapshot frozen: {len(rows)} rows, "
                f"merkle={commitment[:12]}…"
            )
            ctx.mark_collection_end()
            ctx.m_snapshots.inc()
            ctx.audit(device, builder.op_id, "snapshot", len(rows))
            latency = device.compute_latency(float(len(rows)))
            ctx.simulator.schedule(
                latency,
                self._make_partition_send(builder, device, rows, commitment),
                f"{builder.op_id} ship partition",
            )

    def _make_partition_send(self, builder, device, rows, commitment):
        ctx = self.ctx

        def fire() -> None:
            if not ctx.network.is_online(device.device_id):
                ctx.trace(f"{builder.op_id} offline, partition not shipped")
                return
            partition_index = builder.params["partition_index"]
            consumers = [
                consumer
                for consumer in ctx.plan.consumers_of(builder.op_id)
                if consumer.role == OperatorRole.COMPUTER
                and consumer.params.get("backup_rank", 0) == 0
            ]
            ship_partition(
                ctx, device, partition_index, rows, commitment, consumers
            )
        return fire
