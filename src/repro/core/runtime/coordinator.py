"""Thin execution coordinator over the per-role operator runtimes.

:class:`ExecutionCoordinator` owns only the cross-cutting concerns of
one query execution: handler attachment, sealed-payload unwrapping,
message routing to the role runtimes, the phase timers (end of
collection, combiner deadline, cluster-stats deadline), and the run
horizon.  Everything role-specific lives in the runtimes
(:mod:`repro.core.runtime.contributor` … :mod:`.querier`) and every
resiliency decision lives in the pluggable
:class:`repro.core.runtime.strategy.StrategyRuntime`.
"""

from __future__ import annotations

from typing import Any

from repro.core.backup import BackupChain
from repro.core.qep import OperatorRole, QueryExecutionPlan
from repro.core.runtime.builder import BuilderRuntime
from repro.core.runtime.combiner import CombinerRuntime, CombinerState
from repro.core.runtime.computer import ComputerRuntime
from repro.core.runtime.context import ExecutionContext
from repro.core.runtime.contributor import ContributorRuntime
from repro.core.runtime.querier import QuerierRuntime
from repro.core.runtime.recovery import RecoveryConfig, RecoveryRuntime
from repro.core.runtime.report import ExecutionError, ExecutionReport
from repro.core.runtime.strategy import (
    BackupStrategy,
    OvercollectionStrategy,
    StrategyRuntime,
)
from repro.devices.edgelet import Edgelet
from repro.ml.distributed_kmeans import CentroidKnowledge
from repro.network.messages import Message, MessageKind
from repro.network.opnet import OpportunisticNetwork
from repro.network.simulator import Simulator

__all__ = ["ExecutionCoordinator", "infer_strategy"]


def infer_strategy(
    plan: QueryExecutionPlan, takeover_timeout: float = 5.0
) -> StrategyRuntime:
    """Pick the strategy a plan's metadata asks for.

    Backup mechanics apply only to aggregate plans planned with
    ``strategy="backup"``; everything else (including K-Means, which
    keeps its heartbeat cadence) runs under Overcollection.

    .. deprecated::
        Thin shim kept for callers holding only a finished QEP.  The
        canonical decision now lives on
        :meth:`repro.plan.compile.CompiledQuery.strategy_runtime`;
        compile through :func:`repro.plan.compile_query` instead of
        inferring from plan metadata after the fact.
    """
    metadata = plan.metadata
    if metadata.get("strategy") == "backup" and metadata.get("kind") == "aggregate":
        return BackupStrategy(takeover_timeout=takeover_timeout)
    return OvercollectionStrategy()


class ExecutionCoordinator:
    """Executes one query plan across the simulated edgelet swarm.

    Accepts the same arguments as the legacy ``EdgeletExecutor`` plus
    ``strategy`` (a :class:`StrategyRuntime`; inferred from the plan
    metadata when omitted) and ``takeover_timeout`` (used only by an
    inferred :class:`BackupStrategy`).

    Args:
        simulator: the discrete-event clock shared with the network.
        network: the opportunistic network the devices hang off.
        devices: device_id -> :class:`Edgelet` for every participant.
        plan: an assigned :class:`QueryExecutionPlan`.
        collection_window: virtual seconds devoted to the collection
            phase.
        deadline: virtual time by which the Querier must be served.
        secure_channels: seal every payload in an authenticated
            envelope (realistic, slower) or ship plain payloads through
            the same code paths (fast, for large-scale benches).
        contribution_copies: how many times each contributor transmits
            its contribution (staggered retransmissions improve delivery
            on lossy links; builders deduplicate with a Bloom filter so
            duplicates never skew the snapshot).
        audit_ledger: optional
            :class:`repro.manager.audit.AuditLedger`; when provided,
            every processing step appends a signed, hash-chained record
            (the evidence backing the Crowd Liability property).
        telemetry: the :class:`repro.telemetry.Telemetry` to record
            phase spans, counters, and profiles into; defaults to the
            simulator's instance.
        seed: randomness for contribution jitter.
        strategy: resiliency policy; ``None`` infers from the plan.
        takeover_timeout: replica stagger for an inferred backup
            strategy.
        transport: optional reliability overlay
            (:class:`repro.network.reliable.ReliableTransport`); when
            provided, every handler attach and every shipped payload
            goes through it instead of the raw network.
        recovery: optional :class:`RecoveryConfig` enabling phase
            watchdogs, participant reprovisioning, and graceful
            degradation; ``None`` keeps the legacy fail-hard behaviour.
        standby_devices: ordered pool of device ids the watchdog may
            re-recruit Computers from (typically the eligible
            processors the assignment pass left unassigned).
    """

    def __init__(
        self,
        simulator: Simulator,
        network: OpportunisticNetwork,
        devices: dict[str, Edgelet],
        plan: QueryExecutionPlan,
        collection_window: float = 30.0,
        deadline: float = 100.0,
        secure_channels: bool = True,
        extrapolate_lost: bool = True,
        contribution_copies: int = 1,
        audit_ledger: Any = None,
        telemetry: Any = None,
        seed: int = 0,
        strategy: StrategyRuntime | None = None,
        takeover_timeout: float = 5.0,
        transport: Any = None,
        recovery: RecoveryConfig | None = None,
        standby_devices: list[str] | None = None,
        contribution_cache: Any = None,
        fencing: bool = False,
        detector: Any = None,
    ):
        self.ctx = ExecutionContext(
            simulator=simulator,
            network=network,
            devices=devices,
            plan=plan,
            collection_window=collection_window,
            deadline=deadline,
            secure_channels=secure_channels,
            extrapolate_lost=extrapolate_lost,
            contribution_copies=contribution_copies,
            audit_ledger=audit_ledger,
            telemetry=telemetry,
            seed=seed,
            transport=transport,
            recovery=recovery,
            contribution_cache=contribution_cache,
            fencing=fencing,
            detector=detector,
        )
        self.contributor = ContributorRuntime(self.ctx)
        self.builder = BuilderRuntime(self.ctx)
        self.computer = ComputerRuntime(self.ctx)
        self.combiner = CombinerRuntime(self.ctx, self.computer)
        self.querier = QuerierRuntime(self.ctx)
        self.builder.index()
        self.computer.index()
        if strategy is None:
            strategy = infer_strategy(plan, takeover_timeout=takeover_timeout)
        self.strategy = strategy
        self.strategy.bind(self.ctx, self.builder, self.computer)
        self.recovery: RecoveryRuntime | None = None
        if recovery is not None:
            self.recovery = RecoveryRuntime(
                self.ctx,
                self.builder,
                self.computer,
                self.combiner,
                standby_devices or [],
                self.attach_device,
            )

    # -- convenience views over the shared context ---------------------------

    @property
    def simulator(self) -> Simulator:
        return self.ctx.simulator

    @property
    def network(self) -> OpportunisticNetwork:
        return self.ctx.network

    @property
    def devices(self) -> dict[str, Edgelet]:
        return self.ctx.devices

    @property
    def plan(self) -> QueryExecutionPlan:
        return self.ctx.plan

    @property
    def report(self) -> ExecutionReport:
        return self.ctx.report

    @property
    def telemetry(self) -> Any:
        return self.ctx.telemetry

    @property
    def kind(self) -> str:
        return self.ctx.kind

    @property
    def start_time(self) -> float:
        return self.ctx.start_time

    @property
    def query(self):
        return self.ctx.query

    @property
    def config(self):
        return self.ctx.config

    @property
    def collect_end(self) -> float:
        return self.ctx.collect_end

    @property
    def deadline_at(self) -> float:
        return self.ctx.deadline_at

    # -- public state accessors (chaos invariants, tests, benches) -----------

    @property
    def combiners(self) -> dict[str, CombinerState]:
        """Both combiner states, keyed ``combiner``/``combiner-backup``."""
        return self.combiner.states

    @property
    def aggregate_indices_per_group(self) -> list[list[int]]:
        """Vertical-partitioning aggregate slices, one list per group."""
        return self.computer.aggregate_indices_per_group

    @property
    def builder_rows(self) -> dict[int, list[dict[str, Any]]]:
        """Primary builders' collected rows, keyed by partition index."""
        return self.builder.rows_by_partition

    @property
    def takeover_log(self) -> list[tuple[float, str, int]]:
        """(time, base op, rank) per replica takeover; empty without one."""
        return getattr(self.strategy, "takeover_log", [])

    @property
    def chains(self) -> dict[str, BackupChain]:
        """The backup replica chains (empty for overcollection runs)."""
        return getattr(self.strategy, "chains", {})

    @property
    def fire_log(self) -> list[tuple[float, tuple[int, int], str, int]]:
        """(time, cell, device, generation) per partial-send fire."""
        return self.ctx.fire_log

    @property
    def arrival_log(
        self,
    ) -> list[tuple[float, tuple[int, int], str, str, int, str]]:
        """(time, cell, combiner op, sender, generation, disposition)
        per combiner-side partial arrival."""
        return self.ctx.arrival_log

    @property
    def generations(self) -> dict[tuple[int, int], int]:
        """Current fencing generation per reprovisioned cell."""
        return self.ctx.generations

    # -- run -----------------------------------------------------------------

    def run(self) -> ExecutionReport:
        """Execute the plan to the deadline and return the report."""
        horizon = self.start()
        self.ctx.simulator.run_until(horizon)
        return self.finish()

    def start(self) -> float:
        """Wire handlers and arm every phase timer; returns the horizon.

        Split out of :meth:`run` so a workload engine can start several
        executions on one shared clock and advance them together —
        each query's events interleave on the simulator, and
        :meth:`finish` seals its report once its own horizon passes.
        """
        ctx = self.ctx
        query_id = ctx.plan.query_id
        self.attach_handlers()
        self.contributor.schedule_contributions()
        ctx.simulator.schedule_at(
            ctx.collect_end, self.end_collection, f"end-collection:{query_id}"
        )
        if ctx.kind == "kmeans":
            self.computer.schedule_heartbeats()
        ctx.simulator.schedule_at(
            ctx.deadline_at, self.finalize, f"combiner-deadline:{query_id}"
        )
        if self.recovery is not None:
            self.recovery.arm()
        horizon = ctx.deadline_at + self.result_slack()
        if ctx.stats_query is not None:
            ctx.simulator.schedule_at(
                ctx.deadline_at + 0.6 * self.stats_window(),
                self.finalize_stats,
                f"cluster-stats-deadline:{query_id}",
            )
            horizon += self.stats_window()
        self.horizon = horizon
        return horizon

    def finish(self) -> ExecutionReport:
        """Seal and return the report (call once the horizon passed)."""
        ctx = self.ctx
        network_stats = getattr(ctx.network, "stats", None)
        if network_stats is not None:
            ctx.report.network_stats = network_stats.as_dict()
        if ctx.transport is not None:
            transport_stats = getattr(ctx.transport, "stats", None)
            if transport_stats is not None:
                ctx.report.transport_stats = transport_stats.as_dict()
        if ctx.span_combination is not None:
            ctx.span_combination.finish(at=ctx.simulator.now)
        ctx.span_execution.finish(at=ctx.simulator.now)
        return ctx.report

    def result_slack(self) -> float:
        """Extra virtual time for the final-result message to land."""
        return max(5.0, 0.1 * self.ctx.deadline)

    def stats_window(self) -> float:
        """Extra virtual time granted to the Group-By-on-clusters round."""
        return max(10.0, 0.3 * self.ctx.deadline)

    # -- wiring --------------------------------------------------------------

    def attach_handlers(self) -> None:
        """Register one unwrap-and-dispatch handler per plan device."""
        ctx = self.ctx
        attached: set[str] = set()
        for operator in ctx.plan.operators():
            if operator.role == OperatorRole.DATA_CONTRIBUTOR:
                device_id = operator.params["device"]
            elif operator.assigned_to is not None:
                device_id = operator.assigned_to
            else:
                continue
            if device_id in attached:
                continue
            attached.add(device_id)
            device = ctx.devices.get(device_id)
            if device is None:
                raise ExecutionError(f"unknown device {device_id} in plan")
            self.attach_device(device)
        if self.recovery is not None:
            # standbys join the swarm up-front (idle but reachable), so
            # the watchdog can see their liveness when re-recruiting
            for device_id in self.recovery.standbys:
                device = ctx.devices.get(device_id)
                if device is None or device_id in attached:
                    continue
                attached.add(device_id)
                self.attach_device(device)

    def attach_device(self, device: Edgelet) -> None:
        """Attach one device's receive path (transport-aware); also the
        hook the recovery watchdog uses to wire re-recruited standbys."""
        self.ctx.attach(device.device_id, self.make_handler(device))

    def make_handler(self, device: Edgelet):
        """One device's receive path: unwrap, then route by kind."""
        def handle(message: Message) -> None:
            if (
                message.kind is MessageKind.HEARTBEAT
                and isinstance(message.payload, dict)
                and message.payload.get("__probe__")
            ):
                # failure-detector liveness probe: a plain (unsealed)
                # dict the transport already ACKed — never unwrap it
                return
            payload = self.ctx.unwrap(device, message)
            if payload is None:
                return
            self.dispatch(device, message.kind, payload, sender=message.sender)
        return handle

    # -- message routing -----------------------------------------------------

    def dispatch(
        self,
        device: Edgelet,
        kind: MessageKind,
        payload: Any,
        sender: str | None = None,
    ) -> None:
        """Route one unwrapped payload to the owning role runtime."""
        ctx = self.ctx
        if kind == MessageKind.CONTRIBUTION:
            ctx.count_role_dispatch("snapshot_builder")
            self.strategy.on_contribution(device, payload)
        elif kind == MessageKind.PARTITION:
            ctx.count_role_dispatch("computer")
            self.strategy.on_partition(device, payload)
        elif kind == MessageKind.PARTIAL_RESULT:
            ctx.count_role_dispatch("computing_combiner")
            self.combiner.on_partial_result(device, payload, sender=sender)
        elif kind == MessageKind.KNOWLEDGE:
            self._route_knowledge(device, payload)
        elif kind == MessageKind.FINAL_RESULT:
            ctx.count_role_dispatch("querier")
            self.querier.on_final_result(device, payload)
        elif kind == MessageKind.CONTROL:
            ctx.count_role_dispatch("strategy")
            self.strategy.on_control(device, payload)

    def _route_knowledge(self, device: Edgelet, payload: dict[str, Any]) -> None:
        """KNOWLEDGE fan-in: final centroids, combiner intake, or gossip."""
        ctx = self.ctx
        op_id = payload.get("op_id", "")
        if "final_centroids" in payload:
            ctx.count_role_dispatch("computer")
            self.computer.on_final_centroids(device, payload)
            return
        if op_id in self.combiner.states:
            ctx.count_role_dispatch("computing_combiner")
            self.combiner.on_knowledge(device, payload)
            return
        ctx.count_role_dispatch("computer")
        knowledge = CentroidKnowledge.from_payload(payload["knowledge"])
        self.computer.on_peer_knowledge(op_id, knowledge)

    # -- phase timers --------------------------------------------------------

    def end_collection(self) -> None:
        """The collection window closed; the strategy decides who fires."""
        self.strategy.end_collection()

    def finalize(self) -> None:
        """The combiner deadline fired."""
        self.combiner.finalize()

    def finalize_stats(self) -> None:
        """The Group-By-on-clusters deadline fired."""
        self.combiner.finalize_stats()
