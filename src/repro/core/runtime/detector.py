"""Adaptive φ-accrual failure detection (Hayashibara et al.).

The fixed watchdog in :mod:`repro.core.runtime.recovery` asks a binary
question — "is the device offline?" — which a network partition or a
gray failure answers wrongly: the device is *online* yet its results
will never arrive (partition) or arrive far too late (gray).  The
φ-accrual detector instead accrues a continuous *suspicion level* from
per-link delivery evidence:

    φ(device) = -log10( P(a new ack would arrive this late) )

where the probability comes from a Normal fit over the device's recent
inter-arrival times of transport acknowledgements.  φ grows without
bound while a device stays silent, so one threshold trades detection
latency against false positives *adaptively*: a slow-but-alive device
stretches its own inter-arrival distribution and is not falsely killed,
while a partitioned or gray device blows past the threshold quickly.

Evidence arrives through observer callbacks registered on
:class:`~repro.network.reliable.ReliableTransport` — this module never
imports the transport (enforced by ``tools/check_layering.py``); the
wiring lives in :class:`~repro.core.runtime.recovery.RecoveryRuntime`.
Explicit negative evidence (timed-out transfers and probes) adds a
per-consecutive-failure suspicion boost, so conclusive silence
escalates faster than a mere gap between acks.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass

__all__ = ["DetectorConfig", "PhiAccrualDetector"]

_SQRT2 = math.sqrt(2.0)


@dataclass(frozen=True)
class DetectorConfig:
    """Tunable knobs of the φ-accrual detector.

    Attributes:
        threshold: suspicion level above which a device is *suspected*
            (8 ≈ "one false positive per 10^8 arrivals" in the classic
            parameterisation).
        window: recent ack inter-arrival samples kept per device.
        min_std: floor on the fitted standard deviation, so a burst of
            identical RTTs cannot make the detector hair-triggered.
        acceptable_pause: grace added to the expected inter-arrival
            mean — absorbs scheduling jitter of cadenced traffic.
        failure_boost: suspicion added per *consecutive* failed
            transfer/probe on the device's links (negative evidence).
        min_samples: arrivals needed before φ is computed; devices with
            fewer report suspicion from negative evidence only.
    """

    threshold: float = 8.0
    window: int = 32
    min_std: float = 0.5
    acceptable_pause: float = 2.0
    failure_boost: float = 3.0
    min_samples: int = 2

    def __post_init__(self) -> None:
        if self.threshold <= 0:
            raise ValueError("threshold must be positive")
        if self.window < 2:
            raise ValueError("window must be >= 2")
        if self.min_std <= 0:
            raise ValueError("min_std must be positive")
        if self.acceptable_pause < 0:
            raise ValueError("acceptable_pause must be non-negative")
        if self.failure_boost < 0:
            raise ValueError("failure_boost must be non-negative")
        if self.min_samples < 1:
            raise ValueError("min_samples must be >= 1")


class _DeviceHistory:
    """Arrival history and failure streak for one monitored device."""

    __slots__ = ("intervals", "last_arrival", "consecutive_failures")

    def __init__(self, window: int):
        self.intervals: deque[float] = deque(maxlen=window)
        self.last_arrival: float | None = None
        self.consecutive_failures = 0


class PhiAccrualDetector:
    """Accrues per-device suspicion from transport delivery evidence.

    Feed it with :meth:`observe_ack` / :meth:`observe_failure` (wired to
    the transport's link observers) and query :meth:`phi`,
    :meth:`suspicion`, or :meth:`suspect` with the current virtual time.
    Pure bookkeeping — no RNG, no timers, no network imports — so
    enabling it never perturbs any seeded stream.
    """

    def __init__(self, config: DetectorConfig | None = None):
        self.config = config or DetectorConfig()
        self._histories: dict[str, _DeviceHistory] = {}

    # -- evidence -----------------------------------------------------------

    def on_link_event(
        self, sender: str, recipient: str, outcome: str, rtt: float | None, now: float
    ) -> None:
        """Transport link-observer adapter: fold one terminal transfer
        outcome on ``sender → recipient`` into the recipient's history."""
        if outcome == "acked":
            self.observe_ack(recipient, now)
        elif outcome in ("gave_up", "circuit_open", "peer_dead"):
            self.observe_failure(recipient)
        # budget_exhausted says nothing about *this* peer

    def observe_ack(self, device_id: str, now: float) -> None:
        """The device acknowledged a transfer at virtual time ``now``."""
        history = self._history(device_id)
        if history.last_arrival is not None and now > history.last_arrival:
            history.intervals.append(now - history.last_arrival)
        history.last_arrival = now
        history.consecutive_failures = 0

    def observe_failure(self, device_id: str) -> None:
        """A transfer or probe to the device conclusively failed."""
        self._history(device_id).consecutive_failures += 1

    def forget(self, device_id: str) -> None:
        """Drop a device's history (after reprovisioning replaces it)."""
        self._histories.pop(device_id, None)

    # -- suspicion ----------------------------------------------------------

    def phi(self, device_id: str, now: float) -> float:
        """The classic φ value from arrival history alone."""
        history = self._histories.get(device_id)
        if (
            history is None
            or history.last_arrival is None
            or len(history.intervals) < self.config.min_samples
        ):
            return 0.0
        elapsed = now - history.last_arrival
        if elapsed <= 0:
            return 0.0
        intervals = history.intervals
        mean = sum(intervals) / len(intervals) + self.config.acceptable_pause
        variance = sum((x - mean) ** 2 for x in intervals) / len(intervals)
        std = max(math.sqrt(variance), self.config.min_std)
        # P(an inter-arrival gap exceeds `elapsed`) under the Normal fit
        p_later = 0.5 * math.erfc((elapsed - mean) / (std * _SQRT2))
        if p_later <= 0.0:
            return float("inf")
        return -math.log10(p_later)

    def suspicion(self, device_id: str, now: float) -> float:
        """φ plus the negative-evidence boost for consecutive failures."""
        history = self._histories.get(device_id)
        boost = 0.0
        if history is not None:
            boost = self.config.failure_boost * history.consecutive_failures
        return self.phi(device_id, now) + boost

    def suspect(self, device_id: str, now: float) -> bool:
        """Whether the device's suspicion exceeds the threshold."""
        return self.suspicion(device_id, now) >= self.config.threshold

    def snapshot(self, now: float) -> dict[str, float]:
        """Suspicion level of every monitored device (for reports)."""
        return {
            device_id: self.suspicion(device_id, now)
            for device_id in sorted(self._histories)
        }

    # -- internals ----------------------------------------------------------

    def _history(self, device_id: str) -> _DeviceHistory:
        history = self._histories.get(device_id)
        if history is None:
            history = self._histories[device_id] = _DeviceHistory(self.config.window)
        return history
