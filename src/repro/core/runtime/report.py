"""Execution outcome records shared by every role runtime."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.query.groupby import GroupingSetsResult

__all__ = ["ExecutionError", "ExecutionReport", "KMeansOutcome"]


class ExecutionError(Exception):
    """Raised on executor misconfiguration (not on runtime faults)."""


@dataclass(frozen=True)
class KMeansOutcome:
    """Final clustering produced by the Computing Combiner.

    Attributes:
        centroids: ``(k, d)`` merged centroids.
        weights: data points backing each centroid.
        knowledges_merged: how many Computer knowledges reached the
            combiner before the deadline.
        cluster_stats: optional Group-By-on-clusters result.
    """

    centroids: np.ndarray
    weights: np.ndarray
    knowledges_merged: int
    cluster_stats: GroupingSetsResult | None = None


@dataclass
class ExecutionReport:
    """Everything an experiment wants to know about one execution.

    Attributes:
        query_id: the executed query.
        success: whether the Querier received a final result.
        result: the aggregate result (``aggregate`` kind).
        kmeans: the clustering outcome (``kmeans`` kind).
        tally: partition tally summary from the winning combiner.
        received_partitions: distinct (partition, group) cells received.
        delivered_by: which combiner delivered first
            (``"combiner"``/``"combiner-backup"``/``None``).
        completion_time: virtual time of result delivery.
        network_stats: counters from the opportunistic network.
        tuples_per_device: raw tuples handled per processing device.
        trace: time-ordered human-readable event log (a rendered view;
            the telemetry spans are the structured source of truth).
        heartbeats_run: heartbeats executed (kmeans only).
        convergence_trace: per-heartbeat mean centroid shift across the
            live Computers (kmeans only) — the "follow the execution in
            real time" signal the demo GUI plots.
        telemetry: the :class:`repro.telemetry.Telemetry` this execution
            recorded into.
        phase_spans: this execution's phase spans, keyed by phase name
            (``execution``/``collection``/``computation``/
            ``combination``); consumed by
            :func:`repro.manager.trace.phase_timeline`.
        degraded: the delivered result is *partial* — a combiner could
            not reach quorum for every vertical group by the deadline
            and emitted what it had, explicitly labelled (graceful
            degradation, never silent).
        coverage: for a degraded result, which groups were covered and
            by how many partitions (``groups_covered``,
            ``groups_total``, ``per_group_received``,
            ``received_fraction``).
        validity_bound: worst-case relative-error bound for a degraded
            result, from :func:`repro.core.validity.partial_validity_bound`.
        transport_stats: counters from the reliability layer, when one
            was wired (retransmissions, ACKs, duplicate suppression...).
        reprovisions: ``(time, op_id, old_device, new_device)`` per
            watchdog-triggered participant reprovisioning.
    """

    query_id: str
    success: bool = False
    result: GroupingSetsResult | None = None
    kmeans: KMeansOutcome | None = None
    tally: dict[str, Any] = field(default_factory=dict)
    received_partitions: int = 0
    delivered_by: str | None = None
    completion_time: float | None = None
    network_stats: dict[str, float] = field(default_factory=dict)
    tuples_per_device: dict[str, int] = field(default_factory=dict)
    trace: list[tuple[float, str]] = field(default_factory=list)
    heartbeats_run: int = 0
    convergence_trace: list[tuple[int, float]] = field(default_factory=list)
    telemetry: Any = None
    phase_spans: dict[str, Any] = field(default_factory=dict)
    degraded: bool = False
    coverage: dict[str, Any] = field(default_factory=dict)
    validity_bound: float | None = None
    transport_stats: dict[str, float] = field(default_factory=dict)
    reprovisions: list[tuple[float, str, str, str]] = field(default_factory=list)
