"""Incremental partition maintenance across standing-query windows.

A standing query re-executes on a cadence, and most of a window's
collection traffic is redundant: a contributor whose rows have not
changed since the previous window re-ships the exact same payload to
the exact same Snapshot Builder.  The :class:`ContributionCache` turns
that redundancy into savings — the device-local retained state both
ends of a contribution edge would keep in a real deployment:

* the **contributor side** remembers, per ``(contributor, builder)``
  edge, the digest of the rows last shipped in full.  When the current
  rows hash to the same digest *and* the partition's builder device is
  unchanged, the contributor ships a ~:data:`STAMP_BYTES` delta stamp
  instead of the full payload;
* the **builder side** resolves a received stamp back to the retained
  rows.  A stamp that no longer resolves (the cache was invalidated
  between send and receive — churn took the edge down) is dropped and
  counted, and the *next* window falls back to full recollection
  because the digest/edge no longer matches at send time.

Churn invalidation is the cache's whole correctness story: when a
device departs, :meth:`invalidate_device` removes every edge touching
it, so a re-assigned partition (new builder device) or a fresh
contributor can never be served stale rows — the edge key misses and
the full payload is shipped and re-retained.

The cache is deliberately a *core*-layer object with no upward
imports: the continuous engine (an upper layer) constructs one, threads
it through consecutive windows' :class:`~repro.core.runtime.
ExecutionCoordinator`\\ s, and reads the per-window savings counters.
One execution alone never benefits — the cache only pays off across
windows, which is exactly the standing-query shape.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

__all__ = ["STAMP_BYTES", "ContributionCache"]

#: Wire size of a delta stamp (digest + partition coordinates) — the
#: floor the opportunistic network charges per message anyway.
STAMP_BYTES = 40


def contribution_digest(rows: list[dict[str, Any]]) -> str:
    """Order-sensitive canonical digest of a contribution's rows."""
    document = json.dumps(rows, sort_keys=True, default=repr)
    return hashlib.sha256(document.encode()).hexdigest()[:24]


class ContributionCache:
    """Retained contribution state shared by both ends of each edge.

    Keys are ``(contributor_device_id, builder_device_id)`` — one entry
    per dataflow edge, so Backup replicas (distinct builder devices for
    the same partition) each maintain their own retained copy, exactly
    like real device-local storage would.
    """

    def __init__(self) -> None:
        # (contributor, builder) -> (digest, retained rows)
        self._entries: dict[tuple[str, str], tuple[str, list[dict[str, Any]]]] = {}
        # counters since the last take_window_stats() call
        self.stamped = 0
        self.full = 0
        self.bytes_saved = 0
        self.stale_stamps = 0

    digest = staticmethod(contribution_digest)

    # -- contributor side ---------------------------------------------------

    def match(self, contributor: str, builder: str, digest: str) -> bool:
        """True when the edge's retained digest equals ``digest`` — the
        contributor may ship a stamp instead of the full rows."""
        entry = self._entries.get((contributor, builder))
        return entry is not None and entry[0] == digest

    def store(
        self,
        contributor: str,
        builder: str,
        digest: str,
        rows: list[dict[str, Any]],
    ) -> None:
        """Retain a full shipment on its edge (both ends keep a copy)."""
        self._entries[(contributor, builder)] = (digest, [dict(r) for r in rows])

    def count_stamp(self, full_size: int) -> None:
        """Account one stamped shipment that replaced ``full_size`` bytes."""
        self.stamped += 1
        self.bytes_saved += max(full_size, 64) - max(STAMP_BYTES, 64)

    def count_full(self) -> None:
        self.full += 1

    # -- builder side -------------------------------------------------------

    def resolve(
        self, contributor: str, builder: str, digest: str
    ) -> list[dict[str, Any]] | None:
        """Map a received stamp back to the retained rows, or ``None``
        when the edge was invalidated since the stamp was sent."""
        entry = self._entries.get((contributor, builder))
        if entry is None or entry[0] != digest:
            self.stale_stamps += 1
            return None
        return [dict(r) for r in entry[1]]

    # -- churn invalidation -------------------------------------------------

    def invalidate_device(self, device_id: str) -> int:
        """Drop every edge touching a departed device; returns the
        number of entries removed (full recollection follows)."""
        stale = [
            key for key in self._entries if device_id in key
        ]
        for key in stale:
            del self._entries[key]
        return len(stale)

    # -- accounting ---------------------------------------------------------

    @property
    def entries(self) -> int:
        return len(self._entries)

    def take_window_stats(self) -> dict[str, int]:
        """Return and reset the counters accumulated since the last take
        (the continuous engine calls this once per window boundary)."""
        stats = {
            "stamped": self.stamped,
            "full": self.full,
            "bytes_saved": self.bytes_saved,
            "stale_stamps": self.stale_stamps,
        }
        self.stamped = 0
        self.full = 0
        self.bytes_saved = 0
        self.stale_stamps = 0
        return stats
