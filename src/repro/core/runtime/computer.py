"""Computer runtime: aggregate folding and heartbeat-cadenced K-Means.

A Computer receives one column-group projection of one hash partition.
Aggregate Computers fold it into a partial Group-By state immediately
and ship the partial to both combiners.  K-Means Computers keep the
partition and run the local-convergence / synchronization loop of
Section 2.2 on the shared heartbeat cadence, gossiping centroid
knowledge between beats and shipping it to the combiners on the last
one.  The demo's query (ii) adds a final round: once the combiner
publishes merged centroids, every Computer labels its partition and
computes per-cluster grouped statistics.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.qep import Operator, OperatorRole
from repro.core.runtime.context import ExecutionContext
from repro.devices.edgelet import Edgelet
from repro.ml.distributed_kmeans import CentroidKnowledge, KMeansComputerState
from repro.network.messages import MessageKind
from repro.query.columnar import evaluate_group_by_columnar
from repro.query.groupby import GroupByQuery, evaluate_group_by

__all__ = ["ComputerRuntime"]

COMBINER_NAMES = ("combiner", "combiner-backup")


class ComputerRuntime:
    """Primary (rank-0) Computer execution for both query kinds."""

    role = OperatorRole.COMPUTER

    def __init__(self, ctx: ExecutionContext):
        self.ctx = ctx
        self.computers: list[Operator] = []
        self.aggregate_indices_per_group: list[list[int]] = [
            [] for _ in ctx.column_groups
        ]
        self.kmeans_states: dict[int, KMeansComputerState] = {}
        self.kmeans_rows: dict[int, list[dict[str, Any]]] = {}
        # first-wins guard against duplicated PARTITION messages: a
        # Computer runs its partition exactly once, so a network-level
        # duplicate must not double-count tuples or recompute partials
        self.partitions_seen: set[tuple[int, int]] = set()

    def index(self) -> None:
        """Collect the primary Computers and their aggregate slices."""
        for computer in self.ctx.plan.operators(OperatorRole.COMPUTER):
            if computer.params.get("backup_rank", 0) != 0:
                continue
            self.computers.append(computer)
            group_index = computer.params["group_index"]
            indices = computer.params.get("aggregate_indices")
            if indices is not None:
                self.aggregate_indices_per_group[group_index] = list(indices)

    def find(self, partition_index: int, group_index: int) -> Operator | None:
        """The primary Computer owning one (partition, group) cell."""
        for computer in self.computers:
            if (
                computer.params["partition_index"] == partition_index
                and computer.params.get("group_index", 0) == group_index
            ):
                return computer
        return None

    # -- partition intake ----------------------------------------------------

    def on_partition(self, device: Edgelet, payload: dict[str, Any]) -> None:
        """Run the owning Computer on a freshly shipped partition."""
        ctx = self.ctx
        partition_index = payload["partition_index"]
        group_index = payload.get("group_index", 0)
        if (partition_index, group_index) in self.partitions_seen:
            return  # duplicated in transit; this Computer already ran
        self.partitions_seen.add((partition_index, group_index))
        rows = payload["rows"]
        ctx.count_tuples(device.device_id, len(rows))
        computer = self.find(partition_index, group_index)
        if computer is None:
            return
        if ctx.kind == "aggregate":
            self.run_aggregate(
                device, computer, rows, generation=payload.get("generation", 0)
            )
        else:
            self.init_kmeans(device, computer, rows)

    def run_aggregate(
        self,
        device: Edgelet,
        computer: Operator,
        rows: list[dict[str, Any]],
        generation: int = 0,
    ) -> None:
        """Fold one partition into a partial state and ship it."""
        ctx = self.ctx
        indices = computer.params.get("aggregate_indices") or list(
            range(len(ctx.query.aggregates))
        )
        sub_query = GroupByQuery(
            grouping_sets=ctx.query.grouping_sets,
            aggregates=tuple(ctx.query.aggregates[i] for i in indices),
        )
        with ctx.prof_aggregate:
            if ctx.engine == "columnar":
                # vectorized fold over column blocks; the resulting
                # PartialGroups is bit-identical to the row walk, so
                # the sealed payload bytes (and the latency draws they
                # feed) do not move
                partial = evaluate_group_by_columnar(sub_query, rows)
            else:
                partial = evaluate_group_by(sub_query, rows)
        ctx.audit(device, computer.op_id, "partial", len(rows))
        latency = device.compute_latency(float(len(rows)))
        payload = {
            "__aggregate__": True,
            "partition_index": computer.params["partition_index"],
            "group_index": computer.params.get("group_index", 0),
            "partial": partial.to_dict(),
        }
        if ctx.fencing:
            # the fencing token travels only when the feature is on:
            # the extra key changes sealed-envelope sizes, which feed
            # latency draws, which must stay legacy-byte-identical
            payload["generation"] = generation
        ctx.simulator.schedule(
            latency,
            self._make_partial_send(device, computer, payload, generation),
            f"{computer.op_id} partial",
        )

    def _make_partial_send(self, device, computer, payload, generation: int = 0):
        ctx = self.ctx

        def fire() -> None:
            ctx.mark_computation_start()
            if not ctx.network.is_online(device.device_id):
                ctx.trace(f"{computer.op_id} offline, partial lost")
                return
            ctx.trace(f"{computer.op_id} partial result computed and sent")
            cell = (payload["partition_index"], payload.get("group_index", 0))
            ctx.fire_log.append(
                (ctx.simulator.now, cell, device.device_id, generation)
            )
            for name in COMBINER_NAMES:
                combiner_op = ctx.plan.operator(name)
                target = ctx.device_of(combiner_op)
                ctx.ship(
                    device,
                    target,
                    MessageKind.PARTIAL_RESULT,
                    dict(payload, op_id=name),
                    size_hint=512,
                )
        return fire

    # -- kmeans specifics ----------------------------------------------------

    def init_kmeans(
        self, device: Edgelet, computer: Operator, rows: list[dict[str, Any]]
    ) -> None:
        """Seed the per-partition K-Means state from usable feature rows."""
        ctx = self.ctx
        features = [
            [row[c] for c in ctx.feature_columns]
            if all(row.get(c) is not None for c in ctx.feature_columns)
            else None
            for row in rows
        ]
        points = [f for f in features if f is not None]
        if not points:
            ctx.trace(f"{computer.op_id} received no usable feature rows")
            return
        partition_index = computer.params["partition_index"]
        self.kmeans_states[partition_index] = KMeansComputerState(
            partition=np.asarray(points, dtype=float),
            k=ctx.kmeans_k,
            seed=partition_index,
        )
        if ctx.stats_query is not None:
            self.kmeans_rows[partition_index] = rows
        ctx.trace(
            f"{computer.op_id} initialized K-Means on {len(points)} points"
        )
        ctx.mark_computation_start()

    def schedule_heartbeats(self) -> None:
        """Arm the shared heartbeat cadence over the computation window."""
        ctx = self.ctx
        if ctx.heartbeats <= 0:
            from repro.core.runtime.report import ExecutionError

            raise ExecutionError("kmeans plan without heartbeats")
        window_start = ctx.collect_end
        window_end = ctx.start_time + ctx.deadline * 0.95
        interval = (window_end - window_start) / ctx.heartbeats
        for beat in range(1, ctx.heartbeats + 1):
            at = window_start + beat * interval
            last = beat == ctx.heartbeats
            ctx.simulator.schedule_at(
                at,
                self._make_heartbeat(last),
                f"heartbeat {beat}",
            )

    def _make_heartbeat(self, last: bool):
        ctx = self.ctx

        def fire() -> None:
            ctx.report.heartbeats_run += 1
            ctx.m_heartbeats.inc()
            beat = ctx.report.heartbeats_run
            ctx.telemetry.tracer.event(
                "heartbeat", at=ctx.simulator.now,
                query_id=ctx.plan.query_id, beat=beat,
            )
            shifts: list[float] = []
            for computer in self.computers:
                partition_index = computer.params["partition_index"]
                state = self.kmeans_states.get(partition_index)
                if state is None:
                    continue
                device = ctx.device_of(computer)
                if not ctx.network.is_online(device.device_id):
                    continue
                previous = state.knowledge
                with ctx.prof_heartbeat:
                    knowledge = state.heartbeat()
                if previous is not None and previous.k == knowledge.k:
                    from repro.ml.metrics import centroid_matching_distance

                    shifts.append(
                        centroid_matching_distance(
                            previous.centroids, knowledge.centroids
                        )
                    )
                payload = {
                    "__aggregate__": True,
                    "partition_index": partition_index,
                    "knowledge": knowledge.to_payload(),
                }
                if last:
                    # ship to the combiner and its active backup
                    for name in COMBINER_NAMES:
                        combiner_op = ctx.plan.operator(name)
                        target = ctx.device_of(combiner_op)
                        ctx.ship(
                            device, target, MessageKind.KNOWLEDGE,
                            dict(payload, op_id=name), size_hint=512,
                        )
                else:
                    for peer in self.computers:
                        if peer.op_id == computer.op_id:
                            continue
                        target = ctx.device_of(peer)
                        ctx.ship(
                            device, target, MessageKind.KNOWLEDGE,
                            dict(payload, op_id=peer.op_id), size_hint=512,
                        )
            if shifts:
                ctx.report.convergence_trace.append(
                    (beat, sum(shifts) / len(shifts))
                )
        return fire

    def on_peer_knowledge(self, op_id: str, knowledge: CentroidKnowledge) -> None:
        """Merge a gossiped sibling knowledge into the local state."""
        for computer in self.computers:
            if computer.op_id == op_id:
                state = self.kmeans_states.get(computer.params["partition_index"])
                if state is not None:
                    state.receive(knowledge)
                return

    # -- phase 2b: Group By on the resulting clusters ------------------------

    def on_final_centroids(self, device: Edgelet, payload: dict[str, Any]) -> None:
        """A Computer labels its partition with the final centroids and
        computes the grouped statistics per cluster."""
        ctx = self.ctx
        if ctx.stats_query is None:
            return
        op_id = payload.get("op_id", "")
        computer = next((c for c in self.computers if c.op_id == op_id), None)
        if computer is None:
            return
        partition_index = computer.params["partition_index"]
        rows = self.kmeans_rows.get(partition_index)
        if not rows:
            return
        centroids = np.asarray(payload["final_centroids"], dtype=float)
        labeled = []
        for row in rows:
            features = [row.get(c) for c in ctx.feature_columns]
            if any(value is None for value in features):
                continue
            point = np.asarray(features, dtype=float)
            distances = np.sum((centroids - point) ** 2, axis=1)
            labeled.append(dict(row, cluster=int(np.argmin(distances))))
        partial = evaluate_group_by(ctx.stats_query, labeled)
        ctx.audit(device, computer.op_id, "cluster_stats", len(labeled))
        latency = device.compute_latency(float(max(len(labeled), 1)))

        def send() -> None:
            if not ctx.network.is_online(device.device_id):
                return
            for name in COMBINER_NAMES:
                target = ctx.device_of(ctx.plan.operator(name))
                ctx.ship(
                    device, target, MessageKind.PARTIAL_RESULT,
                    {
                        "__aggregate__": True,
                        "op_id": name,
                        "stats": True,
                        "partition_index": partition_index,
                        "group_index": 0,
                        "partial": partial.to_dict(),
                    },
                    size_hint=512,
                )

        ctx.simulator.schedule(latency, send, f"{op_id} cluster stats")
