"""Pluggable resiliency strategies for the execution coordinator.

The two strategies of the paper's taxonomy are policy objects behind one
interface instead of executor subclasses:

* :class:`OvercollectionStrategy` — collect ``n + m`` partitions and
  tolerate losing up to ``m`` of them; the primary builders/computers
  run on schedule and nothing else moves.  Requires distributive
  operators.
* :class:`BackupStrategy` — every Snapshot Builder and Computer carries
  an ordered chain of passive replicas holding the same inputs.  The
  primary (rank 0) executes on schedule and broadcasts a small
  *shipped* control marker; each replica arms a takeover timer at
  ``rank * takeover_timeout`` past the primary's firing point and
  executes from its own input copy unless it heard a marker from a
  lower rank.  Duplicates are possible when the marker itself is lost;
  consumers deduplicate (Computers keep the first partition, the
  Combiner's partial recording is idempotent per cell).  This trades
  latency for applicability: it does not require distributive
  operators.

The coordinator routes CONTRIBUTION/PARTITION/CONTROL messages and the
end-of-collection timer through whichever strategy it was given; the
strategy decides who executes and when, then hands the actual operator
work back to the role runtimes (or runs the replica-side equivalents).
"""

from __future__ import annotations

from typing import Any

from repro.core.backup import BackupChain, BackupConfig
from repro.core.qep import Operator, OperatorRole
from repro.core.runtime.builder import BuilderRuntime, commit_snapshot, ship_partition
from repro.core.runtime.computer import ComputerRuntime
from repro.core.runtime.context import ExecutionContext
from repro.core.runtime.report import ExecutionError
from repro.devices.edgelet import Edgelet
from repro.network.messages import MessageKind
from repro.query.groupby import GroupByQuery, evaluate_group_by

__all__ = [
    "StrategyRuntime",
    "OvercollectionStrategy",
    "BackupStrategy",
    "base_op_id",
    "rank_of",
]

COMBINER_NAMES = ("combiner", "combiner-backup")


def base_op_id(op_id: str) -> str:
    """Strip the ``.bN`` replica suffix: ``builder[2].b1`` -> ``builder[2]``."""
    return op_id.split(".b")[0]


def rank_of(operator: Operator) -> int:
    return operator.params.get("backup_rank", 0)


class StrategyRuntime:
    """Resiliency policy: who collects, who fires, and when.

    A strategy is bound once per execution via :meth:`bind` and then
    receives every resiliency-relevant event from the coordinator.  It
    never touches coordinator internals — everything it needs flows
    through the :class:`ExecutionContext` and the role runtimes it was
    bound to.
    """

    name = "strategy"

    def bind(
        self,
        ctx: ExecutionContext,
        builder: BuilderRuntime,
        computer: ComputerRuntime,
    ) -> None:
        """Attach the execution's context and role runtimes; validate."""
        self.ctx = ctx
        self.builder = builder
        self.computer = computer
        self.takeover_log: list[tuple[float, str, int]] = []

    def on_contribution(self, device: Edgelet, payload: dict[str, Any]) -> None:
        raise NotImplementedError

    def end_collection(self) -> None:
        raise NotImplementedError

    def on_partition(self, device: Edgelet, payload: dict[str, Any]) -> None:
        raise NotImplementedError

    def on_control(self, device: Edgelet, payload: Any) -> None:
        """A CONTROL message landed; default strategies ignore them."""


class OvercollectionStrategy(StrategyRuntime):
    """n + m overcollected partitions; primaries only, no timers."""

    name = "overcollection"

    def on_contribution(self, device: Edgelet, payload: dict[str, Any]) -> None:
        self.builder.on_contribution(device, payload)

    def end_collection(self) -> None:
        self.builder.end_collection()

    def on_partition(self, device: Edgelet, payload: dict[str, Any]) -> None:
        self.computer.on_partition(device, payload)


class BackupStrategy(StrategyRuntime):
    """Replica chains with staggered takeover timers and shipped markers.

    Only aggregate queries are supported (the demo's non-distributive
    path); K-Means execution stays on the heartbeat-based
    Overcollection strategy.
    """

    name = "backup"

    def __init__(self, takeover_timeout: float = 5.0):
        self.takeover_timeout = takeover_timeout

    def bind(
        self,
        ctx: ExecutionContext,
        builder: BuilderRuntime,
        computer: ComputerRuntime,
    ) -> None:
        super().bind(ctx, builder, computer)
        if ctx.plan.metadata.get("strategy") != "backup":
            raise ExecutionError("BackupExecutor requires a backup-strategy plan")
        if ctx.kind != "aggregate":
            raise ExecutionError(
                "BackupExecutor supports aggregate queries (use the "
                "heartbeat-based Overcollection executor for iterative ML)"
            )
        self._index_replicas()

    # -- replica indexing ----------------------------------------------------

    def _index_replicas(self) -> None:
        ctx = self.ctx
        replicas = ctx.plan.metadata.get("backup_replicas", 0)
        config = BackupConfig(
            replicas=replicas, takeover_timeout=self.takeover_timeout
        )
        self.chains: dict[str, BackupChain] = {}
        self.ops_by_base: dict[str, list[Operator]] = {}
        for operator in ctx.plan.operators():
            if operator.role not in (
                OperatorRole.SNAPSHOT_BUILDER, OperatorRole.COMPUTER
            ):
                continue
            base = base_op_id(operator.op_id)
            self.ops_by_base.setdefault(base, []).append(operator)
            chain = self.chains.get(base)
            if chain is None:
                chain = BackupChain(base, config)
                self.chains[base] = chain
            chain.register(rank_of(operator), operator.assigned_to or "")
        for ops in self.ops_by_base.values():
            ops.sort(key=rank_of)
        # per-op input storage (each replica holds its own copy)
        self.rows_by_op: dict[str, list[dict[str, Any]]] = {
            op.op_id: []
            for ops in self.ops_by_base.values()
            for op in ops
        }
        # bases for which this run already heard a "shipped" marker, and
        # at which rank (device-local state is approximated run-globally
        # per base+listening-device pair)
        self.shipped_heard: dict[str, set[str]] = {}
        self.m_takeovers = ctx.telemetry.metrics.counter(
            "exec.backup_takeovers", query=ctx.plan.query_id
        )

    # -- collection ----------------------------------------------------------

    def on_contribution(self, device: Edgelet, payload: dict[str, Any]) -> None:
        ctx = self.ctx
        if ctx.simulator.now > ctx.collect_end:
            return
        op_id = payload.get("op_id", "")
        if ctx.is_duplicate_contribution(op_id, payload):
            return
        bucket = self.rows_by_op.get(op_id)
        if bucket is None:
            return
        cap = ctx.config.partition_cardinality
        room = cap - len(bucket)
        if room <= 0:
            return
        rows = ctx.resolve_contribution(device, payload)
        if rows is None:
            ctx.count_dropped_payload("stale_stamp")
            return
        accepted = rows[:room]
        bucket.extend(accepted)
        ctx.count_tuples(device.device_id, len(accepted))

    def end_collection(self) -> None:
        """Arm the whole builder chain: primary now, replicas staggered."""
        for base, ops in sorted(self.ops_by_base.items()):
            if ops[0].role != OperatorRole.SNAPSHOT_BUILDER:
                continue
            for operator in ops:
                rank = rank_of(operator)
                delay = rank * self.takeover_timeout
                self.ctx.simulator.schedule(
                    delay,
                    self._make_builder_fire(base, operator),
                    f"{operator.op_id} (rank {rank}) builder fire",
                )

    def _make_builder_fire(self, base: str, operator: Operator):
        ctx = self.ctx
        # fence against Simulator.reset(): a timer armed on the previous
        # timeline must never execute on the new one, even if the fire
        # closure leaks out of the cancelled event queue
        epoch = ctx.simulator.epoch

        def fire() -> None:
            if ctx.simulator.epoch != epoch:
                return
            device = ctx.device_of(operator)
            rank = rank_of(operator)
            if rank > 0:
                if device.device_id in self.shipped_heard.get(base, set()):
                    return  # a lower rank already shipped; stand down
                self.takeover_log.append((ctx.simulator.now, base, rank))
                ctx.trace(f"{operator.op_id} takes over {base}")
                self.m_takeovers.inc()
            if not ctx.network.is_online(device.device_id):
                ctx.trace(f"{operator.op_id} offline, cannot ship {base}")
                return
            rows = self.rows_by_op.get(operator.op_id, [])
            cap = ctx.config.partition_cardinality
            rows = rows[:cap]
            if not rows:
                ctx.trace(f"{operator.op_id} collected no rows")
                return
            commitment = commit_snapshot(rows)
            ctx.trace(
                f"{operator.op_id} snapshot frozen: {len(rows)} rows, "
                f"merkle={commitment[:12]}…"
            )
            ctx.mark_collection_end()
            ctx.m_snapshots.inc()
            self._ship_partition(operator, device, rows, commitment)
            self._announce_shipped(base, operator, device)
        return fire

    def _ship_partition(self, operator, device, rows, commitment) -> None:
        ctx = self.ctx
        partition_index = operator.params["partition_index"]
        consumers = [
            consumer
            for consumer in ctx.plan.consumers_of(operator.op_id)
            if consumer.role == OperatorRole.COMPUTER
        ]
        ship_partition(ctx, device, partition_index, rows, commitment, consumers)

    def _announce_shipped(self, base: str, operator: Operator, device) -> None:
        """Tell the sibling replicas their takeover is unnecessary."""
        ctx = self.ctx
        for sibling in self.ops_by_base.get(base, []):
            if sibling.op_id == operator.op_id:
                continue
            target = ctx.device_of(sibling)
            ctx.ship(
                device, target, MessageKind.CONTROL,
                {"shipped": base, "rank": rank_of(operator),
                 "op_id": sibling.op_id},
                size_hint=64,
            )

    # -- computation ---------------------------------------------------------

    def on_partition(self, device: Edgelet, payload: dict[str, Any]) -> None:
        ctx = self.ctx
        op_id = payload.get("op_id", "")
        base = base_op_id(op_id)
        operator = None
        for candidate in self.ops_by_base.get(base, []):
            if candidate.op_id == op_id:
                operator = candidate
                break
        if operator is None:
            return
        bucket = self.rows_by_op.get(op_id)
        if bucket is None or bucket:
            return  # first partition wins; duplicates dropped
        rows = payload["rows"]
        bucket.extend(rows)
        ctx.count_tuples(device.device_id, len(rows))
        rank = rank_of(operator)
        if rank == 0:
            self._fire_computer(base, operator, device)
        else:
            ctx.simulator.schedule(
                rank * self.takeover_timeout,
                self._make_computer_takeover(base, operator),
                f"{op_id} (rank {rank}) computer takeover",
            )

    def _make_computer_takeover(self, base: str, operator: Operator):
        ctx = self.ctx
        epoch = ctx.simulator.epoch

        def fire() -> None:
            if ctx.simulator.epoch != epoch:
                return
            device = ctx.device_of(operator)
            if device.device_id in self.shipped_heard.get(base, set()):
                return
            self.takeover_log.append(
                (ctx.simulator.now, base, rank_of(operator))
            )
            ctx.trace(f"{operator.op_id} takes over {base}")
            self.m_takeovers.inc()
            self._fire_computer(base, operator, device)
        return fire

    def _fire_computer(self, base: str, operator: Operator, device) -> None:
        ctx = self.ctx
        if not ctx.network.is_online(device.device_id):
            ctx.mark_computation_start()
            ctx.trace(f"{operator.op_id} offline, partial lost")
            return
        rows = self.rows_by_op.get(operator.op_id, [])
        indices = operator.params.get("aggregate_indices") or list(
            range(len(ctx.query.aggregates))
        )
        sub_query = GroupByQuery(
            grouping_sets=ctx.query.grouping_sets,
            aggregates=tuple(ctx.query.aggregates[i] for i in indices),
        )
        with ctx.prof_aggregate:
            partial = evaluate_group_by(sub_query, rows)
        # a replica's rank is its intrinsic promotion token: rank-N
        # takeover fires at generation N, so a legitimate duplicate fire
        # (lost "shipped" marker) is distinguishable from true
        # same-generation split-brain in the fencing evidence
        generation = rank_of(operator)
        payload = {
            "__aggregate__": True,
            "partition_index": operator.params["partition_index"],
            "group_index": operator.params.get("group_index", 0),
            "partial": partial.to_dict(),
        }
        if ctx.fencing:
            payload["generation"] = generation
        latency = device.compute_latency(float(max(len(rows), 1)))

        def send() -> None:
            ctx.mark_computation_start()
            if not ctx.network.is_online(device.device_id):
                ctx.trace(f"{operator.op_id} offline, partial lost")
                return
            ctx.trace(f"{operator.op_id} partial result computed and sent")
            cell = (payload["partition_index"], payload.get("group_index", 0))
            ctx.fire_log.append(
                (ctx.simulator.now, cell, device.device_id, generation)
            )
            for name in COMBINER_NAMES:
                combiner_op = ctx.plan.operator(name)
                target = ctx.device_of(combiner_op)
                ctx.ship(
                    device, target, MessageKind.PARTIAL_RESULT,
                    dict(payload, op_id=name), size_hint=512,
                )
            self._announce_shipped(base, operator, device)

        ctx.simulator.schedule(latency, send, f"{operator.op_id} partial")

    # -- control -------------------------------------------------------------

    def on_control(self, device: Edgelet, payload: Any) -> None:
        if isinstance(payload, dict):
            base = payload.get("shipped")
            if base is not None:
                self.shipped_heard.setdefault(base, set()).add(device.device_id)
