"""Querier runtime: final-result delivery, dedup, report assembly.

The Querier is the round-trip endpoint: it accepts whichever combiner's
final result lands first (the active backup's duplicate is deduped),
stamps success/tally/completion-time into the :class:`ExecutionReport`,
and — for demo query (ii) — attaches the Group-By-on-clusters
statistics to the K-Means outcome when they arrive.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.qep import OperatorRole
from repro.core.runtime.context import ExecutionContext
from repro.core.runtime.report import KMeansOutcome
from repro.devices.edgelet import Edgelet
from repro.query.groupby import GroupingSetsResult

__all__ = ["QuerierRuntime"]


class QuerierRuntime:
    """Receives and dedupes final results; fills the report."""

    role = OperatorRole.QUERIER

    def __init__(self, ctx: ExecutionContext):
        self.ctx = ctx
        self.final_delivered = False
        self.stats_delivered = False

    def on_final_result(self, device: Edgelet, payload: dict[str, Any]) -> None:
        """Accept a combiner's final result (first one wins)."""
        ctx = self.ctx
        if "stats_rows" in payload:
            self.on_cluster_stats_result(payload)
            return
        if self.final_delivered:
            return  # active-backup duplicate, querier dedupes
        self.final_delivered = True
        ctx.report.success = True
        ctx.report.delivered_by = payload.get("combiner")
        ctx.report.completion_time = ctx.simulator.now
        ctx.m_finals.inc()
        if ctx.span_combination is not None:
            ctx.span_combination.finish(at=ctx.simulator.now)
        ctx.telemetry.tracer.mark(
            f"exec.{ctx.plan.query_id}.completion", at=ctx.simulator.now
        )
        ctx.report.tally = payload.get("tally", {})
        ctx.report.received_partitions = ctx.report.tally.get("received", 0)
        if payload.get("degraded"):
            # explicitly-labelled partial result (graceful degradation)
            ctx.report.degraded = True
            ctx.report.coverage = payload.get("coverage", {})
            ctx.report.validity_bound = payload.get("validity_bound")
        if ctx.kind == "aggregate":
            per_set = tuple(
                tuple(dict(row) for row in rows) for rows in payload["rows"]
            )
            ctx.report.result = GroupingSetsResult(ctx.query, per_set)
        else:
            ctx.report.kmeans = KMeansOutcome(
                centroids=np.asarray(payload["centroids"], dtype=float),
                weights=np.asarray(payload["weights"], dtype=float),
                knowledges_merged=payload["knowledges_merged"],
            )
        ctx.audit(device, "querier", "deliver", 0)
        ctx.trace(
            f"querier received final result from {ctx.report.delivered_by}"
        )

    def on_cluster_stats_result(self, payload: dict[str, Any]) -> None:
        """Attach the Group-By-on-clusters result to the K-Means outcome."""
        ctx = self.ctx
        if self.stats_delivered or ctx.report.kmeans is None:
            return
        self.stats_delivered = True
        per_set = tuple(
            tuple(dict(row) for row in rows) for rows in payload["stats_rows"]
        )
        stats = GroupingSetsResult(ctx.stats_query, per_set)
        import dataclasses

        ctx.report.kmeans = dataclasses.replace(
            ctx.report.kmeans, cluster_stats=stats
        )
        ctx.trace("querier received cluster statistics")
