"""Distributed execution of Edgelet plans over the opportunistic network.

This module drives a :class:`~repro.core.qep.QueryExecutionPlan` on a
swarm of :class:`~repro.devices.edgelet.Edgelet` devices connected by an
:class:`~repro.network.opnet.OpportunisticNetwork`, on the virtual clock
of a :class:`~repro.network.simulator.Simulator`.  It realizes the three
phases the demonstration walks through:

1. **Collection** — Data Contributors filter/project their own rows and
   send them (sealed) to their hash-assigned Snapshot Builder; builders
   cap their partition at ``C / n`` representative tuples and commit to
   it with a Merkle root.
2. **Computation** — builders ship column-group projections of their
   partition to the Computers; aggregate Computers fold partial states
   immediately, K-Means Computers run the heartbeat-cadenced
   local-convergence / synchronization loop of Section 2.2.
3. **Combination** — the Computing Combiner (and its Active Backup,
   running the identical logic in parallel) tallies partitions, merges
   partial states at the deadline, extrapolates counts for lost
   partitions, and delivers the final result to the Querier.

Every step tolerates loss: missing messages shrink the tally, never
block progress.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.overcollection import OvercollectionConfig, PartitionTally
from repro.core.qep import Operator, OperatorRole, QueryExecutionPlan
from repro.crypto.merkle import MerkleTree
from repro.crypto.primitives import AuthenticationError
from repro.devices.edgelet import Edgelet
from repro.ml.distributed_kmeans import (
    CentroidKnowledge,
    KMeansComputerState,
    merge_knowledge,
)
from repro.network.messages import Message, MessageKind
from repro.network.opnet import OpportunisticNetwork
from repro.network.simulator import Simulator
from repro.query.groupby import (
    GroupByQuery,
    GroupingSetsResult,
    PartialGroups,
    evaluate_group_by,
    finalize_partials,
    merge_partials,
)

__all__ = ["EdgeletExecutor", "ExecutionReport", "KMeansOutcome", "ExecutionError"]


class ExecutionError(Exception):
    """Raised on executor misconfiguration (not on runtime faults)."""


@dataclass(frozen=True)
class KMeansOutcome:
    """Final clustering produced by the Computing Combiner.

    Attributes:
        centroids: ``(k, d)`` merged centroids.
        weights: data points backing each centroid.
        knowledges_merged: how many Computer knowledges reached the
            combiner before the deadline.
        cluster_stats: optional Group-By-on-clusters result.
    """

    centroids: np.ndarray
    weights: np.ndarray
    knowledges_merged: int
    cluster_stats: GroupingSetsResult | None = None


@dataclass
class ExecutionReport:
    """Everything an experiment wants to know about one execution.

    Attributes:
        query_id: the executed query.
        success: whether the Querier received a final result.
        result: the aggregate result (``aggregate`` kind).
        kmeans: the clustering outcome (``kmeans`` kind).
        tally: partition tally summary from the winning combiner.
        received_partitions: distinct (partition, group) cells received.
        delivered_by: which combiner delivered first
            (``"combiner"``/``"combiner-backup"``/``None``).
        completion_time: virtual time of result delivery.
        network_stats: counters from the opportunistic network.
        tuples_per_device: raw tuples handled per processing device.
        trace: time-ordered human-readable event log (a rendered view;
            the telemetry spans are the structured source of truth).
        heartbeats_run: heartbeats executed (kmeans only).
        convergence_trace: per-heartbeat mean centroid shift across the
            live Computers (kmeans only) — the "follow the execution in
            real time" signal the demo GUI plots.
        telemetry: the :class:`repro.telemetry.Telemetry` this execution
            recorded into.
        phase_spans: this execution's phase spans, keyed by phase name
            (``execution``/``collection``/``computation``/
            ``combination``); consumed by
            :func:`repro.manager.trace.phase_timeline`.
    """

    query_id: str
    success: bool = False
    result: GroupingSetsResult | None = None
    kmeans: KMeansOutcome | None = None
    tally: dict[str, Any] = field(default_factory=dict)
    received_partitions: int = 0
    delivered_by: str | None = None
    completion_time: float | None = None
    network_stats: dict[str, float] = field(default_factory=dict)
    tuples_per_device: dict[str, int] = field(default_factory=dict)
    trace: list[tuple[float, str]] = field(default_factory=list)
    heartbeats_run: int = 0
    convergence_trace: list[tuple[int, float]] = field(default_factory=list)
    telemetry: Any = None
    phase_spans: dict[str, Any] = field(default_factory=dict)


class _CombinerRuntime:
    """Shared logic of the Computing Combiner and its Active Backup."""

    def __init__(
        self,
        name: str,
        config: OvercollectionConfig,
        n_groups: int,
        query: GroupByQuery | None,
        extrapolate: bool,
    ):
        self.name = name
        self.config = config
        self.n_groups = n_groups
        self.query = query
        self.extrapolate = extrapolate
        self.partials: dict[tuple[int, int], PartialGroups] = {}
        self.knowledges: dict[int, CentroidKnowledge] = {}
        self.group_tallies = [PartitionTally(config) for _ in range(n_groups)]

    def record_partial(
        self, partition_index: int, group_index: int, partial: PartialGroups
    ) -> None:
        """Accept one aggregate partial result (idempotent per cell)."""
        key = (partition_index, group_index)
        if key in self.partials:
            return
        self.partials[key] = partial
        self.group_tallies[group_index].record(partition_index)

    def record_knowledge(self, partition_index: int, knowledge: CentroidKnowledge) -> None:
        """Accept one K-Means knowledge (last write wins per partition)."""
        self.knowledges[partition_index] = knowledge
        self.group_tallies[0].record(partition_index)

    def tally_summary(self) -> dict[str, Any]:
        """Worst-group tally summary (the binding constraint)."""
        summaries = [tally.summary() for tally in self.group_tallies]
        worst = min(summaries, key=lambda s: s["received"])
        worst["per_group_received"] = [s["received"] for s in summaries]
        return worst

    def finalize_aggregate(
        self, aggregate_indices_per_group: list[list[int]]
    ) -> GroupingSetsResult | None:
        """Merge, extrapolate, and assemble the final aggregate rows.

        Each vertical group contributes its own aggregates; rows of the
        same grouping-set key are merged across groups.  Returns
        ``None`` when some group received zero partitions.
        """
        if self.query is None:
            raise ExecutionError("aggregate finalize without a query")
        per_group_results: list[GroupingSetsResult] = []
        for group_index in range(self.n_groups):
            tally = self.group_tallies[group_index]
            if tally.received_count == 0:
                return None
            group_query = GroupByQuery(
                grouping_sets=self.query.grouping_sets,
                aggregates=tuple(
                    self.query.aggregates[i]
                    for i in aggregate_indices_per_group[group_index]
                ),
            )
            merged = merge_partials(
                group_query,
                (
                    self.partials[(p, g)]
                    for (p, g) in sorted(self.partials)
                    if g == group_index
                ),
            )
            result = finalize_partials(group_query, merged)
            if self.extrapolate and tally.lost_count > 0:
                result = result.scaled_counts(tally.scaling_factor())
            per_group_results.append(result)
        return _stitch_groups(self.query, per_group_results, aggregate_indices_per_group)

    def finalize_kmeans(self) -> KMeansOutcome | None:
        """Merge all received Computer knowledges into final centroids.

        Knowledges whose k differs (Computers on starved partitions cap
        k at their point count) cannot be barycenter-matched; the
        combiner keeps the most common k and drops the rest.
        """
        if not self.knowledges:
            return None
        ordered = [self.knowledges[i] for i in sorted(self.knowledges)]
        k_counts: dict[int, int] = {}
        for knowledge in ordered:
            k_counts[knowledge.k] = k_counts.get(knowledge.k, 0) + 1
        dominant_k = max(k_counts, key=lambda k: (k_counts[k], k))
        ordered = [kn for kn in ordered if kn.k == dominant_k]
        merged = ordered[0]
        if len(ordered) > 1:
            merged = merge_knowledge(ordered[0], ordered[1:])
        return KMeansOutcome(
            centroids=merged.centroids,
            weights=merged.weights,
            knowledges_merged=len(ordered),
        )


def _stitch_groups(
    query: GroupByQuery,
    per_group: list[GroupingSetsResult],
    aggregate_indices_per_group: list[list[int]],
) -> GroupingSetsResult:
    """Assemble per-vertical-group results into one result row set."""
    import json as _json

    stitched_sets: list[tuple[dict[str, Any], ...]] = []
    for set_index, grouping_set in enumerate(query.grouping_sets):
        merged_rows: dict[str, dict[str, Any]] = {}
        for group_index, result in enumerate(per_group):
            names = [
                query.aggregates[i].output_name
                for i in aggregate_indices_per_group[group_index]
            ]
            for row in result.per_set_rows[set_index]:
                key = _json.dumps(
                    [row.get(c) for c in grouping_set], separators=(",", ":")
                )
                target = merged_rows.setdefault(
                    key, {c: row.get(c) for c in grouping_set}
                )
                for name in names:
                    target[name] = row.get(name)
        candidates = (merged_rows[key] for key in sorted(merged_rows))
        # HAVING applies here: only now are all of a row's aggregates
        # (possibly spread over vertical groups) present
        ordered = tuple(
            row
            for row in candidates
            if query.having is None or query.having.evaluate(row)
        )
        stitched_sets.append(ordered)
    return GroupingSetsResult(query, tuple(stitched_sets))


class EdgeletExecutor:
    """Runs one assigned plan over a device swarm.

    Args:
        simulator: the shared virtual clock.
        network: the opportunistic network (devices must be attached by
            the executor — do not pre-attach handlers).
        devices: device_id -> :class:`Edgelet` for every participant.
        plan: an assigned, validated plan (``assigned_to`` set on every
            data-processor operator; devices must exist in ``devices``).
        collection_window: virtual seconds granted to the collection
            phase.
        deadline: virtual time by which the Querier must be served.
        secure_channels: seal every payload in an authenticated
            envelope (realistic, slower) or ship plain payloads through
            the same code paths (fast, for large-scale benches).
        contribution_copies: how many times each contributor transmits
            its contribution (staggered retransmissions improve delivery
            on lossy links; builders deduplicate with a Bloom filter so
            duplicates never skew the snapshot).
        audit_ledger: optional
            :class:`repro.manager.audit.AuditLedger`; when provided,
            every processing step appends a signed, hash-chained record
            (the evidence backing the Crowd Liability property).
        telemetry: the :class:`repro.telemetry.Telemetry` to record
            phase spans, counters, and profiles into; defaults to the
            simulator's instance.
        seed: randomness for contribution jitter.
    """

    def __init__(
        self,
        simulator: Simulator,
        network: OpportunisticNetwork,
        devices: dict[str, Edgelet],
        plan: QueryExecutionPlan,
        collection_window: float = 30.0,
        deadline: float = 100.0,
        secure_channels: bool = True,
        extrapolate_lost: bool = True,
        contribution_copies: int = 1,
        audit_ledger: Any = None,
        telemetry: Any = None,
        seed: int = 0,
    ):
        if contribution_copies < 1:
            raise ExecutionError("contribution_copies must be at least 1")
        if deadline <= collection_window:
            raise ExecutionError("deadline must exceed the collection window")
        self.simulator = simulator
        self.network = network
        self.devices = devices
        self.plan = plan
        # All phase boundaries are relative to the executor's start time,
        # so several queries can run back-to-back on one simulator.
        self.start_time = simulator.now
        self.collection_window = collection_window
        self.deadline = deadline
        self.collect_end = self.start_time + collection_window
        self.deadline_at = self.start_time + deadline
        self.secure_channels = secure_channels
        self.extrapolate_lost = extrapolate_lost
        self.contribution_copies = contribution_copies
        self.audit_ledger = audit_ledger
        self._contribution_filters: dict[Any, Any] = {}
        self._rng = random.Random(seed)
        self.report = ExecutionReport(query_id=plan.query_id)

        if telemetry is None:
            telemetry = simulator.telemetry
        self.telemetry = telemetry
        self.report.telemetry = telemetry
        metrics = telemetry.metrics
        query_id = plan.query_id
        self._m_contributions = metrics.counter(
            "exec.contributions_accepted", query=query_id
        )
        self._m_tuples = metrics.counter("exec.tuples_collected", query=query_id)
        self._m_snapshots = metrics.counter("exec.snapshots_frozen", query=query_id)
        self._m_partials = metrics.counter("exec.partials_recorded", query=query_id)
        self._m_knowledges = metrics.counter(
            "exec.knowledges_recorded", query=query_id
        )
        self._m_heartbeats = metrics.counter("exec.heartbeats_run", query=query_id)
        self._m_finals = metrics.counter("exec.final_results", query=query_id)
        self._prof_aggregate = telemetry.profiler.section("operator.aggregate")
        self._prof_heartbeat = telemetry.profiler.section("operator.kmeans_heartbeat")
        self._prof_combine = telemetry.profiler.section("operator.combine")

        # Phase spans: the structured execution timeline.  The
        # collection span closes at the first frozen snapshot and the
        # computation span opens at the first partial/K-Means init,
        # mirroring exactly what the legacy substring heuristics mined
        # from the text trace.  Spans left open (a phase that never
        # happened) render as ``None`` boundaries.
        from repro.telemetry import NullTracer

        tracer = telemetry.tracer
        self._span_execution = tracer.start(
            "execution",
            at=self.start_time,
            query_id=query_id,
            kind=plan.metadata["kind"],
        )
        self._span_collection = tracer.start(
            "phase:collection", at=self.start_time, parent=self._span_execution
        )
        self._span_computation: Any = None
        self._span_combination: Any = None
        # A no-op tracer hands out one shared inert span; publishing it
        # would poison phase_timeline, which then rightly falls back to
        # the legacy text-trace scan.
        self._record_phase_spans = not isinstance(tracer, NullTracer)
        if self._record_phase_spans:
            self.report.phase_spans["execution"] = self._span_execution
            self.report.phase_spans["collection"] = self._span_collection

        metadata = plan.metadata
        self.kind: str = metadata["kind"]
        self.config = OvercollectionConfig.from_dict(metadata["overcollection"])
        self.column_groups: list[list[str]] = [
            list(group) for group in metadata["column_groups"]
        ]
        self.collected_columns: list[str] = list(metadata["collected_columns"])
        self.query: GroupByQuery | None = (
            GroupByQuery.from_dict(metadata["group_by"])
            if metadata.get("group_by")
            else None
        )
        self.heartbeats: int = metadata.get("heartbeats") or 0
        self.kmeans_k: int = metadata.get("kmeans_k") or 0
        self.feature_columns: list[str] = list(metadata.get("feature_columns") or [])

        self._builder_by_partition: dict[int, Operator] = {}
        self._computers: list[Operator] = []
        self._aggregate_indices_per_group: list[list[int]] = [
            [] for _ in self.column_groups
        ]
        self._kmeans_states: dict[int, KMeansComputerState] = {}
        self._kmeans_rows: dict[int, list[dict[str, Any]]] = {}
        self._builder_rows: dict[int, list[dict[str, Any]]] = {}
        # first-wins guard against duplicated PARTITION messages: a
        # Computer runs its partition exactly once, so a network-level
        # duplicate must not double-count tuples or recompute partials
        self._partitions_seen: set[tuple[int, int]] = set()
        self._combiners: dict[str, _CombinerRuntime] = {}
        self._final_delivered = False
        self._stats_delivered = False
        # Demo query (ii): "a K-Means followed by a Group By on the
        # resulting clusters".  When a kmeans spec carries a group_by,
        # a second round groups the partitions by assigned cluster.
        self._stats_query: GroupByQuery | None = None
        if self.kind == "kmeans" and self.query is not None:
            self._stats_query = GroupByQuery(
                grouping_sets=(("cluster",),),
                aggregates=self.query.aggregates,
            )
        self._stats_partials: dict[str, dict[int, PartialGroups]] = {
            "combiner": {}, "combiner-backup": {},
        }
        self._index_plan()

    # -- setup -------------------------------------------------------------

    def _index_plan(self) -> None:
        for builder in self.plan.operators(OperatorRole.SNAPSHOT_BUILDER):
            if builder.params.get("backup_rank", 0) == 0:
                self._builder_by_partition[builder.params["partition_index"]] = builder
                self._builder_rows[builder.params["partition_index"]] = []
        for computer in self.plan.operators(OperatorRole.COMPUTER):
            if computer.params.get("backup_rank", 0) != 0:
                continue
            self._computers.append(computer)
            group_index = computer.params["group_index"]
            indices = computer.params.get("aggregate_indices")
            if indices is not None:
                self._aggregate_indices_per_group[group_index] = list(indices)
        for name in ("combiner", "combiner-backup"):
            self._combiners[name] = _CombinerRuntime(
                name=name,
                config=self.config,
                n_groups=len(self.column_groups),
                query=self.query,
                extrapolate=self.extrapolate_lost,
            )

    def _device_of(self, operator: Operator) -> Edgelet:
        device_id = operator.assigned_to
        if device_id is None:
            raise ExecutionError(f"operator {operator.op_id} is unassigned")
        try:
            return self.devices[device_id]
        except KeyError:
            raise ExecutionError(
                f"operator {operator.op_id} assigned to unknown device {device_id}"
            ) from None

    def _trace(self, message: str) -> None:
        self.report.trace.append((self.simulator.now, message))

    # -- phase accounting --------------------------------------------------

    def _mark_collection_end(self) -> None:
        """First snapshot froze: the collection phase is over."""
        if self._span_collection.end is None:
            now = self.simulator.now
            self._span_collection.finish(at=now)
            self.telemetry.tracer.mark(
                f"exec.{self.plan.query_id}.collection_end", at=now
            )

    def _mark_computation_start(self) -> None:
        """First partial/K-Means init: the computation phase began."""
        if self._span_computation is None:
            now = self.simulator.now
            self._span_computation = self.telemetry.tracer.start(
                "phase:computation", at=now, parent=self._span_execution
            )
            if self._record_phase_spans:
                self.report.phase_spans["computation"] = self._span_computation
            self.telemetry.tracer.mark(
                f"exec.{self.plan.query_id}.computation_start", at=now
            )

    def _mark_combination_start(self) -> None:
        """The combiner deadline fired: the combination phase began."""
        if self._span_combination is None:
            now = self.simulator.now
            if self._span_computation is not None:
                self._span_computation.finish(at=now)
            self._span_combination = self.telemetry.tracer.start(
                "phase:combination", at=now, parent=self._span_execution
            )
            if self._record_phase_spans:
                self.report.phase_spans["combination"] = self._span_combination

    def _count_tuples(self, device_id: str, count: int) -> None:
        tallies = self.report.tuples_per_device
        tallies[device_id] = tallies.get(device_id, 0) + count

    def _audit(self, device: Edgelet, op_id: str, action: str, tuple_count: int) -> None:
        """Append a signed record to the audit ledger, if one is wired."""
        if self.audit_ledger is None:
            return
        self.audit_ledger.append(
            device.keyring.keypair,
            self.plan.query_id,
            op_id,
            action,
            tuple_count,
            self.simulator.now,
        )

    # -- sealed transport -----------------------------------------------------

    def _ship(
        self,
        sender: Edgelet,
        recipient: Edgelet,
        kind: MessageKind,
        payload: Any,
        size_hint: int = 256,
    ) -> None:
        """Seal (or not) and send a payload between two edgelets."""
        if self.secure_channels:
            sender.keyring.learn_public(
                recipient.fingerprint, recipient.keyring.keypair.public
            )
            recipient.keyring.learn_public(
                sender.fingerprint, sender.keyring.keypair.public
            )
            envelope = sender.seal_for(
                recipient.fingerprint, self.plan.query_id, kind.value, payload
            )
            wire_payload: Any = envelope
            size = envelope.size_bytes()
        else:
            wire_payload = payload
            size = max(size_hint, 64)
        self.network.send(
            Message(
                sender=sender.device_id,
                recipient=recipient.device_id,
                kind=kind,
                payload=wire_payload,
                size_bytes=size,
            )
        )

    def _unwrap(self, device: Edgelet, message: Message) -> Any | None:
        """Open a received payload; ``None`` means drop it (tampered)."""
        if not self.secure_channels:
            payload = message.payload
            items = payload.get("rows") if isinstance(payload, dict) else None
            device.tee.process_cleartext(items if items is not None else [payload])
            return payload
        try:
            return device.open_from(message.payload)
        except AuthenticationError:
            self._trace(
                f"{device.device_id} dropped unauthenticated {message.kind.value}"
            )
            return None

    # -- run -----------------------------------------------------------------

    def run(self) -> ExecutionReport:
        """Execute the plan to the deadline and return the report."""
        self._attach_handlers()
        self._schedule_contributions()
        self.simulator.schedule_at(
            self.collect_end, self._end_collection, "end-collection"
        )
        if self.kind == "kmeans":
            self._schedule_heartbeats()
        self.simulator.schedule_at(self.deadline_at, self._finalize, "combiner-deadline")
        horizon = self.deadline_at + self._result_slack()
        if self._stats_query is not None:
            self.simulator.schedule_at(
                self.deadline_at + 0.6 * self._stats_window(),
                self._finalize_stats,
                "cluster-stats-deadline",
            )
            horizon += self._stats_window()
        self.simulator.run_until(horizon)
        self.report.network_stats = self.network.stats.as_dict()
        if self._span_combination is not None:
            self._span_combination.finish(at=self.simulator.now)
        self._span_execution.finish(at=self.simulator.now)
        return self.report

    def _result_slack(self) -> float:
        """Extra virtual time for the final-result message to land."""
        return max(5.0, 0.1 * self.deadline)

    def _stats_window(self) -> float:
        """Extra virtual time granted to the Group-By-on-clusters round."""
        return max(10.0, 0.3 * self.deadline)

    # -- phase 1: collection ------------------------------------------------------

    def _attach_handlers(self) -> None:
        attached: set[str] = set()
        for operator in self.plan.operators():
            if operator.role == OperatorRole.DATA_CONTRIBUTOR:
                device_id = operator.params["device"]
            elif operator.assigned_to is not None:
                device_id = operator.assigned_to
            else:
                continue
            if device_id in attached:
                continue
            attached.add(device_id)
            device = self.devices.get(device_id)
            if device is None:
                raise ExecutionError(f"unknown device {device_id} in plan")
            self.network.attach(device_id, self._make_handler(device))

    def _make_handler(self, device: Edgelet):
        def handle(message: Message) -> None:
            payload = self._unwrap(device, message)
            if payload is None:
                return
            self._dispatch(device, message.kind, payload)
        return handle

    def _schedule_contributions(self) -> None:
        contributors = self.plan.operators(OperatorRole.DATA_CONTRIBUTOR)
        predicate = None
        if self.query is not None and self.query.where is not None:
            where = self.query.where
            predicate = lambda row: where.evaluate(row)
        for leaf in contributors:
            device = self.devices.get(leaf.params["device"])
            if device is None:
                raise ExecutionError(
                    f"contributor device {leaf.params['device']} missing"
                )
            consumers = self.plan.consumers_of(leaf.op_id)
            primary = [
                c for c in consumers if c.params.get("backup_rank", 0) == 0
            ]
            if not primary:
                continue
            builder = primary[0]
            for copy_index in range(self.contribution_copies):
                send_at = self.start_time + self._rng.uniform(
                    0.0, self.collection_window * 0.6
                )
                self.simulator.schedule_at(
                    send_at,
                    self._make_contribution(device, builder, consumers, predicate),
                    f"contribute {device.device_id} (copy {copy_index})",
                )

    def _make_contribution(self, device, builder, consumers, predicate):
        def fire() -> None:
            if not self.network.is_online(device.device_id):
                return  # owner kept the device offline; no contribution
            rows = device.contribute(predicate, self.collected_columns)
            if not rows:
                return
            for consumer in consumers:
                target = self._device_of(consumer)
                self._ship(
                    device,
                    target,
                    MessageKind.CONTRIBUTION,
                    {
                        "op_id": consumer.op_id,
                        "partition_index": consumer.params["partition_index"],
                        "contribution_id": f"{device.fingerprint}:{consumer.op_id}",
                        "rows": rows,
                    },
                    size_hint=96 * len(rows),
                )
        return fire

    def _is_duplicate_contribution(self, dedup_key: Any, payload: dict[str, Any]) -> bool:
        """Bloom-filter dedup of retransmitted contributions.

        One filter per receiving operator; constant memory, so it also
        fits a RAM-starved home box.  False positives (rare at the
        configured error rate) drop a legitimate contribution — the
        snapshot stays representative, only marginally smaller.
        """
        contribution_id = payload.get("contribution_id")
        if contribution_id is None:
            return False
        from repro.query.sketches import BloomFilter

        bloom = self._contribution_filters.get(dedup_key)
        if bloom is None:
            capacity = max(64, 2 * len(self.plan.operators(OperatorRole.DATA_CONTRIBUTOR)))
            bloom = BloomFilter(capacity=capacity, error_rate=0.001)
            self._contribution_filters[dedup_key] = bloom
        return not bloom.add_if_new(contribution_id)

    def _end_collection(self) -> None:
        """Builders freeze, commit, and ship their partitions."""
        for partition_index, builder in sorted(self._builder_by_partition.items()):
            device = self._device_of(builder)
            if self.network.is_dead(device.device_id):
                self._trace(f"{builder.op_id} dead at end of collection")
                continue
            rows = self._builder_rows.get(partition_index, [])
            cap = self.config.partition_cardinality
            if len(rows) > cap:
                rows = rows[:cap]
            if not rows:
                self._trace(f"{builder.op_id} collected no rows")
                continue
            commitment = MerkleTree(
                [repr(sorted(row.items())).encode("utf-8") for row in rows]
            ).root_hex()
            self._trace(
                f"{builder.op_id} snapshot frozen: {len(rows)} rows, "
                f"merkle={commitment[:12]}…"
            )
            self._mark_collection_end()
            self._m_snapshots.inc()
            self._audit(device, builder.op_id, "snapshot", len(rows))
            latency = device.compute_latency(float(len(rows)))
            self.simulator.schedule(
                latency,
                self._make_partition_send(builder, device, rows, commitment),
                f"{builder.op_id} ship partition",
            )

    def _make_partition_send(self, builder, device, rows, commitment):
        def fire() -> None:
            if not self.network.is_online(device.device_id):
                self._trace(f"{builder.op_id} offline, partition not shipped")
                return
            partition_index = builder.params["partition_index"]
            for consumer in self.plan.consumers_of(builder.op_id):
                if consumer.role != OperatorRole.COMPUTER:
                    continue
                if consumer.params.get("backup_rank", 0) != 0:
                    continue
                group = consumer.params.get("column_group") or self.collected_columns
                projected = [
                    {column: row.get(column) for column in group} for row in rows
                ]
                target = self._device_of(consumer)
                self._ship(
                    device,
                    target,
                    MessageKind.PARTITION,
                    {
                        "op_id": consumer.op_id,
                        "partition_index": partition_index,
                        "group_index": consumer.params.get("group_index", 0),
                        "commitment": commitment,
                        "rows": projected,
                    },
                    size_hint=64 * len(projected),
                )
        return fire

    # -- phase 2: computation -------------------------------------------------------

    def _dispatch(self, device: Edgelet, kind: MessageKind, payload: Any) -> None:
        if kind == MessageKind.CONTRIBUTION:
            self._on_contribution(device, payload)
        elif kind == MessageKind.PARTITION:
            self._on_partition(device, payload)
        elif kind == MessageKind.PARTIAL_RESULT:
            self._on_partial_result(device, payload)
        elif kind == MessageKind.KNOWLEDGE:
            self._on_knowledge(device, payload)
        elif kind == MessageKind.FINAL_RESULT:
            self._on_final_result(device, payload)

    def _on_contribution(self, device: Edgelet, payload: dict[str, Any]) -> None:
        if self.simulator.now > self.collect_end:
            return  # too late, snapshot frozen
        partition_index = payload["partition_index"]
        if self._is_duplicate_contribution(partition_index, payload):
            return
        rows = payload["rows"]
        bucket = self._builder_rows.get(partition_index)
        if bucket is None:
            return
        cap = self.config.partition_cardinality
        room = cap - len(bucket)
        if room <= 0:
            return
        accepted = rows[:room]
        bucket.extend(accepted)
        self._count_tuples(device.device_id, len(accepted))
        self._m_contributions.inc()
        self._m_tuples.inc(len(accepted))

    def _on_partition(self, device: Edgelet, payload: dict[str, Any]) -> None:
        partition_index = payload["partition_index"]
        group_index = payload.get("group_index", 0)
        if (partition_index, group_index) in self._partitions_seen:
            return  # duplicated in transit; this Computer already ran
        self._partitions_seen.add((partition_index, group_index))
        rows = payload["rows"]
        self._count_tuples(device.device_id, len(rows))
        computer = self._find_computer(partition_index, group_index)
        if computer is None:
            return
        if self.kind == "aggregate":
            self._run_aggregate_computer(device, computer, rows)
        else:
            self._init_kmeans_computer(device, computer, rows)

    def _find_computer(self, partition_index: int, group_index: int) -> Operator | None:
        for computer in self._computers:
            if (
                computer.params["partition_index"] == partition_index
                and computer.params.get("group_index", 0) == group_index
            ):
                return computer
        return None

    def _run_aggregate_computer(
        self, device: Edgelet, computer: Operator, rows: list[dict[str, Any]]
    ) -> None:
        indices = computer.params.get("aggregate_indices") or list(
            range(len(self.query.aggregates))
        )
        sub_query = GroupByQuery(
            grouping_sets=self.query.grouping_sets,
            aggregates=tuple(self.query.aggregates[i] for i in indices),
        )
        with self._prof_aggregate:
            partial = evaluate_group_by(sub_query, rows)
        self._audit(device, computer.op_id, "partial", len(rows))
        latency = device.compute_latency(float(len(rows)))
        payload = {
            "__aggregate__": True,
            "partition_index": computer.params["partition_index"],
            "group_index": computer.params.get("group_index", 0),
            "partial": partial.to_dict(),
        }
        self.simulator.schedule(
            latency,
            self._make_partial_send(device, computer, payload),
            f"{computer.op_id} partial",
        )

    def _make_partial_send(self, device, computer, payload):
        def fire() -> None:
            self._mark_computation_start()
            if not self.network.is_online(device.device_id):
                self._trace(f"{computer.op_id} offline, partial lost")
                return
            self._trace(f"{computer.op_id} partial result computed and sent")
            for name in ("combiner", "combiner-backup"):
                combiner_op = self.plan.operator(name)
                target = self._device_of(combiner_op)
                self._ship(
                    device,
                    target,
                    MessageKind.PARTIAL_RESULT,
                    dict(payload, op_id=name),
                    size_hint=512,
                )
        return fire

    # -- kmeans specifics --------------------------------------------------------

    def _init_kmeans_computer(
        self, device: Edgelet, computer: Operator, rows: list[dict[str, Any]]
    ) -> None:
        features = [
            [row[c] for c in self.feature_columns]
            if all(row.get(c) is not None for c in self.feature_columns)
            else None
            for row in rows
        ]
        points = [f for f in features if f is not None]
        if not points:
            self._trace(f"{computer.op_id} received no usable feature rows")
            return
        partition_index = computer.params["partition_index"]
        self._kmeans_states[partition_index] = KMeansComputerState(
            partition=np.asarray(points, dtype=float),
            k=self.kmeans_k,
            seed=partition_index,
        )
        if self._stats_query is not None:
            self._kmeans_rows[partition_index] = rows
        self._trace(
            f"{computer.op_id} initialized K-Means on {len(points)} points"
        )
        self._mark_computation_start()

    def _schedule_heartbeats(self) -> None:
        if self.heartbeats <= 0:
            raise ExecutionError("kmeans plan without heartbeats")
        window_start = self.collect_end
        window_end = self.start_time + self.deadline * 0.95
        interval = (window_end - window_start) / self.heartbeats
        for beat in range(1, self.heartbeats + 1):
            at = window_start + beat * interval
            last = beat == self.heartbeats
            self.simulator.schedule_at(
                at,
                self._make_heartbeat(last),
                f"heartbeat {beat}",
            )

    def _make_heartbeat(self, last: bool):
        def fire() -> None:
            self.report.heartbeats_run += 1
            self._m_heartbeats.inc()
            beat = self.report.heartbeats_run
            self.telemetry.tracer.event(
                "heartbeat", at=self.simulator.now,
                query_id=self.plan.query_id, beat=beat,
            )
            shifts: list[float] = []
            for computer in self._computers:
                partition_index = computer.params["partition_index"]
                state = self._kmeans_states.get(partition_index)
                if state is None:
                    continue
                device = self._device_of(computer)
                if not self.network.is_online(device.device_id):
                    continue
                previous = state.knowledge
                with self._prof_heartbeat:
                    knowledge = state.heartbeat()
                if previous is not None and previous.k == knowledge.k:
                    from repro.ml.metrics import centroid_matching_distance

                    shifts.append(
                        centroid_matching_distance(
                            previous.centroids, knowledge.centroids
                        )
                    )
                payload = {
                    "__aggregate__": True,
                    "partition_index": partition_index,
                    "knowledge": knowledge.to_payload(),
                }
                if last:
                    # ship to the combiner and its active backup
                    for name in ("combiner", "combiner-backup"):
                        combiner_op = self.plan.operator(name)
                        target = self._device_of(combiner_op)
                        self._ship(
                            device, target, MessageKind.KNOWLEDGE,
                            dict(payload, op_id=name), size_hint=512,
                        )
                else:
                    for peer in self._computers:
                        if peer.op_id == computer.op_id:
                            continue
                        target = self._device_of(peer)
                        self._ship(
                            device, target, MessageKind.KNOWLEDGE,
                            dict(payload, op_id=peer.op_id), size_hint=512,
                        )
            if shifts:
                self.report.convergence_trace.append(
                    (beat, sum(shifts) / len(shifts))
                )
        return fire

    def _on_knowledge(self, device: Edgelet, payload: dict[str, Any]) -> None:
        op_id = payload.get("op_id", "")
        if "final_centroids" in payload:
            self._on_final_centroids(device, payload)
            return
        knowledge = CentroidKnowledge.from_payload(payload["knowledge"])
        if op_id in self._combiners:
            if self.network.is_dead(device.device_id):
                return
            self._combiners[op_id].record_knowledge(
                payload["partition_index"], knowledge
            )
            self._m_knowledges.inc()
            return
        for computer in self._computers:
            if computer.op_id == op_id:
                state = self._kmeans_states.get(computer.params["partition_index"])
                if state is not None:
                    state.receive(knowledge)
                return

    # -- phase 2b: Group By on the resulting clusters ----------------------------------

    def _on_final_centroids(self, device: Edgelet, payload: dict[str, Any]) -> None:
        """A Computer labels its partition with the final centroids and
        computes the grouped statistics per cluster."""
        if self._stats_query is None:
            return
        op_id = payload.get("op_id", "")
        computer = next((c for c in self._computers if c.op_id == op_id), None)
        if computer is None:
            return
        partition_index = computer.params["partition_index"]
        rows = self._kmeans_rows.get(partition_index)
        if not rows:
            return
        centroids = np.asarray(payload["final_centroids"], dtype=float)
        labeled = []
        for row in rows:
            features = [row.get(c) for c in self.feature_columns]
            if any(value is None for value in features):
                continue
            point = np.asarray(features, dtype=float)
            distances = np.sum((centroids - point) ** 2, axis=1)
            labeled.append(dict(row, cluster=int(np.argmin(distances))))
        partial = evaluate_group_by(self._stats_query, labeled)
        self._audit(device, computer.op_id, "cluster_stats", len(labeled))
        latency = device.compute_latency(float(max(len(labeled), 1)))

        def send() -> None:
            if not self.network.is_online(device.device_id):
                return
            for name in ("combiner", "combiner-backup"):
                target = self._device_of(self.plan.operator(name))
                self._ship(
                    device, target, MessageKind.PARTIAL_RESULT,
                    {
                        "__aggregate__": True,
                        "op_id": name,
                        "stats": True,
                        "partition_index": partition_index,
                        "group_index": 0,
                        "partial": partial.to_dict(),
                    },
                    size_hint=512,
                )

        self.simulator.schedule(latency, send, f"{op_id} cluster stats")

    def _finalize_stats(self) -> None:
        """Combiners merge the per-cluster statistics and ship them."""
        if self._stats_query is None:
            return
        for name in ("combiner", "combiner-backup"):
            device = self._device_of(self.plan.operator(name))
            if not self.network.is_online(device.device_id):
                continue
            partials = self._stats_partials[name]
            if not partials:
                continue
            merged = merge_partials(
                self._stats_query,
                (partials[key] for key in sorted(partials)),
            )
            result = finalize_partials(self._stats_query, merged)
            querier_device = self._device_of(
                self.plan.operators(OperatorRole.QUERIER)[0]
            )
            self._ship(
                device, querier_device, MessageKind.FINAL_RESULT,
                {
                    "__aggregate__": True,
                    "combiner": name,
                    "stats_rows": [list(rows) for rows in result.per_set_rows],
                },
                size_hint=1024,
            )
            self._trace(f"{name} sent cluster statistics to querier")

    # -- phase 3: combination ---------------------------------------------------------

    def _on_partial_result(self, device: Edgelet, payload: dict[str, Any]) -> None:
        op_id = payload.get("op_id", "")
        runtime = self._combiners.get(op_id)
        if runtime is None:
            return
        partial = PartialGroups.from_dict(payload["partial"])
        if payload.get("stats"):
            self._stats_partials[op_id][payload["partition_index"]] = partial
            return
        runtime.record_partial(
            payload["partition_index"], payload["group_index"], partial
        )
        self._m_partials.inc()

    def _finalize(self) -> None:
        self._mark_combination_start()
        for name in ("combiner", "combiner-backup"):
            combiner_op = self.plan.operator(name)
            device = self._device_of(combiner_op)
            if not self.network.is_online(device.device_id):
                self._trace(f"{name} offline at deadline")
                continue
            runtime = self._combiners[name]
            if self.kind == "aggregate":
                with self._prof_combine:
                    result = runtime.finalize_aggregate(
                        self._aggregate_indices_per_group
                    )
                if result is None:
                    self._trace(f"{name}: no partitions received, cannot finalize")
                    continue
                payload: dict[str, Any] = {
                    "__aggregate__": True,
                    "combiner": name,
                    "tally": runtime.tally_summary(),
                    "rows": [list(rows) for rows in result.per_set_rows],
                }
            else:
                with self._prof_combine:
                    outcome = runtime.finalize_kmeans()
                if outcome is None:
                    self._trace(f"{name}: no knowledges received, cannot finalize")
                    continue
                if self._stats_query is not None and name == "combiner":
                    # launch the Group-By-on-clusters round: ship the
                    # final centroids back to every Computer
                    for computer in self._computers:
                        target = self._device_of(computer)
                        self._ship(
                            device, target, MessageKind.KNOWLEDGE,
                            {
                                "__aggregate__": True,
                                "op_id": computer.op_id,
                                "final_centroids": outcome.centroids.tolist(),
                            },
                            size_hint=512,
                        )
                payload = {
                    "__aggregate__": True,
                    "combiner": name,
                    "tally": runtime.tally_summary(),
                    "centroids": outcome.centroids.tolist(),
                    "weights": outcome.weights.tolist(),
                    "knowledges_merged": outcome.knowledges_merged,
                }
            self._audit(device, name, "combine", 0)
            querier_op = self.plan.operators(OperatorRole.QUERIER)[0]
            querier_device = self._device_of(querier_op)
            self._ship(
                device, querier_device, MessageKind.FINAL_RESULT, payload,
                size_hint=1024,
            )
            self._trace(f"{name} sent final result to querier")

    def _on_final_result(self, device: Edgelet, payload: dict[str, Any]) -> None:
        if "stats_rows" in payload:
            self._on_cluster_stats_result(payload)
            return
        if self._final_delivered:
            return  # active-backup duplicate, querier dedupes
        self._final_delivered = True
        self.report.success = True
        self.report.delivered_by = payload.get("combiner")
        self.report.completion_time = self.simulator.now
        self._m_finals.inc()
        if self._span_combination is not None:
            self._span_combination.finish(at=self.simulator.now)
        self.telemetry.tracer.mark(
            f"exec.{self.plan.query_id}.completion", at=self.simulator.now
        )
        self.report.tally = payload.get("tally", {})
        self.report.received_partitions = self.report.tally.get("received", 0)
        if self.kind == "aggregate":
            per_set = tuple(
                tuple(dict(row) for row in rows) for rows in payload["rows"]
            )
            self.report.result = GroupingSetsResult(self.query, per_set)
        else:
            self.report.kmeans = KMeansOutcome(
                centroids=np.asarray(payload["centroids"], dtype=float),
                weights=np.asarray(payload["weights"], dtype=float),
                knowledges_merged=payload["knowledges_merged"],
            )
        self._audit(device, "querier", "deliver", 0)
        self._trace(
            f"querier received final result from {self.report.delivered_by}"
        )

    def _on_cluster_stats_result(self, payload: dict[str, Any]) -> None:
        """Attach the Group-By-on-clusters result to the K-Means outcome."""
        if self._stats_delivered or self.report.kmeans is None:
            return
        self._stats_delivered = True
        per_set = tuple(
            tuple(dict(row) for row in rows) for rows in payload["stats_rows"]
        )
        stats = GroupingSetsResult(self._stats_query, per_set)
        import dataclasses

        self.report.kmeans = dataclasses.replace(
            self.report.kmeans, cluster_stats=stats
        )
        self._trace("querier received cluster statistics")
