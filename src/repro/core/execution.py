"""Deprecated: the ``EdgeletExecutor`` monolith, now a thin shim.

The execution engine lives in :mod:`repro.core.runtime`: one small
runtime per operator role (contributor, builder, computer, combiner,
querier), a pluggable resiliency strategy
(:class:`~repro.core.runtime.strategy.OvercollectionStrategy` /
:class:`~repro.core.runtime.strategy.BackupStrategy`), and a thin
:class:`~repro.core.runtime.ExecutionCoordinator` that owns routing,
dedup, and the phase timers.  New code should construct the
coordinator directly::

    from repro.core.runtime import ExecutionCoordinator

    report = ExecutionCoordinator(sim, net, devices, plan).run()

This module keeps the historical entrypoint importable:
:class:`EdgeletExecutor` is the coordinator pinned to the
Overcollection strategy (matching its legacy behaviour of running
overcollection mechanics regardless of the plan's declared strategy),
and the result records re-export from :mod:`repro.core.runtime.report`.
Constructing the shim emits a :class:`DeprecationWarning`.
"""

from __future__ import annotations

import warnings

from repro.core.runtime.combiner import CombinerState, stitch_groups
from repro.core.runtime.coordinator import ExecutionCoordinator
from repro.core.runtime.report import ExecutionError, ExecutionReport, KMeansOutcome
from repro.core.runtime.strategy import OvercollectionStrategy

__all__ = ["EdgeletExecutor", "ExecutionReport", "KMeansOutcome", "ExecutionError"]

# Historical private names, still imported by older analysis scripts.
_CombinerRuntime = CombinerState
_stitch_groups = stitch_groups


class EdgeletExecutor(ExecutionCoordinator):
    """Deprecated alias for the coordinator with Overcollection pinned.

    Accepts the same arguments as :class:`ExecutionCoordinator` (minus
    ``strategy``, which is forced to Overcollection to mirror the
    legacy class).  Prefer the coordinator, which also infers the
    Backup strategy from backup-planned aggregate metadata.
    """

    def __init__(self, *args, **kwargs):
        warnings.warn(
            "EdgeletExecutor is deprecated; use "
            "repro.core.runtime.ExecutionCoordinator",
            DeprecationWarning,
            stacklevel=2,
        )
        kwargs["strategy"] = OvercollectionStrategy()
        super().__init__(*args, **kwargs)

    # Legacy private aliases kept for external scripts that poked at
    # the monolith's internals.  New code: use the public accessors.

    @property
    def _builder_rows(self):
        return self.builder.rows_by_partition

    @property
    def _combiners(self):
        return self.combiner.states

    @property
    def _aggregate_indices_per_group(self):
        return self.computer.aggregate_indices_per_group

    def _attach_handlers(self) -> None:
        self.attach_handlers()

    def _schedule_contributions(self) -> None:
        self.contributor.schedule_contributions()

    def _end_collection(self) -> None:
        self.end_collection()

    def _finalize(self) -> None:
        self.finalize()
