"""Runtime execution of the Backup strategy.

Backup plans (``ResiliencyParameters(strategy="backup")``) carry, for
every Snapshot Builder and Computer, an ordered chain of passive
replicas that hold the same inputs (contributors and builders send to
every rank).  At runtime:

* the **primary** (rank 0) executes on schedule and broadcasts a small
  *shipped* control message to its sibling replicas;
* each **replica** arms a takeover timer at
  ``rank * takeover_timeout`` past the primary's firing point; when the
  timer fires, the replica executes from its own copy of the input —
  unless it heard a *shipped* marker from a lower rank;
* duplicates are possible when the marker itself is lost (the network
  is uncertain); consumers deduplicate — Computers keep the first
  partition they receive, the Combiner's partial recording is
  idempotent per (partition, group) cell.

This trades latency (sequential timeouts) for applicability: unlike
Overcollection it does not require distributive operators, matching the
paper's taxonomy ("the Backup strategy can be used at the price of a
higher complexity and lower performance").
"""

from __future__ import annotations

from typing import Any

from repro.core.backup import BackupChain, BackupConfig
from repro.core.execution import EdgeletExecutor, ExecutionError
from repro.core.qep import Operator, OperatorRole
from repro.crypto.merkle import MerkleTree
from repro.devices.edgelet import Edgelet
from repro.network.messages import MessageKind
from repro.query.groupby import GroupByQuery, evaluate_group_by

__all__ = ["BackupExecutor"]


def _base_id(op_id: str) -> str:
    """Strip the ``.bN`` replica suffix: ``builder[2].b1`` -> ``builder[2]``."""
    return op_id.split(".b")[0]


def _rank_of(operator: Operator) -> int:
    return operator.params.get("backup_rank", 0)


class BackupExecutor(EdgeletExecutor):
    """Executes a Backup-strategy plan with live takeovers.

    Accepts the same arguments as :class:`EdgeletExecutor` plus the
    ``takeover_timeout`` used by the replica chains.  Only aggregate
    queries are supported (the demo's non-distributive path).
    """

    def __init__(self, *args, takeover_timeout: float = 5.0, **kwargs):
        self._takeover_timeout = takeover_timeout
        super().__init__(*args, **kwargs)
        if self.plan.metadata.get("strategy") != "backup":
            raise ExecutionError("BackupExecutor requires a backup-strategy plan")
        if self.kind != "aggregate":
            raise ExecutionError(
                "BackupExecutor supports aggregate queries (use the "
                "heartbeat-based Overcollection executor for iterative ML)"
            )
        self._index_replicas()

    # -- additional indexing ------------------------------------------------

    def _index_replicas(self) -> None:
        replicas = self.plan.metadata.get("backup_replicas", 0)
        config = BackupConfig(
            replicas=replicas, takeover_timeout=self._takeover_timeout
        )
        self.chains: dict[str, BackupChain] = {}
        self._ops_by_base: dict[str, list[Operator]] = {}
        for operator in self.plan.operators():
            if operator.role not in (
                OperatorRole.SNAPSHOT_BUILDER, OperatorRole.COMPUTER
            ):
                continue
            base = _base_id(operator.op_id)
            self._ops_by_base.setdefault(base, []).append(operator)
            chain = self.chains.get(base)
            if chain is None:
                chain = BackupChain(base, config)
                self.chains[base] = chain
            chain.register(_rank_of(operator), operator.assigned_to or "")
        for ops in self._ops_by_base.values():
            ops.sort(key=_rank_of)
        # per-op input storage (each replica holds its own copy)
        self._rows_by_op: dict[str, list[dict[str, Any]]] = {
            op.op_id: []
            for ops in self._ops_by_base.values()
            for op in ops
        }
        # bases for which this run already heard a "shipped" marker, and
        # at which rank (device-local state is approximated run-globally
        # per base+listening-device pair)
        self._shipped_heard: dict[str, set[str]] = {}
        self.takeover_log: list[tuple[float, str, int]] = []
        self._m_takeovers = self.telemetry.metrics.counter(
            "exec.backup_takeovers", query=self.plan.query_id
        )

    # -- collection --------------------------------------------------------------

    def _on_contribution(self, device: Edgelet, payload: dict[str, Any]) -> None:
        if self.simulator.now > self.collect_end:
            return
        op_id = payload.get("op_id", "")
        if self._is_duplicate_contribution(op_id, payload):
            return
        bucket = self._rows_by_op.get(op_id)
        if bucket is None:
            return
        cap = self.config.partition_cardinality
        room = cap - len(bucket)
        if room <= 0:
            return
        accepted = payload["rows"][:room]
        bucket.extend(accepted)
        self._count_tuples(device.device_id, len(accepted))

    def _end_collection(self) -> None:
        """Arm the whole builder chain: primary now, replicas staggered."""
        for base, ops in sorted(self._ops_by_base.items()):
            if ops[0].role != OperatorRole.SNAPSHOT_BUILDER:
                continue
            for operator in ops:
                rank = _rank_of(operator)
                delay = rank * self._takeover_timeout
                self.simulator.schedule(
                    delay,
                    self._make_builder_fire(base, operator),
                    f"{operator.op_id} (rank {rank}) builder fire",
                )

    def _make_builder_fire(self, base: str, operator: Operator):
        # fence against Simulator.reset(): a timer armed on the previous
        # timeline must never execute on the new one, even if the fire
        # closure leaks out of the cancelled event queue
        epoch = self.simulator.epoch

        def fire() -> None:
            if self.simulator.epoch != epoch:
                return
            device = self._device_of(operator)
            rank = _rank_of(operator)
            if rank > 0:
                if device.device_id in self._shipped_heard.get(base, set()):
                    return  # a lower rank already shipped; stand down
                self.takeover_log.append((self.simulator.now, base, rank))
                self._trace(f"{operator.op_id} takes over {base}")
                self._m_takeovers.inc()
            if not self.network.is_online(device.device_id):
                self._trace(f"{operator.op_id} offline, cannot ship {base}")
                return
            rows = self._rows_by_op.get(operator.op_id, [])
            cap = self.config.partition_cardinality
            rows = rows[:cap]
            if not rows:
                self._trace(f"{operator.op_id} collected no rows")
                return
            commitment = MerkleTree(
                [repr(sorted(row.items())).encode("utf-8") for row in rows]
            ).root_hex()
            self._trace(
                f"{operator.op_id} snapshot frozen: {len(rows)} rows, "
                f"merkle={commitment[:12]}…"
            )
            self._mark_collection_end()
            self._m_snapshots.inc()
            self._ship_partition(operator, device, rows, commitment)
            self._announce_shipped(base, operator, device)
        return fire

    def _ship_partition(self, operator, device, rows, commitment) -> None:
        partition_index = operator.params["partition_index"]
        for consumer in self.plan.consumers_of(operator.op_id):
            if consumer.role != OperatorRole.COMPUTER:
                continue
            group = consumer.params.get("column_group") or self.collected_columns
            projected = [
                {column: row.get(column) for column in group} for row in rows
            ]
            target = self._device_of(consumer)
            self._ship(
                device,
                target,
                MessageKind.PARTITION,
                {
                    "op_id": consumer.op_id,
                    "partition_index": partition_index,
                    "group_index": consumer.params.get("group_index", 0),
                    "commitment": commitment,
                    "rows": projected,
                },
                size_hint=64 * len(projected),
            )

    def _announce_shipped(self, base: str, operator: Operator, device) -> None:
        """Tell the sibling replicas their takeover is unnecessary."""
        for sibling in self._ops_by_base.get(base, []):
            if sibling.op_id == operator.op_id:
                continue
            target = self._device_of(sibling)
            self._ship(
                device, target, MessageKind.CONTROL,
                {"shipped": base, "rank": _rank_of(operator),
                 "op_id": sibling.op_id},
                size_hint=64,
            )

    # -- computation -------------------------------------------------------------

    def _on_partition(self, device: Edgelet, payload: dict[str, Any]) -> None:
        op_id = payload.get("op_id", "")
        base = _base_id(op_id)
        operator = None
        for candidate in self._ops_by_base.get(base, []):
            if candidate.op_id == op_id:
                operator = candidate
                break
        if operator is None:
            return
        bucket = self._rows_by_op.get(op_id)
        if bucket is None or bucket:
            return  # first partition wins; duplicates dropped
        rows = payload["rows"]
        bucket.extend(rows)
        self._count_tuples(device.device_id, len(rows))
        rank = _rank_of(operator)
        if rank == 0:
            self._fire_computer(base, operator, device)
        else:
            self.simulator.schedule(
                rank * self._takeover_timeout,
                self._make_computer_takeover(base, operator),
                f"{op_id} (rank {rank}) computer takeover",
            )

    def _make_computer_takeover(self, base: str, operator: Operator):
        epoch = self.simulator.epoch

        def fire() -> None:
            if self.simulator.epoch != epoch:
                return
            device = self._device_of(operator)
            if device.device_id in self._shipped_heard.get(base, set()):
                return
            self.takeover_log.append(
                (self.simulator.now, base, _rank_of(operator))
            )
            self._trace(f"{operator.op_id} takes over {base}")
            self._m_takeovers.inc()
            self._fire_computer(base, operator, device)
        return fire

    def _fire_computer(self, base: str, operator: Operator, device) -> None:
        if not self.network.is_online(device.device_id):
            self._mark_computation_start()
            self._trace(f"{operator.op_id} offline, partial lost")
            return
        rows = self._rows_by_op.get(operator.op_id, [])
        indices = operator.params.get("aggregate_indices") or list(
            range(len(self.query.aggregates))
        )
        sub_query = GroupByQuery(
            grouping_sets=self.query.grouping_sets,
            aggregates=tuple(self.query.aggregates[i] for i in indices),
        )
        with self._prof_aggregate:
            partial = evaluate_group_by(sub_query, rows)
        payload = {
            "__aggregate__": True,
            "partition_index": operator.params["partition_index"],
            "group_index": operator.params.get("group_index", 0),
            "partial": partial.to_dict(),
        }
        latency = device.compute_latency(float(max(len(rows), 1)))

        def send() -> None:
            self._mark_computation_start()
            if not self.network.is_online(device.device_id):
                self._trace(f"{operator.op_id} offline, partial lost")
                return
            self._trace(f"{operator.op_id} partial result computed and sent")
            for name in ("combiner", "combiner-backup"):
                combiner_op = self.plan.operator(name)
                target = self._device_of(combiner_op)
                self._ship(
                    device, target, MessageKind.PARTIAL_RESULT,
                    dict(payload, op_id=name), size_hint=512,
                )
            self._announce_shipped(base, operator, device)

        self.simulator.schedule(latency, send, f"{operator.op_id} partial")

    # -- control -----------------------------------------------------------------

    def _dispatch(self, device: Edgelet, kind: MessageKind, payload: Any) -> None:
        if kind == MessageKind.CONTROL and isinstance(payload, dict):
            base = payload.get("shipped")
            if base is not None:
                self._shipped_heard.setdefault(base, set()).add(device.device_id)
            return
        super()._dispatch(device, kind, payload)
