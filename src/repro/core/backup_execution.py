"""Deprecated: the ``BackupExecutor`` subclass, now a thin shim.

The Backup strategy's replica chains, takeover timers, and
shipped-marker handling live in
:class:`repro.core.runtime.strategy.BackupStrategy`, a policy object
plugged into the :class:`repro.core.runtime.ExecutionCoordinator`
rather than an executor subclass overriding private methods.  New code
should construct the coordinator (the strategy is inferred from
backup-planned aggregate metadata)::

    from repro.core.runtime import ExecutionCoordinator

    report = ExecutionCoordinator(
        sim, net, devices, plan, takeover_timeout=5.0
    ).run()

This module keeps the historical entrypoint importable:
:class:`BackupExecutor` is the coordinator pinned to
:class:`BackupStrategy` with the given ``takeover_timeout``.
Constructing the shim emits a :class:`DeprecationWarning`.
"""

from __future__ import annotations

import warnings

from repro.core.runtime.coordinator import ExecutionCoordinator
from repro.core.runtime.strategy import BackupStrategy, base_op_id, rank_of

__all__ = ["BackupExecutor"]

# Historical private helpers, re-exported for older scripts.
_base_id = base_op_id
_rank_of = rank_of


class BackupExecutor(ExecutionCoordinator):
    """Deprecated alias for the coordinator with the Backup strategy.

    Accepts the same arguments as :class:`ExecutionCoordinator` plus
    the ``takeover_timeout`` used by the replica chains.  Only
    aggregate queries are supported (the demo's non-distributive path);
    a non-backup plan or a K-Means plan raises
    :class:`repro.core.runtime.report.ExecutionError`, exactly like the
    legacy subclass.
    """

    def __init__(self, *args, takeover_timeout: float = 5.0, **kwargs):
        warnings.warn(
            "BackupExecutor is deprecated; use "
            "repro.core.runtime.ExecutionCoordinator with BackupStrategy",
            DeprecationWarning,
            stacklevel=2,
        )
        kwargs["strategy"] = BackupStrategy(takeover_timeout=takeover_timeout)
        super().__init__(*args, **kwargs)

    # Legacy private aliases kept for external scripts.

    @property
    def _takeover_timeout(self) -> float:
        return self.strategy.takeover_timeout

    @property
    def _rows_by_op(self):
        return self.strategy.rows_by_op

    @property
    def _shipped_heard(self):
        return self.strategy.shipped_heard

    def _attach_handlers(self) -> None:
        self.attach_handlers()

    def _schedule_contributions(self) -> None:
        self.contributor.schedule_contributions()

    def _end_collection(self) -> None:
        self.end_collection()

    def _make_builder_fire(self, base, operator):
        return self.strategy._make_builder_fire(base, operator)
