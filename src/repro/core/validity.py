"""Validity checking: distributed result vs. centralized oracle.

The Validity property states that "the query result is equivalent to the
one obtained in a centralized context".  For distributive aggregates
this equivalence is exact when no partition is lost; when up to ``m``
partitions are lost the surviving partitions are a representative
sample, so extrapolated counts/sums are unbiased and means converge —
the comparison then reports per-cell relative errors instead of demanding
exact equality.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Any

from repro.query.groupby import GroupingSetsResult

__all__ = [
    "ValidityReport",
    "compare_results",
    "coverage_confidence",
    "partial_validity_bound",
]


@dataclass(frozen=True)
class ValidityReport:
    """Comparison outcome between two grouping-sets results.

    Attributes:
        exact_match: every group matches and every aggregate value
            matches up to floating-point round-off (relative error below
            1e-12 — partial states are summed in a different order than
            a single centralized pass, so bit-exactness is not the
            meaningful criterion).
        missing_groups: group keys present centrally, absent distributed.
        extra_groups: group keys present distributed, absent centrally.
        max_relative_error: worst relative error over shared cells.
        mean_relative_error: mean relative error over shared cells.
        compared_cells: number of shared (group, aggregate) cells.
    """

    exact_match: bool
    missing_groups: int
    extra_groups: int
    max_relative_error: float
    mean_relative_error: float
    compared_cells: int

    def is_valid(self, tolerance: float = 0.0) -> bool:
        """Validity with a tolerance: no structural mismatch and every
        shared cell within ``tolerance`` relative error."""
        return (
            self.missing_groups == 0
            and self.extra_groups == 0
            and self.max_relative_error <= tolerance + 1e-12
        )

    def summary(self) -> dict[str, Any]:
        """Stats line for experiment tables."""
        return {
            "exact_match": self.exact_match,
            "missing_groups": self.missing_groups,
            "extra_groups": self.extra_groups,
            "max_relative_error": self.max_relative_error,
            "mean_relative_error": self.mean_relative_error,
        }


def _index_rows(result: GroupingSetsResult) -> list[dict[str, dict[str, Any]]]:
    """For each grouping set, map canonical group key -> aggregate values."""
    indexed: list[dict[str, dict[str, Any]]] = []
    aggregate_names = {spec.output_name for spec in result.query.aggregates}
    for grouping_set, rows in zip(result.query.grouping_sets, result.per_set_rows):
        per_set: dict[str, dict[str, Any]] = {}
        for row in rows:
            key = json.dumps(
                [row.get(column) for column in grouping_set],
                separators=(",", ":"),
            )
            per_set[key] = {
                name: value for name, value in row.items() if name in aggregate_names
            }
        indexed.append(per_set)
    return indexed


def _relative_error(expected: Any, actual: Any) -> float:
    """Relative error between two aggregate values (NULL-aware).

    Histogram outputs are lists of bucket counts; their error is the
    total-variation-style relative deviation (sum of absolute bucket
    differences over the expected total).
    """
    if expected is None and actual is None:
        return 0.0
    if expected is None or actual is None:
        return math.inf
    if isinstance(expected, list) or isinstance(actual, list):
        if not isinstance(expected, list) or not isinstance(actual, list):
            return math.inf
        if len(expected) != len(actual):
            return math.inf
        expected_total = sum(abs(float(v)) for v in expected)
        deviation = sum(
            abs(float(a) - float(e)) for a, e in zip(actual, expected)
        )
        if expected_total == 0.0:
            return 0.0 if deviation == 0.0 else math.inf
        return deviation / expected_total
    expected_f = float(expected)
    actual_f = float(actual)
    if expected_f == actual_f:
        return 0.0
    denominator = max(abs(expected_f), 1e-12)
    return abs(actual_f - expected_f) / denominator


def coverage_confidence(per_group_received: list[int], total_partitions: int) -> float:
    """Fraction of the planned partition mass that actually arrived.

    The per-vertical-group received counts are averaged over the planned
    ``n + m`` partitions; 1.0 means full coverage, 0.0 means nothing
    arrived anywhere.
    """
    if total_partitions <= 0 or not per_group_received:
        return 0.0
    mean_received = sum(per_group_received) / len(per_group_received)
    return min(1.0, mean_received / total_partitions)


def partial_validity_bound(
    per_group_received: list[int], total_partitions: int
) -> float:
    """Worst-case relative-error bound for a degraded (partial) result.

    Partitions are representative hash samples, so extrapolating a
    group's counts/sums by ``(n + m) / r`` is unbiased; the residual
    error is driven by cross-partition heterogeneity, which is bounded
    (in the relative sense used by :func:`compare_results`) by the lost
    partition mass over the received mass: ``(t - r) / r`` for the
    worst-covered group, where ``t = n + m``.  A group with zero
    received partitions makes the bound infinite — its aggregates are
    simply absent from the degraded rows, which is why degraded results
    carry this bound *and* the coverage annotation rather than either
    alone.
    """
    covered = [r for r in per_group_received if r > 0]
    if not covered or total_partitions <= 0:
        return math.inf
    worst = min(covered)
    return (total_partitions - worst) / worst


def compare_results(
    centralized: GroupingSetsResult,
    distributed: GroupingSetsResult,
    ignore_missing_cells: bool = False,
) -> ValidityReport:
    """Compare a distributed result against the centralized oracle.

    Both results must come from the same logical query (same grouping
    sets and aggregates), otherwise ``ValueError``.

    With ``ignore_missing_cells`` (the degraded-result mode) groups and
    aggregate cells that the distributed side never produced — because a
    whole vertical group's Computers were unreachable — are excluded
    from the structural counts and the error statistics instead of
    scoring as infinite error; the cells that *were* produced are still
    held to the same relative-error accounting.
    """
    if centralized.query.grouping_sets != distributed.query.grouping_sets:
        raise ValueError("results come from different grouping sets")
    central_names = [s.output_name for s in centralized.query.aggregates]
    distributed_names = [s.output_name for s in distributed.query.aggregates]
    if central_names != distributed_names:
        raise ValueError("results come from different aggregate lists")

    central_index = _index_rows(centralized)
    distributed_index = _index_rows(distributed)
    missing = 0
    extra = 0
    errors: list[float] = []
    for per_set_central, per_set_distributed in zip(central_index, distributed_index):
        central_keys = set(per_set_central)
        distributed_keys = set(per_set_distributed)
        if not ignore_missing_cells:
            missing += len(central_keys - distributed_keys)
        extra += len(distributed_keys - central_keys)
        for key in central_keys & distributed_keys:
            for name in central_names:
                if ignore_missing_cells and name not in per_set_distributed[key]:
                    continue
                errors.append(
                    _relative_error(
                        per_set_central[key].get(name),
                        per_set_distributed[key].get(name),
                    )
                )
    max_error = max(errors, default=0.0)
    mean_error = sum(errors) / len(errors) if errors else 0.0
    exact = missing == 0 and extra == 0 and max_error <= 1e-12
    return ValidityReport(
        exact_match=exact,
        missing_groups=missing,
        extra_groups=extra,
        max_relative_error=max_error,
        mean_relative_error=mean_error,
        compared_cells=len(errors),
    )
