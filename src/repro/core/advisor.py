"""Strategy advisor: which resiliency strategy fits which query.

The companion paper [14] gives a taxonomy of the two strategies; the
demo paper summarizes it: *"the Overcollection strategy is best adapted
to any use case where performance matters and approximate results are
acceptable (e.g., statistics, machine learning processes)"* and *"the
Overcollection strategy only applies if the processing is distributive;
otherwise, the Backup strategy can be used at the price of a higher
complexity and lower performance."*

:func:`recommend_strategy` encodes that decision procedure and returns
an explained recommendation, including the quantitative trade-off the
Q-GEN bench measures (extra devices vs. extra latency).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.backup import BackupConfig
from repro.core.resiliency import minimum_overcollection

__all__ = [
    "QueryProperties",
    "StrategyRecommendation",
    "properties_for",
    "recommend_strategy",
]


@dataclass(frozen=True)
class QueryProperties:
    """The facets of a query that drive the strategy choice.

    Attributes:
        distributive: whether the processing decomposes into mergeable
            partial states (aggregates, grouped aggregates, sketches).
        iterative: whether the algorithm exchanges partial results over
            several rounds (K-Means and friends).
        exact_result_required: ``True`` when the consumer cannot accept
            an approximate/extrapolated result.
        deadline_sensitive: ``True`` when completion latency dominates
            (e.g. real-time opportunistic polling).
    """

    distributive: bool
    iterative: bool = False
    exact_result_required: bool = False
    deadline_sensitive: bool = True


@dataclass(frozen=True)
class StrategyRecommendation:
    """An explained strategy choice.

    Attributes:
        strategy: ``"overcollection"`` or ``"backup"``.
        heartbeat_execution: whether the iterative heartbeat method of
            Section 2.2 applies on top of the chosen strategy.
        reasons: human-readable justification, one clause per line.
        extra_devices: devices the strategy spends beyond the minimum
            (m partitions, or replica count per processor).
        worst_extra_latency: worst-case added latency in virtual
            seconds (0 for Overcollection; sequential takeovers for
            Backup).
    """

    strategy: str
    heartbeat_execution: bool
    reasons: tuple[str, ...]
    extra_devices: int
    worst_extra_latency: float


def properties_for(kind: str) -> QueryProperties:
    """The :class:`QueryProperties` of a built-in query kind.

    Both executable kinds are distributive (grouped aggregates merge
    partial states; K-Means merges weighted centroid sets), and K-Means
    is the iterative one — the facts the compile pipeline feeds the
    advisor so its verdict and the runtime's capabilities agree.
    """
    if kind == "kmeans":
        return QueryProperties(distributive=True, iterative=True)
    if kind == "aggregate":
        return QueryProperties(distributive=True)
    raise ValueError(f"unknown query kind {kind!r}")


def recommend_strategy(
    properties: QueryProperties,
    n: int,
    fault_rate: float,
    target_success: float = 0.99,
    backup_config: BackupConfig | None = None,
) -> StrategyRecommendation:
    """Pick the resiliency strategy for a query.

    ``n`` is the horizontal partitioning degree and ``fault_rate`` the
    presumed per-partition fault probability; both are needed to
    quantify the cost of each branch.

    Iterative processing is checked first: the Backup strategy cannot
    cover heartbeat-cadenced operators (a promoted replica has no
    gossip history to resume from), so for iterative queries
    Overcollection with heartbeat execution is the only runnable
    answer — matching what the execution runtime actually supports.
    """
    backup = backup_config or BackupConfig()
    reasons: list[str] = []

    if properties.iterative:
        m = minimum_overcollection(n, fault_rate, target_success)
        reasons.append(
            "iterative algorithm: a promoted passive replica has no gossip "
            "history to resume from, so Backup does not apply"
        )
        reasons.append(
            "heartbeat-cadenced execution with resampling tolerates "
            "per-round message loss (Mini-batch-style)"
        )
        reasons.append(
            f"overcollection degree m={m} reaches P(success) >= {target_success}"
        )
        return StrategyRecommendation(
            strategy="overcollection",
            heartbeat_execution=True,
            reasons=tuple(reasons),
            extra_devices=m,
            worst_extra_latency=0.0,
        )

    if not properties.distributive:
        reasons.append(
            "processing is not distributive: Overcollection's partial-state "
            "merge does not apply"
        )
        reasons.append(
            f"Backup covers any operator at the price of up to "
            f"{backup.worst_case_delay():.0f}s of sequential takeovers"
        )
        return StrategyRecommendation(
            strategy="backup",
            heartbeat_execution=False,
            reasons=tuple(reasons),
            extra_devices=backup.replicas,
            worst_extra_latency=backup.worst_case_delay(),
        )

    if properties.exact_result_required:
        reasons.append(
            "an exact result is required: Overcollection may lose up to m "
            "partitions and extrapolate, Backup re-executes the identical input"
        )
        return StrategyRecommendation(
            strategy="backup",
            heartbeat_execution=False,
            reasons=tuple(reasons),
            extra_devices=backup.replicas,
            worst_extra_latency=backup.worst_case_delay(),
        )

    m = minimum_overcollection(n, fault_rate, target_success)
    reasons.append("processing is distributive: partial states merge at the combiner")
    if properties.deadline_sensitive:
        reasons.append(
            "deadline-sensitive: Overcollection adds no takeover latency"
        )
    reasons.append(
        f"overcollection degree m={m} reaches P(success) >= {target_success}"
    )
    return StrategyRecommendation(
        strategy="overcollection",
        heartbeat_execution=False,
        reasons=tuple(reasons),
        extra_devices=m,
        worst_extra_latency=0.0,
    )
