"""Centralized reference engine.

The demonstration lets attendees "take the same dataset used with the
distributed edgelets and run the processing centrally" to verify the
Validity property.  :class:`CentralizedEngine` is that oracle: it holds
named relations and evaluates the same logical queries in one process,
with no partitioning and no failures.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.query.groupby import (
    GroupByQuery,
    GroupingSetsResult,
    evaluate_group_by,
    finalize_partials,
)
from repro.query.relation import Relation
from repro.query.schema import Schema
from repro.query.sql import parse_query

__all__ = ["CentralizedEngine"]


class CentralizedEngine:
    """In-process evaluation of the supported query dialect."""

    def __init__(self) -> None:
        self._tables: dict[str, Relation] = {}

    def register(self, name: str, relation: Relation) -> None:
        """Register (or replace) a named table."""
        self._tables[name] = relation

    def create_table(self, name: str, schema: Schema, rows: Iterable[dict[str, Any]] = ()) -> Relation:
        """Create and register an empty (or seeded) table."""
        relation = Relation(schema, rows)
        self._tables[name] = relation
        return relation

    def table(self, name: str) -> Relation:
        """Look up a registered table."""
        try:
            return self._tables[name]
        except KeyError:
            known = ", ".join(sorted(self._tables)) or "<none>"
            raise KeyError(f"unknown table {name!r}; known: {known}") from None

    def tables(self) -> list[str]:
        """Registered table names (sorted)."""
        return sorted(self._tables)

    def execute_logical(self, table: str, query: GroupByQuery) -> GroupingSetsResult:
        """Evaluate a logical :class:`GroupByQuery` against a table."""
        relation = self.table(table)
        partial = evaluate_group_by(query, iter(relation))
        return finalize_partials(query, partial)

    def execute_sql(self, sql: str) -> GroupingSetsResult:
        """Parse and evaluate a SQL string."""
        parsed = parse_query(sql)
        return self.execute_logical(parsed.table, parsed.query)
