"""Mergeable sketches: HyperLogLog and Bloom filters.

Overcollection requires *distributive* operators with constant-size
mergeable state.  COUNT DISTINCT is not distributive over exact sets,
but it is over HyperLogLog registers (register-wise max is associative,
commutative, and idempotent — duplicates across partitions cost
nothing).  This is how the Edgelet engine supports
``distinct(patient_id)``-style statistics without ever moving raw
identifiers past a Computer.

The Bloom filter serves the transport layer: Snapshot Builders running
on RAM-starved home boxes (an STM32F417 has 192 KiB) deduplicate
retransmitted contributions in constant memory instead of keeping exact
sets of contribution ids.
"""

from __future__ import annotations

import hashlib
import math
from typing import Any, Iterable

__all__ = ["HyperLogLog", "BloomFilter"]


def _hash64(value: Any, salt: str = "") -> int:
    """Stable 64-bit hash of any repr-able value."""
    payload = f"{salt}|{value!r}".encode("utf-8")
    return int.from_bytes(hashlib.sha256(payload).digest()[:8], "big")


class HyperLogLog:
    """HyperLogLog cardinality estimator [Flajolet et al. 2007].

    ``precision`` selects ``2**precision`` registers; the standard error
    is roughly ``1.04 / sqrt(2**precision)`` (about 3.25% at the default
    precision 10).  Merging two sketches (register-wise max) yields
    exactly the sketch of the union of their inputs.
    """

    __slots__ = ("precision", "_registers")

    def __init__(self, precision: int = 10, registers: list[int] | None = None):
        if not 4 <= precision <= 18:
            raise ValueError("precision must be in [4, 18]")
        self.precision = precision
        size = 1 << precision
        if registers is None:
            self._registers = [0] * size
        else:
            if len(registers) != size:
                raise ValueError(
                    f"expected {size} registers, got {len(registers)}"
                )
            self._registers = list(registers)

    @property
    def registers(self) -> list[int]:
        """A copy of the register array (for serialization)."""
        return list(self._registers)

    def add(self, value: Any) -> None:
        """Fold one value into the sketch."""
        hashed = _hash64(value)
        index = hashed >> (64 - self.precision)
        remaining = hashed & ((1 << (64 - self.precision)) - 1)
        # rank = position of the leftmost 1-bit in the remaining bits
        rank = (64 - self.precision) - remaining.bit_length() + 1
        if self._registers[index] < rank:
            self._registers[index] = rank

    def update(self, values: Iterable[Any]) -> None:
        """Fold many values."""
        for value in values:
            self.add(value)

    def merge(self, other: "HyperLogLog") -> "HyperLogLog":
        """Union sketch (register-wise max); precisions must match."""
        if other.precision != self.precision:
            raise ValueError("cannot merge sketches of different precision")
        merged = [max(a, b) for a, b in zip(self._registers, other._registers)]
        return HyperLogLog(self.precision, merged)

    def estimate(self) -> float:
        """Estimated number of distinct values folded so far.

        Uses the standard bias correction plus linear counting for the
        small-cardinality range.
        """
        m = len(self._registers)
        if m >= 128:
            alpha = 0.7213 / (1 + 1.079 / m)
        elif m == 64:
            alpha = 0.709
        elif m == 32:
            alpha = 0.697
        else:
            alpha = 0.673
        harmonic = sum(2.0 ** -register for register in self._registers)
        raw = alpha * m * m / harmonic
        if raw <= 2.5 * m:
            zeros = self._registers.count(0)
            if zeros:
                return m * math.log(m / zeros)
        return raw

    def relative_error(self) -> float:
        """Expected standard error of this sketch's estimates."""
        return 1.04 / math.sqrt(len(self._registers))

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible representation."""
        return {"precision": self.precision, "registers": self.registers}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "HyperLogLog":
        """Inverse of :meth:`to_dict`."""
        return cls(precision=data["precision"], registers=data["registers"])


class BloomFilter:
    """A classic Bloom filter with double hashing.

    ``capacity`` is the expected number of inserted items and
    ``error_rate`` the acceptable false-positive probability at that
    capacity; bit count and hash count are derived optimally.
    """

    __slots__ = ("n_bits", "n_hashes", "_bits", "inserted")

    def __init__(self, capacity: int = 1000, error_rate: float = 0.01):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0 < error_rate < 1:
            raise ValueError("error_rate must be in (0, 1)")
        n_bits = math.ceil(-capacity * math.log(error_rate) / (math.log(2) ** 2))
        self.n_bits = max(8, n_bits)
        self.n_hashes = max(1, round(self.n_bits / capacity * math.log(2)))
        self._bits = bytearray((self.n_bits + 7) // 8)
        self.inserted = 0

    def _positions(self, value: Any) -> Iterable[int]:
        h1 = _hash64(value, salt="bloom-1")
        h2 = _hash64(value, salt="bloom-2") | 1
        for i in range(self.n_hashes):
            yield (h1 + i * h2) % self.n_bits

    def add(self, value: Any) -> None:
        """Insert a value."""
        for position in self._positions(value):
            self._bits[position // 8] |= 1 << (position % 8)
        self.inserted += 1

    def __contains__(self, value: Any) -> bool:
        return all(
            self._bits[position // 8] & (1 << (position % 8))
            for position in self._positions(value)
        )

    def add_if_new(self, value: Any) -> bool:
        """Insert and report whether the value was (probably) new.

        Returns ``False`` when the value was probably seen before (or on
        a false positive); ``True`` when it is definitely new.
        """
        if value in self:
            return False
        self.add(value)
        return True

    def fill_ratio(self) -> float:
        """Fraction of set bits (saturation indicator)."""
        set_bits = sum(bin(byte).count("1") for byte in self._bits)
        return set_bits / self.n_bits
