"""Schema declarations for the shared horizontal database.

Every edgelet's datastore conforms to a common :class:`Schema`; queries
are planned against it.  Schemas also carry the privacy annotations the
planner needs: which columns are quasi-identifiers and which are
sensitive, so vertical partitioning can separate dangerous combinations.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Iterable

__all__ = ["ColumnType", "Column", "Schema", "SchemaError"]


class SchemaError(Exception):
    """Raised when a row or query does not fit the schema."""


class ColumnType(enum.Enum):
    """Supported column types."""

    INT = "int"
    FLOAT = "float"
    TEXT = "text"
    BOOL = "bool"

    def validates(self, value: Any) -> bool:
        """Whether a Python value is acceptable for this type."""
        if value is None:
            return True  # columns are nullable
        if self is ColumnType.INT:
            return isinstance(value, int) and not isinstance(value, bool)
        if self is ColumnType.FLOAT:
            return isinstance(value, (int, float)) and not isinstance(value, bool)
        if self is ColumnType.TEXT:
            return isinstance(value, str)
        return isinstance(value, bool)


@dataclass(frozen=True)
class Column:
    """One schema column with privacy annotations.

    Attributes:
        name: column name.
        ctype: value type.
        quasi_identifier: ``True`` for columns that, combined, can
            re-identify an individual (age, zipcode, ...).  The vertical
            partitioner never co-locates two quasi-identifiers that the
            scenario asks to separate.
        sensitive: ``True`` for columns whose values are themselves
            sensitive (diagnosis, dependency level, ...).
    """

    name: str
    ctype: ColumnType
    quasi_identifier: bool = False
    sensitive: bool = False

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible representation."""
        return {
            "name": self.name,
            "ctype": self.ctype.value,
            "quasi_identifier": self.quasi_identifier,
            "sensitive": self.sensitive,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Column":
        """Inverse of :meth:`to_dict`."""
        return cls(
            name=data["name"],
            ctype=ColumnType(data["ctype"]),
            quasi_identifier=data.get("quasi_identifier", False),
            sensitive=data.get("sensitive", False),
        )


@dataclass(frozen=True)
class Schema:
    """An ordered set of columns."""

    columns: tuple[Column, ...]

    def __post_init__(self) -> None:
        names = [column.name for column in self.columns]
        if len(names) != len(set(names)):
            raise SchemaError("duplicate column names in schema")

    @classmethod
    def of(cls, *columns: Column) -> "Schema":
        """Convenience constructor."""
        return cls(tuple(columns))

    @property
    def column_names(self) -> list[str]:
        """Names in declaration order."""
        return [column.name for column in self.columns]

    def column(self, name: str) -> Column:
        """Look up a column by name."""
        for column in self.columns:
            if column.name == name:
                return column
        raise SchemaError(f"no column named {name!r}")

    def has_column(self, name: str) -> bool:
        return any(column.name == name for column in self.columns)

    def quasi_identifiers(self) -> list[str]:
        """Names of all quasi-identifier columns."""
        return [c.name for c in self.columns if c.quasi_identifier]

    def sensitive_columns(self) -> list[str]:
        """Names of all sensitive columns."""
        return [c.name for c in self.columns if c.sensitive]

    def validate_row(self, row: dict[str, Any]) -> None:
        """Raise :class:`SchemaError` if the row violates the schema.

        Extra keys are rejected; missing keys are treated as NULL.
        """
        for key in row:
            if not self.has_column(key):
                raise SchemaError(f"row has unknown column {key!r}")
        for column in self.columns:
            value = row.get(column.name)
            if not column.ctype.validates(value):
                raise SchemaError(
                    f"column {column.name!r} expects {column.ctype.value}, "
                    f"got {type(value).__name__}"
                )

    def conform(self, row: dict[str, Any]) -> dict[str, Any]:
        """Validate and normalize a row to all schema columns."""
        self.validate_row(row)
        return {column.name: row.get(column.name) for column in self.columns}

    def project(self, names: Iterable[str]) -> "Schema":
        """Sub-schema restricted to ``names`` (order of ``names``)."""
        return Schema(tuple(self.column(name) for name in names))

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible representation."""
        return {"columns": [column.to_dict() for column in self.columns]}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Schema":
        """Inverse of :meth:`to_dict`."""
        return cls(tuple(Column.from_dict(c) for c in data["columns"]))
