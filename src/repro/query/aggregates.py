"""Distributive aggregates with mergeable partial states.

The Overcollection strategy (Section 2.2 of the paper) only applies to
*distributive* processing: each Computer aggregates its partition into a
small partial state, and the Computing Combiner merges the states it
receives.  Losing up to ``m`` of ``n + m`` partitions leaves a valid
result over a representative sample.

The states here are algebraic in the classical sense — COUNT, SUM, MIN,
MAX are distributive; AVG, VAR, STD are algebraic (constant-size partial
state: sum / sum of squares / count).  All states round-trip through
JSON so they can travel inside sealed envelopes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Iterable

__all__ = [
    "AggregateSpec",
    "AggregateState",
    "SUPPORTED_FUNCTIONS",
    "fold_value",
    "make_state",
    "merge_states",
    "new_state",
    "finalize_state",
]

#: ``distinct`` is approximate COUNT DISTINCT via HyperLogLog registers —
#: the only way to make distinct-counting distributive (duplicates across
#: partitions must cost nothing under Overcollection).  ``hist`` builds a
#: fixed-range equi-width histogram (bucket-wise sums merge exactly),
#: from which :mod:`repro.query.histogram` estimates quantiles.
SUPPORTED_FUNCTIONS = (
    "count", "sum", "min", "max", "avg", "var", "std", "distinct", "hist",
)

#: HyperLogLog precision used by ``distinct`` states (2**8 registers ≈
#: 6.5% standard error — constant, envelope-friendly state size).
DISTINCT_PRECISION = 8


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregate in a query's SELECT list.

    Attributes:
        function: one of :data:`SUPPORTED_FUNCTIONS`.
        column: the aggregated column, or ``None`` for ``count(*)``.
        alias: output column name (defaults to ``function_column``).
        params: function parameters — for ``hist``, the required
            ``(lower, upper, n_buckets)`` of the fixed bucket grid
            (values outside the range clamp into the edge buckets).
    """

    function: str
    column: str | None = None
    alias: str | None = None
    params: tuple = ()

    def __post_init__(self) -> None:
        if self.function not in SUPPORTED_FUNCTIONS:
            raise ValueError(
                f"unsupported aggregate {self.function!r}; "
                f"supported: {', '.join(SUPPORTED_FUNCTIONS)}"
            )
        if self.function != "count" and self.column is None:
            raise ValueError(f"{self.function} requires a column")
        if self.function == "hist":
            if len(self.params) != 3:
                raise ValueError("hist requires params (lower, upper, n_buckets)")
            lower, upper, n_buckets = self.params
            if not lower < upper:
                raise ValueError("hist requires lower < upper")
            if int(n_buckets) <= 0 or int(n_buckets) != n_buckets:
                raise ValueError("hist requires a positive integer bucket count")
        elif self.params:
            raise ValueError(f"{self.function} takes no parameters")

    @property
    def output_name(self) -> str:
        """Name of this aggregate in result rows."""
        if self.alias:
            return self.alias
        if self.column is None:
            return "count"
        return f"{self.function}_{self.column}"

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible representation."""
        return {
            "function": self.function,
            "column": self.column,
            "alias": self.alias,
            "params": list(self.params),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "AggregateSpec":
        """Inverse of :meth:`to_dict`."""
        return cls(
            data["function"],
            data.get("column"),
            data.get("alias"),
            tuple(data.get("params", ())),
        )


@dataclass
class AggregateState:
    """Constant-size mergeable partial state.

    The same state shape serves every supported function:
    ``(count, total, total_sq, minimum, maximum)`` plus optional
    HyperLogLog ``registers`` for ``distinct``; finalization picks the
    pieces each function needs.  NULL inputs are skipped, matching SQL
    semantics (except ``count(*)`` which counts every row).
    """

    count: int = 0
    total: float = 0.0
    total_sq: float = 0.0
    minimum: float | None = None
    maximum: float | None = None
    registers: list[int] | None = None
    buckets: list[int] | None = None

    def update(self, value: Any, count_star: bool = False) -> None:
        """Fold one numeric input value into the state."""
        if count_star:
            self.count += 1
            return
        if value is None:
            return
        number = float(value)
        self.count += 1
        self.total += number
        self.total_sq += number * number
        if self.minimum is None or number < self.minimum:
            self.minimum = number
        if self.maximum is None or number > self.maximum:
            self.maximum = number

    def update_distinct(self, value: Any) -> None:
        """Fold one value into the HyperLogLog registers (in place)."""
        from repro.query.sketches import _hash64

        if value is None:
            return
        if self.registers is None:
            self.registers = [0] * (1 << DISTINCT_PRECISION)
        hashed = _hash64(value)
        index = hashed >> (64 - DISTINCT_PRECISION)
        remaining = hashed & ((1 << (64 - DISTINCT_PRECISION)) - 1)
        rank = (64 - DISTINCT_PRECISION) - remaining.bit_length() + 1
        if self.registers[index] < rank:
            self.registers[index] = rank
        self.count += 1

    def update_hist(self, value: Any, params: tuple) -> None:
        """Fold one value into the fixed-grid histogram buckets."""
        if value is None:
            return
        lower, upper, n_buckets = params
        n_buckets = int(n_buckets)
        if self.buckets is None:
            self.buckets = [0] * n_buckets
        width = (upper - lower) / n_buckets
        index = int((float(value) - lower) / width)
        index = min(max(index, 0), n_buckets - 1)  # clamp out-of-range
        self.buckets[index] += 1
        self.count += 1

    def merge(self, other: "AggregateState") -> "AggregateState":
        """Combine two partial states (associative, commutative)."""
        merged = AggregateState(
            count=self.count + other.count,
            total=self.total + other.total,
            total_sq=self.total_sq + other.total_sq,
        )
        minima = [m for m in (self.minimum, other.minimum) if m is not None]
        maxima = [m for m in (self.maximum, other.maximum) if m is not None]
        merged.minimum = min(minima) if minima else None
        merged.maximum = max(maxima) if maxima else None
        if self.registers is not None or other.registers is not None:
            left = self.registers or [0] * (1 << DISTINCT_PRECISION)
            right = other.registers or [0] * (1 << DISTINCT_PRECISION)
            merged.registers = [max(a, b) for a, b in zip(left, right)]
        if self.buckets is not None or other.buckets is not None:
            size = len(self.buckets or other.buckets)
            left_buckets = self.buckets or [0] * size
            right_buckets = other.buckets or [0] * size
            if len(left_buckets) != len(right_buckets):
                raise ValueError("cannot merge histograms with different grids")
            merged.buckets = [a + b for a, b in zip(left_buckets, right_buckets)]
        return merged

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible representation."""
        return {
            "count": self.count,
            "total": self.total,
            "total_sq": self.total_sq,
            "minimum": self.minimum,
            "maximum": self.maximum,
            "registers": self.registers,
            "buckets": self.buckets,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "AggregateState":
        """Inverse of :meth:`to_dict`."""
        return cls(
            count=data["count"],
            total=data["total"],
            total_sq=data["total_sq"],
            minimum=data["minimum"],
            maximum=data["maximum"],
            registers=data.get("registers"),
            buckets=data.get("buckets"),
        )


def new_state(spec: AggregateSpec) -> AggregateState:
    """Create the empty partial state appropriate for ``spec``."""
    if spec.function == "distinct":
        return AggregateState(registers=[0] * (1 << DISTINCT_PRECISION))
    if spec.function == "hist":
        return AggregateState(buckets=[0] * int(spec.params[2]))
    return AggregateState()


def fold_value(spec: AggregateSpec, state: AggregateState, row: dict[str, Any]) -> None:
    """Fold one row into ``state`` according to ``spec``."""
    if spec.column is None:
        state.update(None, count_star=True)
    elif spec.function == "distinct":
        state.update_distinct(row.get(spec.column))
    elif spec.function == "hist":
        state.update_hist(row.get(spec.column), spec.params)
    else:
        state.update(row.get(spec.column))


def make_state(spec: AggregateSpec, rows: Iterable[dict[str, Any]]) -> AggregateState:
    """Build the partial state of ``spec`` over an iterable of rows."""
    state = new_state(spec)
    for row in rows:
        fold_value(spec, state, row)
    return state


def merge_states(states: Iterable[AggregateState]) -> AggregateState:
    """Merge any number of partial states (empty input → empty state)."""
    merged = AggregateState()
    for state in states:
        merged = merged.merge(state)
    return merged


def finalize_state(spec: AggregateSpec, state: AggregateState) -> Any:
    """Produce the final aggregate value from a (merged) state.

    Empty-input semantics follow SQL: ``count`` is 0, everything else is
    ``None``.
    """
    if spec.function == "count":
        return state.count
    if spec.function == "distinct":
        from repro.query.sketches import HyperLogLog

        if state.count == 0 or state.registers is None:
            return 0
        return round(HyperLogLog(DISTINCT_PRECISION, state.registers).estimate())
    if spec.function == "hist":
        if state.buckets is None:
            return [0] * int(spec.params[2])
        return list(state.buckets)
    if state.count == 0:
        return None
    if spec.function == "sum":
        return state.total
    if spec.function == "min":
        return state.minimum
    if spec.function == "max":
        return state.maximum
    if spec.function == "avg":
        return state.total / state.count
    # population variance / standard deviation
    mean = state.total / state.count
    variance = max(state.total_sq / state.count - mean * mean, 0.0)
    if spec.function == "var":
        return variance
    return math.sqrt(variance)
