"""GROUP BY and GROUPING SETS evaluation over partial aggregate states.

The first demonstration query is a *Grouping Sets* query: several
GROUP BY clauses evaluated in one pass over the same snapshot.  Like the
plain aggregates, grouped aggregation is distributive: each Computer
produces a map ``(grouping set, group key) -> partial states`` over its
partition, and the Combiner merges those maps.

A :class:`GroupByQuery` bundles everything a Computer needs (filter,
grouping sets, aggregate specs) and serializes to JSON for plan
shipping.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.query.aggregates import (
    AggregateSpec,
    AggregateState,
    finalize_state,
    fold_value,
    merge_states,
    new_state,
)
from repro.query.expressions import Expression, expression_from_dict

__all__ = [
    "GroupByQuery",
    "GroupingSetsResult",
    "PartialGroups",
    "evaluate_group_by",
    "merge_partials",
    "finalize_partials",
]

Row = dict[str, Any]

# JSON object keys must be strings; group keys are tuples of values, so
# we encode them canonically.


def _encode_group_key(values: tuple[Any, ...]) -> str:
    return json.dumps(list(values), sort_keys=False, separators=(",", ":"))


def _decode_group_key(key: str) -> tuple[Any, ...]:
    return tuple(json.loads(key))


@dataclass(frozen=True)
class GroupByQuery:
    """A grouped aggregation query.

    Attributes:
        grouping_sets: each inner tuple is one grouping set (a tuple of
            column names); the classic single GROUP BY is a single set;
            ``()`` is the grand-total set.
        aggregates: the aggregate specs of the SELECT list.
        where: optional filter predicate applied before grouping.
        having: optional predicate over *result* rows (grouping columns
            and aggregate output names); applied after finalization —
            at the Computing Combiner in a distributed execution, so
            partial states stay distributive.
    """

    grouping_sets: tuple[tuple[str, ...], ...]
    aggregates: tuple[AggregateSpec, ...]
    where: Expression | None = None
    having: Expression | None = None

    def __post_init__(self) -> None:
        if not self.grouping_sets:
            raise ValueError("at least one grouping set is required")
        if not self.aggregates:
            raise ValueError("at least one aggregate is required")

    @classmethod
    def single(
        cls,
        group_by: Iterable[str],
        aggregates: Iterable[AggregateSpec],
        where: Expression | None = None,
    ) -> "GroupByQuery":
        """Build a plain single-GROUP-BY query."""
        return cls((tuple(group_by),), tuple(aggregates), where)

    def input_columns(self) -> list[str]:
        """Every column the query reads (grouping + aggregated + filter)."""
        needed: set[str] = set()
        for grouping_set in self.grouping_sets:
            needed.update(grouping_set)
        for spec in self.aggregates:
            if spec.column is not None:
                needed.add(spec.column)
        if self.where is not None:
            needed.update(self.where.columns())
        return sorted(needed)

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible representation."""
        return {
            "grouping_sets": [list(gs) for gs in self.grouping_sets],
            "aggregates": [spec.to_dict() for spec in self.aggregates],
            "where": self.where.to_dict() if self.where is not None else None,
            "having": self.having.to_dict() if self.having is not None else None,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "GroupByQuery":
        """Inverse of :meth:`to_dict`."""
        where = data.get("where")
        having = data.get("having")
        return cls(
            grouping_sets=tuple(tuple(gs) for gs in data["grouping_sets"]),
            aggregates=tuple(AggregateSpec.from_dict(a) for a in data["aggregates"]),
            where=expression_from_dict(where) if where is not None else None,
            having=expression_from_dict(having) if having is not None else None,
        )


@dataclass
class PartialGroups:
    """Partial grouped states produced by one Computer.

    ``groups[set_index][group_key][agg_index]`` is an
    :class:`AggregateState`.  Serializes to JSON for transport.
    """

    n_sets: int
    n_aggs: int
    groups: list[dict[str, list[AggregateState]]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.groups:
            self.groups = [{} for _ in range(self.n_sets)]

    def fold_row(self, query: GroupByQuery, row: Row) -> None:
        """Fold one (already filtered) row into every grouping set."""
        for set_index, grouping_set in enumerate(query.grouping_sets):
            key = _encode_group_key(tuple(row.get(c) for c in grouping_set))
            bucket = self.groups[set_index].get(key)
            if bucket is None:
                bucket = [new_state(spec) for spec in query.aggregates]
                self.groups[set_index][key] = bucket
            for spec, state in zip(query.aggregates, bucket):
                fold_value(spec, state, row)

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible representation."""
        return {
            "n_sets": self.n_sets,
            "n_aggs": self.n_aggs,
            "groups": [
                {key: [s.to_dict() for s in states] for key, states in per_set.items()}
                for per_set in self.groups
            ],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "PartialGroups":
        """Inverse of :meth:`to_dict`."""
        groups = [
            {
                key: [AggregateState.from_dict(s) for s in states]
                for key, states in per_set.items()
            }
            for per_set in data["groups"]
        ]
        return cls(n_sets=data["n_sets"], n_aggs=data["n_aggs"], groups=groups)


@dataclass(frozen=True)
class GroupingSetsResult:
    """Final result: one row list per grouping set.

    Each row maps grouping columns to their values (absent columns of
    the set are omitted, SQL would show NULL) plus aggregate outputs.
    """

    query: GroupByQuery
    per_set_rows: tuple[tuple[Row, ...], ...]

    def rows_for(self, grouping_set: tuple[str, ...]) -> list[Row]:
        """Result rows of one grouping set."""
        for gs, rows in zip(self.query.grouping_sets, self.per_set_rows):
            if gs == grouping_set:
                return [dict(row) for row in rows]
        raise KeyError(f"grouping set {grouping_set!r} not in query")

    def all_rows(self) -> list[Row]:
        """Concatenation of every set's rows (grouping-sets semantics)."""
        result: list[Row] = []
        for rows in self.per_set_rows:
            result.extend(dict(row) for row in rows)
        return result

    def rows_sorted(
        self,
        grouping_set: tuple[str, ...],
        by: str,
        descending: bool = False,
        limit: int | None = None,
    ) -> list[Row]:
        """Presentation helper: one set's rows ordered by a column.

        ``None`` values sort last regardless of direction.
        """
        rows = self.rows_for(grouping_set)
        present = [row for row in rows if row.get(by) is not None]
        absent = [row for row in rows if row.get(by) is None]
        present.sort(key=lambda row: row[by], reverse=descending)
        ordered = present + absent
        if limit is not None:
            if limit < 0:
                raise ValueError("limit must be non-negative")
            ordered = ordered[:limit]
        return ordered

    def scaled_counts(self, factor: float) -> "GroupingSetsResult":
        """Scale count/sum outputs by ``factor``.

        Used when partitions were lost: surviving partitions form a
        representative sample, so extrapolating counts by
        ``(n + m) / received`` restores unbiased totals.
        """
        scaled_sets = []
        for rows in self.per_set_rows:
            scaled_rows = []
            for row in rows:
                scaled = dict(row)
                for spec in self.query.aggregates:
                    name = spec.output_name
                    if spec.function in ("count", "sum"):
                        if scaled.get(name) is not None:
                            scaled[name] = scaled[name] * factor
                    elif spec.function == "hist" and scaled.get(name) is not None:
                        scaled[name] = [count * factor for count in scaled[name]]
                scaled_rows.append(scaled)
            scaled_sets.append(tuple(scaled_rows))
        return GroupingSetsResult(self.query, tuple(scaled_sets))


def evaluate_group_by(query: GroupByQuery, rows: Iterable[Row]) -> PartialGroups:
    """Run the Computer side: filter rows, fold into partial states."""
    partial = PartialGroups(n_sets=len(query.grouping_sets), n_aggs=len(query.aggregates))
    for row in rows:
        if query.where is not None and not query.where.evaluate(row):
            continue
        partial.fold_row(query, row)
    return partial


def merge_partials(query: GroupByQuery, partials: Iterable[PartialGroups]) -> PartialGroups:
    """Run the Combiner side: merge partial group maps."""
    merged = PartialGroups(n_sets=len(query.grouping_sets), n_aggs=len(query.aggregates))
    for partial in partials:
        for set_index in range(merged.n_sets):
            for key, states in partial.groups[set_index].items():
                bucket = merged.groups[set_index].get(key)
                if bucket is None:
                    merged.groups[set_index][key] = [
                        AggregateState.from_dict(s.to_dict()) for s in states
                    ]
                else:
                    merged.groups[set_index][key] = [
                        merge_states([a, b]) for a, b in zip(bucket, states)
                    ]
    return merged


def finalize_partials(query: GroupByQuery, merged: PartialGroups) -> GroupingSetsResult:
    """Turn merged partial states into final result rows.

    The HAVING predicate (if any) is applied here, on the finalized
    rows — exactly what the Computing Combiner does in a distributed
    execution.
    """
    per_set_rows: list[tuple[Row, ...]] = []
    for set_index, grouping_set in enumerate(query.grouping_sets):
        rows: list[Row] = []
        for key in sorted(merged.groups[set_index]):
            values = _decode_group_key(key)
            row: Row = dict(zip(grouping_set, values))
            states = merged.groups[set_index][key]
            for spec, state in zip(query.aggregates, states):
                row[spec.output_name] = finalize_state(spec, state)
            if query.having is None or query.having.evaluate(row):
                rows.append(row)
        per_set_rows.append(tuple(rows))
    return GroupingSetsResult(query, tuple(per_set_rows))
