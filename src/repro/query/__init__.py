"""Relational query substrate over horizontally partitioned personal data.

Edgelet computing treats the swarm's datastores as one shared database
under a common schema.  This package provides the pieces an Edgelet
query needs:

* :mod:`repro.query.schema` — column/ schema declarations and row
  validation;
* :mod:`repro.query.relation` — an in-memory relation (bag of rows) with
  selection/projection/partitioning;
* :mod:`repro.query.expressions` — predicate and scalar expressions
  that serialize to JSON (so plans can ship them to edgelets);
* :mod:`repro.query.aggregates` — distributive aggregate functions with
  mergeable partial states (the algebraic core of Overcollection);
* :mod:`repro.query.groupby` — GROUP BY and GROUPING SETS evaluation on
  top of the aggregates;
* :mod:`repro.query.sql` — a small SQL dialect parser covering the demo
  queries (SELECT ... WHERE ... GROUP BY GROUPING SETS (...));
* :mod:`repro.query.engine` — a centralized reference engine used for
  the demo's validity verification.
"""

from repro.query.schema import Column, ColumnType, Schema, SchemaError
from repro.query.relation import Relation
from repro.query.expressions import (
    AndExpr,
    ColumnRef,
    CompareExpr,
    Expression,
    Literal,
    NotExpr,
    OrExpr,
    expression_from_dict,
)
from repro.query.aggregates import (
    AggregateSpec,
    AggregateState,
    make_state,
    merge_states,
    finalize_state,
)
from repro.query.groupby import GroupByQuery, GroupingSetsResult, evaluate_group_by
from repro.query.sketches import BloomFilter, HyperLogLog
from repro.query.sql import SQLSyntaxError, parse_query
from repro.query.engine import CentralizedEngine

__all__ = [
    "AggregateSpec",
    "AggregateState",
    "AndExpr",
    "BloomFilter",
    "CentralizedEngine",
    "Column",
    "ColumnRef",
    "ColumnType",
    "CompareExpr",
    "Expression",
    "GroupByQuery",
    "GroupingSetsResult",
    "HyperLogLog",
    "Literal",
    "NotExpr",
    "OrExpr",
    "Relation",
    "SQLSyntaxError",
    "Schema",
    "SchemaError",
    "evaluate_group_by",
    "expression_from_dict",
    "finalize_state",
    "make_state",
    "merge_states",
    "parse_query",
]
