"""Quantile and moment estimation from ``hist`` aggregate outputs.

The ``hist`` aggregate returns equi-width bucket counts over a fixed
grid defined by its ``(lower, upper, n_buckets)`` parameters.  Because
bucket-wise sums merge exactly, histograms are fully distributive —
which makes them the Edgelet-compatible route to medians and other
quantiles (exact quantiles are famously *not* distributive).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

__all__ = ["HistogramView", "quantile_from_counts"]


@dataclass(frozen=True)
class HistogramView:
    """Interprets a ``hist`` output against its grid parameters.

    Attributes:
        lower: inclusive lower bound of the grid.
        upper: exclusive upper bound of the grid.
        counts: per-bucket counts (possibly extrapolated floats).
    """

    lower: float
    upper: float
    counts: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.lower < self.upper:
            raise ValueError("need lower < upper")
        if not self.counts:
            raise ValueError("need at least one bucket")
        if any(count < 0 for count in self.counts):
            raise ValueError("bucket counts must be non-negative")

    @classmethod
    def from_spec_params(
        cls, params: tuple, counts: Sequence[float]
    ) -> "HistogramView":
        """Build a view from an ``AggregateSpec.params`` triple."""
        lower, upper, n_buckets = params
        if len(counts) != int(n_buckets):
            raise ValueError(
                f"expected {int(n_buckets)} buckets, got {len(counts)}"
            )
        return cls(lower=float(lower), upper=float(upper), counts=tuple(counts))

    @property
    def total(self) -> float:
        """Total observations in the histogram."""
        return sum(self.counts)

    @property
    def bucket_width(self) -> float:
        return (self.upper - self.lower) / len(self.counts)

    def edges(self) -> list[float]:
        """The ``n_buckets + 1`` grid edges."""
        width = self.bucket_width
        return [self.lower + i * width for i in range(len(self.counts) + 1)]

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile by linear interpolation within
        the bucket containing the target rank."""
        if not 0 <= q <= 1:
            raise ValueError("q must be in [0, 1]")
        total = self.total
        if total == 0:
            raise ValueError("cannot take a quantile of an empty histogram")
        target = q * total
        cumulative = 0.0
        width = self.bucket_width
        for index, count in enumerate(self.counts):
            if cumulative + count >= target and count > 0:
                within = (target - cumulative) / count
                return self.lower + (index + within) * width
            cumulative += count
        return self.upper

    def median(self) -> float:
        """The 0.5 quantile."""
        return self.quantile(0.5)

    def mean(self) -> float:
        """Mean estimated from bucket midpoints."""
        total = self.total
        if total == 0:
            raise ValueError("cannot take the mean of an empty histogram")
        width = self.bucket_width
        weighted = sum(
            count * (self.lower + (index + 0.5) * width)
            for index, count in enumerate(self.counts)
        )
        return weighted / total

    def mode_bucket(self) -> tuple[float, float]:
        """``(start, end)`` of the most populated bucket."""
        index = max(range(len(self.counts)), key=lambda i: self.counts[i])
        width = self.bucket_width
        return (self.lower + index * width, self.lower + (index + 1) * width)


def quantile_from_counts(
    params: tuple, counts: Sequence[float], q: float
) -> float:
    """One-shot quantile estimate from a ``hist`` output."""
    return HistogramView.from_spec_params(params, counts).quantile(q)
