"""A small SQL dialect covering the demonstration queries.

Supported grammar (case-insensitive keywords)::

    query     := SELECT select_list FROM name [WHERE predicate]
                 [GROUP BY group_clause]
    select_list := agg ("," agg)*
    agg       := func "(" ("*" | name) ")" [AS name]
    func      := COUNT | SUM | MIN | MAX | AVG | VAR | STD
    group_clause := GROUPING SETS "(" set ("," set)* ")"
                  | name ("," name)*
    set       := "(" [name ("," name)*] ")"
    predicate := or_expr
    or_expr   := and_expr (OR and_expr)*
    and_expr  := unary (AND unary)*
    unary     := NOT unary | "(" predicate ")" | comparison
    comparison := operand (cmp operand | IN "(" literal, ... ")")
    operand   := name | literal
    literal   := number | 'string' | TRUE | FALSE | NULL

Examples the demo uses::

    SELECT count(*), avg(age), avg(bmi)
    FROM health
    WHERE age > 65
    GROUP BY GROUPING SETS ((region), (sex), (region, sex), ())
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any

from repro.query.aggregates import SUPPORTED_FUNCTIONS, AggregateSpec
from repro.query.expressions import (
    AndExpr,
    ColumnRef,
    CompareExpr,
    Expression,
    InExpr,
    Literal,
    NotExpr,
    OrExpr,
)
from repro.query.groupby import GroupByQuery

__all__ = ["SQLSyntaxError", "ParsedQuery", "parse_query"]


class SQLSyntaxError(Exception):
    """Raised on any parse failure, with position information."""


@dataclass(frozen=True)
class ParsedQuery:
    """Outcome of parsing.

    Attributes:
        table: the queried table name.
        query: the logical grouped-aggregation query (WHERE/HAVING
            included — both execute distributively).
        order_by: presentation ordering, ``(output_name, descending)``
            pairs; applied querier-side.
        limit: presentation row limit; applied querier-side.
    """

    table: str
    query: GroupByQuery
    order_by: tuple[tuple[str, bool], ...] = ()
    limit: int | None = None

    def present(self, rows: list[dict[str, Any]]) -> list[dict[str, Any]]:
        """Apply ORDER BY / LIMIT to finalized result rows."""
        ordered = list(rows)
        # stable sorts applied in reverse give lexicographic ordering
        for name, descending in reversed(self.order_by):
            present = [row for row in ordered if row.get(name) is not None]
            absent = [row for row in ordered if row.get(name) is None]
            present.sort(key=lambda row: row[name], reverse=descending)
            ordered = present + absent
        if self.limit is not None:
            ordered = ordered[: self.limit]
        return ordered


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>-?\d+(?:\.\d+)?)
  | (?P<string>'(?:[^']|'')*')
  | (?P<cmp><=|>=|!=|=|<|>)
  | (?P<punct>[(),*])
  | (?P<name>[A-Za-z_][A-Za-z_0-9]*)
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "select", "from", "where", "group", "by", "grouping", "sets",
    "and", "or", "not", "in", "as", "true", "false", "null",
    "having", "order", "limit", "asc", "desc",
}


@dataclass(frozen=True)
class _Token:
    kind: str  # "number", "string", "cmp", "punct", "name", "keyword"
    text: str
    position: int


def _tokenize(sql: str) -> list[_Token]:
    tokens: list[_Token] = []
    index = 0
    while index < len(sql):
        match = _TOKEN_RE.match(sql, index)
        if match is None:
            raise SQLSyntaxError(f"unexpected character {sql[index]!r} at {index}")
        index = match.end()
        kind = match.lastgroup
        if kind == "ws":
            continue
        text = match.group()
        if kind == "name" and text.lower() in _KEYWORDS:
            tokens.append(_Token("keyword", text.lower(), match.start()))
        else:
            tokens.append(_Token(kind, text, match.start()))
    return tokens


class _Parser:
    def __init__(self, sql: str):
        self._sql = sql
        self._tokens = _tokenize(sql)
        self._index = 0

    # -- token helpers ----------------------------------------------------

    def _peek(self) -> _Token | None:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise SQLSyntaxError("unexpected end of query")
        self._index += 1
        return token

    def _expect_keyword(self, word: str) -> None:
        token = self._next()
        if token.kind != "keyword" or token.text != word:
            raise SQLSyntaxError(
                f"expected {word.upper()} at position {token.position}, got {token.text!r}"
            )

    def _expect_punct(self, char: str) -> None:
        token = self._next()
        if token.kind != "punct" or token.text != char:
            raise SQLSyntaxError(
                f"expected {char!r} at position {token.position}, got {token.text!r}"
            )

    def _accept_keyword(self, word: str) -> bool:
        token = self._peek()
        if token is not None and token.kind == "keyword" and token.text == word:
            self._index += 1
            return True
        return False

    def _accept_punct(self, char: str) -> bool:
        token = self._peek()
        if token is not None and token.kind == "punct" and token.text == char:
            self._index += 1
            return True
        return False

    def _expect_name(self) -> str:
        token = self._next()
        if token.kind != "name":
            raise SQLSyntaxError(
                f"expected identifier at position {token.position}, got {token.text!r}"
            )
        return token.text

    # -- grammar -------------------------------------------------------------

    def parse(self) -> ParsedQuery:
        self._expect_keyword("select")
        aggregates = [self._aggregate()]
        while self._accept_punct(","):
            aggregates.append(self._aggregate())
        self._expect_keyword("from")
        table = self._expect_name()
        where = None
        if self._accept_keyword("where"):
            where = self._predicate()
        grouping_sets: tuple[tuple[str, ...], ...] = ((),)
        if self._accept_keyword("group"):
            self._expect_keyword("by")
            grouping_sets = self._group_clause()
        having = None
        if self._accept_keyword("having"):
            having = self._predicate()
        order_by: list[tuple[str, bool]] = []
        if self._accept_keyword("order"):
            self._expect_keyword("by")
            order_by.append(self._order_term())
            while self._accept_punct(","):
                order_by.append(self._order_term())
        limit = None
        if self._accept_keyword("limit"):
            token = self._next()
            if token.kind != "number" or "." in token.text or token.text.startswith("-"):
                raise SQLSyntaxError(
                    f"LIMIT expects a non-negative integer at position {token.position}"
                )
            limit = int(token.text)
        if self._peek() is not None:
            token = self._peek()
            raise SQLSyntaxError(
                f"trailing input at position {token.position}: {token.text!r}"
            )
        query = GroupByQuery(
            grouping_sets=grouping_sets,
            aggregates=tuple(aggregates),
            where=where,
            having=having,
        )
        return ParsedQuery(
            table=table, query=query, order_by=tuple(order_by), limit=limit
        )

    def _order_term(self) -> tuple[str, bool]:
        name = self._expect_name()
        if self._accept_keyword("desc"):
            return (name, True)
        self._accept_keyword("asc")
        return (name, False)

    def _aggregate(self) -> AggregateSpec:
        token = self._next()
        if token.kind != "name" or token.text.lower() not in SUPPORTED_FUNCTIONS:
            raise SQLSyntaxError(
                f"expected aggregate function at position {token.position}, "
                f"got {token.text!r}"
            )
        function = token.text.lower()
        self._expect_punct("(")
        params: list[Any] = []
        if self._accept_punct("*"):
            column = None
        else:
            column = self._expect_name()
            # function parameters, e.g. hist(age, 0, 110, 11)
            while self._accept_punct(","):
                params.append(self._literal_value())
        self._expect_punct(")")
        alias = None
        if self._accept_keyword("as"):
            alias = self._expect_name()
        return AggregateSpec(function, column, alias, tuple(params))

    def _group_clause(self) -> tuple[tuple[str, ...], ...]:
        if self._accept_keyword("grouping"):
            self._expect_keyword("sets")
            self._expect_punct("(")
            sets = [self._grouping_set()]
            while self._accept_punct(","):
                sets.append(self._grouping_set())
            self._expect_punct(")")
            return tuple(sets)
        names = [self._expect_name()]
        while self._accept_punct(","):
            names.append(self._expect_name())
        return (tuple(names),)

    def _grouping_set(self) -> tuple[str, ...]:
        self._expect_punct("(")
        if self._accept_punct(")"):
            return ()
        names = [self._expect_name()]
        while self._accept_punct(","):
            names.append(self._expect_name())
        self._expect_punct(")")
        return tuple(names)

    def _predicate(self) -> Expression:
        return self._or_expr()

    def _or_expr(self) -> Expression:
        operands = [self._and_expr()]
        while self._accept_keyword("or"):
            operands.append(self._and_expr())
        if len(operands) == 1:
            return operands[0]
        return OrExpr(tuple(operands))

    def _and_expr(self) -> Expression:
        operands = [self._unary()]
        while self._accept_keyword("and"):
            operands.append(self._unary())
        if len(operands) == 1:
            return operands[0]
        return AndExpr(tuple(operands))

    def _unary(self) -> Expression:
        if self._accept_keyword("not"):
            return NotExpr(self._unary())
        if self._accept_punct("("):
            inner = self._predicate()
            self._expect_punct(")")
            return inner
        return self._comparison()

    def _comparison(self) -> Expression:
        left = self._operand()
        if self._accept_keyword("in"):
            self._expect_punct("(")
            choices = [self._literal_value()]
            while self._accept_punct(","):
                choices.append(self._literal_value())
            self._expect_punct(")")
            return InExpr(left, tuple(choices))
        token = self._next()
        if token.kind != "cmp":
            raise SQLSyntaxError(
                f"expected comparator at position {token.position}, got {token.text!r}"
            )
        right = self._operand()
        return CompareExpr(token.text, left, right)

    def _operand(self) -> Expression:
        token = self._peek()
        if token is None:
            raise SQLSyntaxError("unexpected end of query in expression")
        if token.kind == "name":
            self._index += 1
            return ColumnRef(token.text)
        return Literal(self._literal_value())

    def _literal_value(self) -> Any:
        token = self._next()
        if token.kind == "number":
            if "." in token.text:
                return float(token.text)
            return int(token.text)
        if token.kind == "string":
            return token.text[1:-1].replace("''", "'")
        if token.kind == "keyword" and token.text in ("true", "false", "null"):
            return {"true": True, "false": False, "null": None}[token.text]
        raise SQLSyntaxError(
            f"expected literal at position {token.position}, got {token.text!r}"
        )


def parse_query(sql: str) -> ParsedQuery:
    """Parse one SQL query of the supported dialect.

    Raises :class:`SQLSyntaxError` with a position hint on failure.
    """
    return _Parser(sql).parse()
