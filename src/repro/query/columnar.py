"""Columnar vectorized operator engine (``engine="columnar"``).

The row engine walks Python dicts one row at a time; this module carries
the same operators — scan, filter, project, group-by/aggregate, and an
equi-join — over numpy-backed column blocks.  The contract is strict
*bit-identity* with the row engine: every sealed payload a columnar run
produces (contribution rows, partition projections, partial-state
dicts) must serialize to the same bytes the row engine would have
produced, because envelope sizes feed latency draws and the
``report_fingerprint`` discipline hashes result values verbatim.

The design choices below exist to honour that contract:

* A :class:`ColumnBatch` holds **object-dtype** blocks retaining the
  original Python values; float64 views are derived for compute only,
  so materialized rows and JSON/Merkle bytes are exactly what the row
  engine emits.
* Per-group sums use ``np.add.at`` — the unbuffered ufunc applies
  updates sequentially in row order, which is bitwise-identical to the
  row engine's ``total += float(value)`` fold (numpy's pairwise
  ``np.sum``/``reduceat`` is not, and is therefore never used here).
* Comparisons take the float64 fast path only when it is exact (no
  integers beyond 2**53 on either side); otherwise they fall back to
  element-wise Python semantics, matching ``repro.query.expressions``.
* ``-0.0`` and NaN inputs route min/max folding through a sequential
  fallback, because ``np.minimum``/``np.maximum`` resolve sign-of-zero
  ties and NaN propagation differently from the row engine's
  first-wins ``<`` comparisons.

Layering: numpy usage within ``repro.query`` is confined to this
module (enforced by ``tools/check_layering.py``); orchestration layers
select the engine through ``QuerySpec.engine``, never by importing
this module directly.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, Sequence

import numpy as np

from repro.query.aggregates import (
    DISTINCT_PRECISION,
    AggregateSpec,
    AggregateState,
)
from repro.query.expressions import (
    AndExpr,
    ColumnRef,
    CompareExpr,
    Expression,
    InExpr,
    Literal,
    NotExpr,
    OrExpr,
)
from repro.query.groupby import GroupByQuery, PartialGroups, _encode_group_key
from repro.query.sketches import _hash64

__all__ = [
    "ColumnBatch",
    "ColumnarGroups",
    "predicate_mask",
    "scan_filter_project",
    "evaluate_group_by_columnar",
    "merge_partials_columnar",
    "hash_join",
]

Row = dict[str, Any]

#: Largest integer magnitude exactly representable as a float64; the
#: comparison fast path is only exact below it.
_FLOAT_EXACT_INT = 2**53

_NP_COMPARATORS = {
    "=": np.equal,
    "!=": np.not_equal,
    "<": np.less,
    "<=": np.less_equal,
    ">": np.greater,
    ">=": np.greater_equal,
}

_PY_COMPARATORS = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def _is_nan(value: Any) -> bool:
    return isinstance(value, float) and value != value


class ColumnBatch:
    """A batch of rows stored column-wise.

    Blocks are object-dtype arrays holding the *original* Python
    values, so :meth:`to_rows` materializes exactly the dicts the row
    engine would carry.  Null masks and float64 numeric views are
    derived lazily and cached per column.
    """

    def __init__(self, columns: Sequence[str], data: dict[str, np.ndarray], length: int):
        self.columns = list(columns)
        self._data = data
        self.length = length
        self._null_masks: dict[str, np.ndarray] = {}
        self._numeric: dict[str, np.ndarray] = {}
        self._compare_safe: dict[str, bool] = {}

    def __len__(self) -> int:
        return self.length

    @classmethod
    def from_rows(
        cls, rows: Sequence[Row], columns: Sequence[str] | None = None
    ) -> "ColumnBatch":
        """Build a batch from row dicts (the scan operator).

        ``columns`` fixes the block set and ordering; when omitted, the
        union of row keys in first-appearance order is used.  Missing
        values become ``None``, matching ``row.get``.
        """
        if columns is None:
            seen: dict[str, None] = {}
            for row in rows:
                for name in row:
                    if name not in seen:
                        seen[name] = None
            columns = list(seen)
        n = len(rows)
        data = {
            name: np.fromiter(
                (row.get(name) for row in rows), dtype=object, count=n
            )
            for name in columns
        }
        return cls(columns, data, n)

    @classmethod
    def from_relation(cls, relation: Any) -> "ColumnBatch":
        """Scan a :class:`repro.query.relation.Relation` into a batch."""
        return cls.from_rows(list(relation), relation.schema.column_names)

    def to_rows(self) -> list[Row]:
        """Materialize row dicts (the envelope-boundary operation)."""
        arrays = [self._data[name] for name in self.columns]
        names = self.columns
        return [dict(zip(names, values)) for values in zip(*arrays)] if arrays else [
            {} for _ in range(self.length)
        ]

    def column(self, name: str) -> np.ndarray:
        """The object-dtype block of one column (all-None if absent)."""
        block = self._data.get(name)
        if block is None:
            block = np.full(self.length, None, dtype=object)
            self._data[name] = block
        return block

    def null_mask(self, name: str) -> np.ndarray:
        """Boolean mask, ``True`` where the value is ``None``."""
        mask = self._null_masks.get(name)
        if mask is None:
            block = self.column(name)
            # elementwise == against None in one C loop; cell values are
            # JSON scalars, for which ``x == None`` is True iff x is None
            mask = np.asarray(np.equal(block, None), dtype=bool)
            self._null_masks[name] = mask
        return mask

    def numeric(self, name: str) -> np.ndarray:
        """Float64 view of one column, NaN at nulls.

        Conversion goes through ``float(value)`` element-wise (object
        astype), so it rounds exactly as the row engine's
        ``AggregateState.update`` does — including large integers.
        """
        view = self._numeric.get(name)
        if view is None:
            block = self.column(name)
            valid = ~self.null_mask(name)
            view = np.full(self.length, np.nan, dtype=np.float64)
            if valid.any():
                view[valid] = block[valid].astype(np.float64)
            self._numeric[name] = view
        return view

    def compare_safe(self, name: str) -> bool:
        """Whether float64 comparisons on this column are exact.

        True when every non-null value is a bool/int/float with integer
        magnitudes at most 2**53; beyond that, Python compares
        int-vs-float exactly while float64 rounds, so the fast path
        would diverge from the row engine.
        """
        safe = self._compare_safe.get(name)
        if safe is None:
            block = self._data.get(name)
            values = block.tolist() if block is not None else []
            types = set(map(type, values))
            safe = types <= {type(None), bool, int, float} and (
                int not in types
                or all(
                    -_FLOAT_EXACT_INT <= value <= _FLOAT_EXACT_INT
                    for value in values
                    if type(value) is int
                )
            )
            self._compare_safe[name] = safe
        return safe

    def filter(self, mask: np.ndarray) -> "ColumnBatch":
        """Rows where ``mask`` is True (the vectorized filter)."""
        data = {name: self._data[name][mask] for name in self._data}
        return ColumnBatch(self.columns, data, int(np.count_nonzero(mask)))

    def project(self, columns: Sequence[str]) -> "ColumnBatch":
        """Projection onto ``columns`` (absent columns become None)."""
        data = {name: self.column(name) for name in columns}
        return ColumnBatch(columns, data, self.length)

    def take(self, indices: np.ndarray) -> "ColumnBatch":
        """Gather rows by position (join building block)."""
        data = {name: self._data[name][indices] for name in self._data}
        return ColumnBatch(self.columns, data, len(indices))


# -- vectorized predicates --------------------------------------------------


def _literal_scalar(expr: Expression) -> tuple[bool, Any]:
    if isinstance(expr, Literal):
        return True, expr.value
    return False, None


def _numeric_literal_safe(value: Any) -> bool:
    if isinstance(value, bool):
        return True
    if isinstance(value, int):
        return -_FLOAT_EXACT_INT <= value <= _FLOAT_EXACT_INT
    return isinstance(value, float)


def _rowwise_mask(expr: Expression, batch: ColumnBatch) -> np.ndarray:
    """Fallback: evaluate the expression row by row (exact by definition)."""
    rows = batch.to_rows()
    return np.fromiter(
        (bool(expr.evaluate(row)) for row in rows), dtype=bool, count=batch.length
    )


def _compare_mask(expr: CompareExpr, batch: ColumnBatch) -> np.ndarray:
    left, right = expr.left, expr.right
    left_lit, left_value = _literal_scalar(left)
    right_lit, right_value = _literal_scalar(right)
    comparator = expr.comparator

    if left_lit and right_lit:
        if left_value is None or right_value is None:
            return np.zeros(batch.length, dtype=bool)
        result = bool(_PY_COMPARATORS[comparator](left_value, right_value))
        return np.full(batch.length, result, dtype=bool)

    if isinstance(left, ColumnRef) and right_lit:
        return _column_vs_scalar(batch, left.name, comparator, right_value, False)
    if left_lit and isinstance(right, ColumnRef):
        return _column_vs_scalar(batch, right.name, comparator, left_value, True)
    if isinstance(left, ColumnRef) and isinstance(right, ColumnRef):
        return _column_vs_column(batch, left.name, comparator, right.name)
    return _rowwise_mask(expr, batch)


def _column_vs_scalar(
    batch: ColumnBatch,
    name: str,
    comparator: str,
    scalar: Any,
    reversed_operands: bool,
) -> np.ndarray:
    if scalar is None:
        return np.zeros(batch.length, dtype=bool)
    valid = ~batch.null_mask(name)
    if batch.compare_safe(name) and _numeric_literal_safe(scalar):
        view = batch.numeric(name)
        op = _NP_COMPARATORS[comparator]
        with np.errstate(invalid="ignore"):
            mask = (
                op(float(scalar), view) if reversed_operands else op(view, float(scalar))
            )
        return mask & valid
    compare = _PY_COMPARATORS[comparator]
    block = batch.column(name)
    out = np.zeros(batch.length, dtype=bool)
    for index in np.flatnonzero(valid):
        value = block[index]
        out[index] = (
            compare(scalar, value) if reversed_operands else compare(value, scalar)
        )
    return out


def _column_vs_column(
    batch: ColumnBatch, left: str, comparator: str, right: str
) -> np.ndarray:
    valid = ~batch.null_mask(left) & ~batch.null_mask(right)
    if batch.compare_safe(left) and batch.compare_safe(right):
        op = _NP_COMPARATORS[comparator]
        with np.errstate(invalid="ignore"):
            mask = op(batch.numeric(left), batch.numeric(right))
        return mask & valid
    compare = _PY_COMPARATORS[comparator]
    left_block = batch.column(left)
    right_block = batch.column(right)
    out = np.zeros(batch.length, dtype=bool)
    for index in np.flatnonzero(valid):
        out[index] = compare(left_block[index], right_block[index])
    return out


def _in_mask(expr: InExpr, batch: ColumnBatch) -> np.ndarray:
    if not isinstance(expr.operand, ColumnRef):
        return _rowwise_mask(expr, batch)
    name = expr.operand.name
    choices = expr.choices
    valid = ~batch.null_mask(name)
    numeric_choices = all(_numeric_literal_safe(c) for c in choices) and not any(
        _is_nan(c) for c in choices
    )
    if batch.compare_safe(name) and numeric_choices:
        view = batch.numeric(name)
        targets = np.array([float(c) for c in choices], dtype=np.float64)
        with np.errstate(invalid="ignore"):
            mask = np.isin(view, targets)
        return mask & valid
    block = batch.column(name)
    out = np.zeros(batch.length, dtype=bool)
    for index in np.flatnonzero(valid):
        out[index] = block[index] in choices
    return out


def predicate_mask(expr: Expression, batch: ColumnBatch) -> np.ndarray:
    """Boolean mask of ``expr`` over ``batch``.

    Exactly equal, element for element, to evaluating the expression
    against each materialized row — nulls compare false, ``NOT`` of a
    null comparison is therefore true, and so on.
    """
    if isinstance(expr, AndExpr):
        mask = np.ones(batch.length, dtype=bool)
        for operand in expr.operands:
            mask &= predicate_mask(operand, batch)
        return mask
    if isinstance(expr, OrExpr):
        mask = np.zeros(batch.length, dtype=bool)
        for operand in expr.operands:
            mask |= predicate_mask(operand, batch)
        return mask
    if isinstance(expr, NotExpr):
        return ~predicate_mask(expr.operand, batch)
    if isinstance(expr, CompareExpr):
        return _compare_mask(expr, batch)
    if isinstance(expr, InExpr):
        return _in_mask(expr, batch)
    return _rowwise_mask(expr, batch)


def scan_filter_project(
    rows: Sequence[Row],
    where: Expression | None,
    columns: Sequence[str] | None,
) -> list[Row]:
    """The contributor's TEE-side pipeline, vectorized.

    Value-identical to ``datastore.select(predicate, columns)``: rows
    matching ``where`` (all rows when None), projected onto ``columns``
    with absent columns as ``None``.
    """
    if columns is None:
        batch = ColumnBatch.from_rows(rows)
    else:
        needed = list(columns)
        if where is not None:
            present = set(needed)
            needed += [c for c in sorted(where.columns()) if c not in present]
        batch = ColumnBatch.from_rows(rows, needed)
    if where is not None:
        batch = batch.filter(predicate_mask(where, batch))
    if columns is not None:
        batch = batch.project(columns)
    return batch.to_rows()


# -- vectorized group-by / aggregation --------------------------------------


def _factorize(block: np.ndarray) -> tuple[np.ndarray, list[Any]]:
    """Integer codes + representative values for one grouping column.

    Values are keyed by ``(type, repr)``: the same discrimination the
    row engine's JSON group-key encoding applies (``5`` ≠ ``5.0`` ≠
    ``True``, and ``-0.0`` ≠ ``0.0``).
    """
    mapping: dict[Any, int] = {}
    uniques: list[Any] = []
    codes: list[int] = []
    append = codes.append
    for value in block.tolist():
        cls = value.__class__
        # str/int/bool/None hash by value with no collisions across
        # types (the cls in the key discriminates True vs 1); floats go
        # through repr so -0.0 != 0.0 and all NaNs collapse, exactly as
        # the row engine's JSON key encoding behaves
        if cls is str or cls is int or cls is bool or value is None:
            key = (cls, value)
        else:
            key = (cls, repr(value))
        code = mapping.get(key)
        if code is None:
            code = len(uniques)
            mapping[key] = code
            uniques.append(value)
        append(code)
    return np.array(codes, dtype=np.int64), uniques


def _group_codes(
    batch: ColumnBatch,
    grouping_set: tuple[str, ...],
    factorized: dict[str, tuple[np.ndarray, list[Any]]],
) -> tuple[np.ndarray, list[str]]:
    """Per-row group codes and the encoded key of each group."""
    if not grouping_set:
        return (
            np.zeros(batch.length, dtype=np.int64),
            [_encode_group_key(())],
        )
    per_column = []
    for name in grouping_set:
        if name not in factorized:
            factorized[name] = _factorize(batch.column(name))
        per_column.append(factorized[name])
    if len(per_column) == 1:
        codes, uniques = per_column[0]
        keys = [_encode_group_key((value,)) for value in uniques]
        return codes, keys
    stacked = np.stack([codes for codes, _ in per_column], axis=1)
    unique_rows, inverse = np.unique(stacked, axis=0, return_inverse=True)
    keys = [
        _encode_group_key(
            tuple(
                per_column[column][1][int(code)]
                for column, code in enumerate(row)
            )
        )
        for row in unique_rows
    ]
    return inverse.astype(np.int64, copy=False), keys


def _sequential_min_max(
    codes: np.ndarray, values: np.ndarray, n_groups: int
) -> tuple[list[float | None], list[float | None]]:
    """Row-order first-wins min/max — the exact row-engine fold.

    Used when the column contains ``-0.0`` or NaN, where the numpy
    reductions resolve ties/propagation differently.
    """
    minima: list[float | None] = [None] * n_groups
    maxima: list[float | None] = [None] * n_groups
    for code, value in zip(codes.tolist(), values.tolist()):
        current_min = minima[code]
        if current_min is None or value < current_min:
            minima[code] = value
        current_max = maxima[code]
        if current_max is None or value > current_max:
            maxima[code] = value
    return minima, maxima


class _SegmentIndex:
    """Stable row order grouped into contiguous per-group runs.

    One sort per grouping set, shared by every aggregate column: it
    turns scattered ``ufunc.at`` updates into per-group C-speed folds
    while preserving row order within each group (stable sort), which
    is what keeps the segment folds bit-identical to the row engine.
    Only built when groups are few relative to rows — the regime where
    the segment walk wins.
    """

    __slots__ = ("order", "starts", "ends", "groups")

    def __init__(self, codes: np.ndarray):
        self.order = np.argsort(codes, kind="stable")
        sorted_codes = codes[self.order]
        cuts = np.flatnonzero(sorted_codes[1:] != sorted_codes[:-1]) + 1
        self.starts = np.concatenate(([0], cuts)).tolist()
        self.ends = np.append(cuts, len(sorted_codes)).tolist()
        self.groups = sorted_codes[self.starts].tolist()

    @classmethod
    def build(cls, codes: np.ndarray, n_groups: int) -> "_SegmentIndex | None":
        if len(codes) == 0 or n_groups > max(64, len(codes) >> 6):
            return None
        return cls(codes)

    def segments(
        self, values: np.ndarray, valid: np.ndarray
    ) -> list[tuple[int, np.ndarray]]:
        """Per-group value runs with nulls dropped, row order kept."""
        sorted_values = values[self.order]
        sorted_valid = valid[self.order]
        out: list[tuple[int, np.ndarray]] = []
        for group, start, end in zip(self.groups, self.starts, self.ends):
            segment = sorted_values[start:end]
            mask = sorted_valid[start:end]
            if not mask.all():
                segment = segment[mask]
                if len(segment) == 0:
                    continue
            out.append((group, segment))
        return out


def _needs_sequential(values: np.ndarray) -> bool:
    with np.errstate(invalid="ignore"):
        if np.isnan(values).any():
            return True
        return bool(np.any((values == 0.0) & np.signbit(values)))


class _AggColumn:
    """Column-block partial states of one aggregate over G groups."""

    __slots__ = (
        "spec", "counts", "totals", "total_sqs", "minima", "maxima",
        "registers", "buckets",
    )

    def __init__(self, spec: AggregateSpec, n_groups: int):
        self.spec = spec
        self.counts = np.zeros(n_groups, dtype=np.int64)
        self.totals = np.zeros(n_groups, dtype=np.float64)
        self.total_sqs = np.zeros(n_groups, dtype=np.float64)
        # minima/maxima as object arrays of float-or-None: the exact
        # tri-state the row engine keeps
        self.minima: list[float | None] = [None] * n_groups
        self.maxima: list[float | None] = [None] * n_groups
        self.registers: np.ndarray | None = (
            np.zeros((n_groups, 1 << DISTINCT_PRECISION), dtype=np.int64)
            if spec.function == "distinct"
            else None
        )
        self.buckets: np.ndarray | None = (
            np.zeros((n_groups, int(spec.params[2])), dtype=np.int64)
            if spec.function == "hist"
            else None
        )

    # -- folding -------------------------------------------------------------

    def fold(
        self,
        batch: ColumnBatch,
        codes: np.ndarray,
        n_groups: int,
        index: "_SegmentIndex | None" = None,
    ) -> None:
        spec = self.spec
        if spec.column is None:
            # count(*): every row counts, nothing else moves
            self.counts += np.bincount(codes, minlength=n_groups)
            return
        valid = ~batch.null_mask(spec.column)
        if not valid.any():
            return
        sel_codes = codes[valid]
        self.counts += np.bincount(sel_codes, minlength=n_groups)
        if spec.function == "distinct":
            self._fold_distinct(batch.column(spec.column)[valid], sel_codes)
            return
        if spec.function == "hist":
            self._fold_hist(batch, valid, sel_codes)
            return
        if index is not None:
            values_all = batch.numeric(spec.column)
            self._fold_numeric_segments(
                index.segments(values_all, valid),
                bool(_needs_sequential(values_all[valid])),
            )
            return
        values = batch.numeric(spec.column)[valid]
        totals = np.zeros(n_groups, dtype=np.float64)
        np.add.at(totals, sel_codes, values)
        self.totals += totals
        squares = np.zeros(n_groups, dtype=np.float64)
        np.add.at(squares, sel_codes, values * values)
        self.total_sqs += squares
        if _needs_sequential(values):
            self.minima, self.maxima = _sequential_min_max(
                sel_codes, values, n_groups
            )
            return
        minima = np.full(n_groups, np.inf)
        np.minimum.at(minima, sel_codes, values)
        maxima = np.full(n_groups, -np.inf)
        np.maximum.at(maxima, sel_codes, values)
        touched = np.bincount(sel_codes, minlength=n_groups) > 0
        for group in np.flatnonzero(touched):
            self.minima[group] = float(minima[group])
            self.maxima[group] = float(maxima[group])

    def _fold_numeric_segments(
        self,
        segments: list[tuple[int, np.ndarray]],
        sequential_min_max: bool,
    ) -> None:
        """Per-group contiguous fold (the few-groups fast path).

        ``np.add.accumulate`` is a strict left-to-right fold, so each
        segment total carries the row engine's exact bit pattern; the
        stable sort behind the segments preserves row order within each
        group.  Min/max over a clean segment is order-free, but -0.0 or
        NaN anywhere routes min/max through the first-wins walk.
        """
        # overflow saturates to ±inf exactly as the row engine's
        # Python-float arithmetic does; keep numpy quiet about it
        with np.errstate(over="ignore", invalid="ignore"):
            for group, segment in segments:
                self.totals[group] += (
                    np.add.accumulate(segment)[-1]
                    if len(segment) > 1
                    else segment[0]
                )
                squares = segment * segment
                self.total_sqs[group] += (
                    np.add.accumulate(squares)[-1]
                    if len(squares) > 1
                    else squares[0]
                )
                if sequential_min_max:
                    for value in segment.tolist():
                        current_min = self.minima[group]
                        if current_min is None or value < current_min:
                            self.minima[group] = value
                        current_max = self.maxima[group]
                        if current_max is None or value > current_max:
                            self.maxima[group] = value
                else:
                    self.minima[group] = float(np.min(segment))
                    self.maxima[group] = float(np.max(segment))

    def _fold_distinct(self, values: np.ndarray, sel_codes: np.ndarray) -> None:
        cache: dict[Any, tuple[int, int]] = {}
        indices: list[int] = []
        ranks: list[int] = []
        index_append = indices.append
        rank_append = ranks.append
        shift = 64 - DISTINCT_PRECISION
        low_mask = (1 << shift) - 1
        for value in values.tolist():
            # same cache-key discrimination as _factorize: exact-typed
            # hashables key by value, floats (and anything else) by repr
            cls = value.__class__
            if cls is str or cls is int or cls is bool or value is None:
                key = (cls, value)
            else:
                key = (cls, repr(value))
            cached = cache.get(key)
            if cached is None:
                hashed = _hash64(value)
                cached = (
                    hashed >> shift,
                    shift - (hashed & low_mask).bit_length() + 1,
                )
                cache[key] = cached
            index_append(cached[0])
            rank_append(cached[1])
        np.maximum.at(
            self.registers,
            (sel_codes, np.array(indices, dtype=np.int64)),
            np.array(ranks, dtype=np.int64),
        )

    def _fold_hist(
        self, batch: ColumnBatch, valid: np.ndarray, sel_codes: np.ndarray
    ) -> None:
        lower, upper, n_buckets = self.spec.params
        n_buckets = int(n_buckets)
        width = (upper - lower) / n_buckets
        values = batch.numeric(self.spec.column)[valid]
        if np.isnan(values).any():
            # int(nan) raises in the row engine; replicate its walk
            block = batch.column(self.spec.column)[valid]
            for code, value in zip(sel_codes.tolist(), block):
                index = int((float(value) - lower) / width)
                index = min(max(index, 0), n_buckets - 1)
                self.buckets[code, index] += 1
            return
        quotients = (values - lower) / width
        # int() truncates toward zero; clip before the cast so huge
        # magnitudes cannot overflow int64
        indices = np.clip(np.trunc(quotients), -1.0, float(n_buckets)).astype(
            np.int64
        )
        indices = np.clip(indices, 0, n_buckets - 1)
        # integer counting is order-free and exact; bincount over the
        # flattened (group, bucket) index beats a scattered add.at
        n_groups = self.buckets.shape[0]
        flat = sel_codes * n_buckets + indices
        self.buckets += np.bincount(
            flat, minlength=n_groups * n_buckets
        ).reshape(n_groups, n_buckets)

    # -- state materialization ----------------------------------------------

    def state(self, group: int) -> AggregateState:
        spec = self.spec
        state = AggregateState(
            count=int(self.counts[group]),
            total=float(self.totals[group]),
            total_sq=float(self.total_sqs[group]),
            minimum=self.minima[group],
            maximum=self.maxima[group],
        )
        if self.registers is not None:
            state.registers = self.registers[group].tolist()
        if self.buckets is not None:
            state.buckets = self.buckets[group].tolist()
        return state

    @classmethod
    def from_states(
        cls, spec: AggregateSpec, states: list[AggregateState]
    ) -> "_AggColumn | None":
        """Column blocks from row states; None when shapes surprise us."""
        n_groups = len(states)
        column = cls(spec, n_groups)
        for group, state in enumerate(states):
            column.counts[group] = state.count
            column.totals[group] = state.total
            column.total_sqs[group] = state.total_sq
            column.minima[group] = state.minimum
            column.maxima[group] = state.maximum
            if spec.function == "distinct":
                if state.registers is None or len(state.registers) != (
                    1 << DISTINCT_PRECISION
                ):
                    return None
                column.registers[group] = state.registers
            elif state.registers is not None:
                return None
            if spec.function == "hist":
                if state.buckets is None or len(state.buckets) != int(
                    spec.params[2]
                ):
                    return None
                column.buckets[group] = state.buckets
            elif state.buckets is not None:
                return None
        return column

    def merged_with(
        self, other: "_AggColumn", left_index: np.ndarray, right_index: np.ndarray,
        n_groups: int,
    ) -> "_AggColumn":
        """Merge two aligned columns (``merge_states`` vectorized).

        ``left_index``/``right_index`` map each output group to its
        source group, with -1 for "absent on that side".  Absent-on-one
        -side groups are value-copies; present-on-both groups combine
        exactly as ``AggregateState().merge(a).merge(b)`` does —
        including the leading ``0.0 +`` on the running sums.
        """
        merged = _AggColumn(self.spec, n_groups)
        left_has = left_index >= 0
        right_has = right_index >= 0
        both = left_has & right_has
        left_only = left_has & ~right_has
        right_only = right_has & ~left_has

        def gather_int(array: np.ndarray, index: np.ndarray) -> np.ndarray:
            return array[np.clip(index, 0, None)]

        merged.counts[left_only] = gather_int(self.counts, left_index)[left_only]
        merged.counts[right_only] = gather_int(other.counts, right_index)[right_only]
        merged.counts[both] = (
            gather_int(self.counts, left_index)[both]
            + gather_int(other.counts, right_index)[both]
        )
        for field in ("totals", "total_sqs"):
            mine = gather_int(getattr(self, field), left_index)
            theirs = gather_int(getattr(other, field), right_index)
            out = getattr(merged, field)
            out[left_only] = mine[left_only]
            out[right_only] = theirs[right_only]
            out[both] = (0.0 + mine[both]) + theirs[both]

        for group in range(n_groups):
            li = int(left_index[group])
            ri = int(right_index[group])
            a_min = self.minima[li] if li >= 0 else None
            b_min = other.minima[ri] if ri >= 0 else None
            if a_min is None:
                merged.minima[group] = b_min
            elif b_min is None:
                merged.minima[group] = a_min
            else:
                merged.minima[group] = b_min if b_min < a_min else a_min
            a_max = self.maxima[li] if li >= 0 else None
            b_max = other.maxima[ri] if ri >= 0 else None
            if a_max is None:
                merged.maxima[group] = b_max
            elif b_max is None:
                merged.maxima[group] = a_max
            else:
                merged.maxima[group] = b_max if b_max > a_max else a_max

        if merged.registers is not None:
            mine = self.registers[np.clip(left_index, 0, None)]
            theirs = other.registers[np.clip(right_index, 0, None)]
            mine[~left_has] = 0
            theirs[~right_has] = 0
            merged.registers = np.maximum(mine, theirs)
        if merged.buckets is not None:
            mine = self.buckets[np.clip(left_index, 0, None)]
            theirs = other.buckets[np.clip(right_index, 0, None)]
            mine[~left_has] = 0
            theirs[~right_has] = 0
            merged.buckets = mine + theirs
        return merged


class ColumnarGroups:
    """Column-block grouped partial states (the Computer/Combiner unit).

    Per grouping set: the encoded group keys (first-appearance order)
    and one :class:`_AggColumn` per aggregate.  Round-trips losslessly
    to/from :class:`~repro.query.groupby.PartialGroups`, so the wire
    format — and therefore every sealed-envelope byte — is unchanged.
    """

    def __init__(
        self,
        query: GroupByQuery,
        keys_per_set: list[list[str]],
        columns_per_set: list[list[_AggColumn]],
    ):
        self.query = query
        self.keys_per_set = keys_per_set
        self.columns_per_set = columns_per_set

    @classmethod
    def from_batch(cls, query: GroupByQuery, batch: ColumnBatch) -> "ColumnarGroups":
        """Vectorized fold of an (already filtered) batch."""
        factorized: dict[str, tuple[np.ndarray, list[Any]]] = {}
        keys_per_set: list[list[str]] = []
        columns_per_set: list[list[_AggColumn]] = []
        for grouping_set in query.grouping_sets:
            codes, keys = _group_codes(batch, grouping_set, factorized)
            if batch.length == 0:
                keys, codes = [], codes[:0]
            n_groups = len(keys)
            columns = [_AggColumn(spec, n_groups) for spec in query.aggregates]
            if n_groups:
                index = _SegmentIndex.build(codes, n_groups)
                for column in columns:
                    column.fold(batch, codes, n_groups, index)
            keys_per_set.append(keys)
            columns_per_set.append(columns)
        return cls(query, keys_per_set, columns_per_set)

    @classmethod
    def from_partials(
        cls, query: GroupByQuery, partial: PartialGroups
    ) -> "ColumnarGroups | None":
        """Column blocks from a row-format partial.

        Returns ``None`` when a state's shape contradicts the query's
        specs (callers then fall back to the row merge).
        """
        keys_per_set: list[list[str]] = []
        columns_per_set: list[list[_AggColumn]] = []
        for per_set in partial.groups:
            keys = list(per_set)
            states_by_agg: list[list[AggregateState]] = [
                [per_set[key][agg_index] for key in keys]
                for agg_index in range(len(query.aggregates))
            ]
            columns = []
            for spec, states in zip(query.aggregates, states_by_agg):
                column = _AggColumn.from_states(spec, states)
                if column is None:
                    return None
                columns.append(column)
            keys_per_set.append(keys)
            columns_per_set.append(columns)
        return cls(query, keys_per_set, columns_per_set)

    def to_partials(self) -> PartialGroups:
        """Materialize the row wire format (lazy, at the envelope)."""
        partial = PartialGroups(
            n_sets=len(self.query.grouping_sets),
            n_aggs=len(self.query.aggregates),
        )
        for set_index, keys in enumerate(self.keys_per_set):
            columns = self.columns_per_set[set_index]
            bucket = partial.groups[set_index]
            for group, key in enumerate(keys):
                bucket[key] = [column.state(group) for column in columns]
        return partial

    def merge(self, other: "ColumnarGroups") -> "ColumnarGroups":
        """Combine two partials — the Combiner's merge, vectorized."""
        keys_per_set: list[list[str]] = []
        columns_per_set: list[list[_AggColumn]] = []
        for set_index, left_keys in enumerate(self.keys_per_set):
            right_keys = other.keys_per_set[set_index]
            merged_keys = list(left_keys)
            position = {key: i for i, key in enumerate(merged_keys)}
            for key in right_keys:
                if key not in position:
                    position[key] = len(merged_keys)
                    merged_keys.append(key)
            n_groups = len(merged_keys)
            left_index = np.full(n_groups, -1, dtype=np.int64)
            right_index = np.full(n_groups, -1, dtype=np.int64)
            for i, key in enumerate(left_keys):
                left_index[position[key]] = i
            for i, key in enumerate(right_keys):
                right_index[position[key]] = i
            columns = [
                mine.merged_with(theirs, left_index, right_index, n_groups)
                for mine, theirs in zip(
                    self.columns_per_set[set_index],
                    other.columns_per_set[set_index],
                )
            ]
            keys_per_set.append(merged_keys)
            columns_per_set.append(columns)
        return ColumnarGroups(self.query, keys_per_set, columns_per_set)


def evaluate_group_by_columnar(
    query: GroupByQuery, rows: Sequence[Row] | ColumnBatch
) -> PartialGroups:
    """Columnar twin of :func:`repro.query.groupby.evaluate_group_by`.

    Accepts row dicts (scanned into a batch) or an existing batch;
    returns a bit-identical :class:`PartialGroups`.
    """
    if isinstance(rows, ColumnBatch):
        batch = rows
    else:
        batch = ColumnBatch.from_rows(rows, query.input_columns())
    if query.where is not None:
        batch = batch.filter(predicate_mask(query.where, batch))
    return ColumnarGroups.from_batch(query, batch).to_partials()


def merge_partials_columnar(
    query: GroupByQuery, partials: Iterable[PartialGroups]
) -> PartialGroups:
    """Columnar twin of :func:`repro.query.groupby.merge_partials`.

    Falls back to the row merge when a partial's state shapes don't
    match the query (never the case for engine-produced partials).
    """
    from repro.query.groupby import merge_partials

    partials = list(partials)
    merged: ColumnarGroups | None = None
    for index, partial in enumerate(partials):
        block = ColumnarGroups.from_partials(query, partial)
        if block is None:
            return merge_partials(query, partials)
        merged = block if merged is None else merged.merge(block)
    if merged is None:
        return PartialGroups(
            n_sets=len(query.grouping_sets), n_aggs=len(query.aggregates)
        )
    return merged.to_partials()


# -- equi-join ---------------------------------------------------------------


def hash_join(
    left: ColumnBatch, right: ColumnBatch, on: Sequence[str]
) -> ColumnBatch:
    """Vectorized inner equi-join on the ``on`` columns.

    Matching follows Python equality (``5`` joins ``5.0``); rows with a
    ``None`` key value never join (SQL NULL semantics).  Output order
    is left-row order, matches in right-row order; output columns are
    the left columns followed by the right's non-key, non-duplicate
    columns — exactly :meth:`repro.query.relation.Relation.join`.
    """
    on = list(on)
    table: dict[tuple, list[int]] = {}
    right_blocks = [right.column(name) for name in on]
    right_nulls = [right.null_mask(name) for name in on]
    for index in range(right.length):
        if any(null[index] for null in right_nulls):
            continue
        key = tuple(block[index] for block in right_blocks)
        table.setdefault(key, []).append(index)
    left_blocks = [left.column(name) for name in on]
    left_nulls = [left.null_mask(name) for name in on]
    left_take: list[int] = []
    right_take: list[int] = []
    for index in range(left.length):
        if any(null[index] for null in left_nulls):
            continue
        matches = table.get(tuple(block[index] for block in left_blocks))
        if not matches:
            continue
        left_take.extend([index] * len(matches))
        right_take.extend(matches)
    left_idx = np.array(left_take, dtype=np.int64)
    right_idx = np.array(right_take, dtype=np.int64)
    columns = list(left.columns)
    data = {name: left.column(name)[left_idx] for name in left.columns}
    for name in right.columns:
        if name in on or name in data:
            continue
        columns.append(name)
        data[name] = right.column(name)[right_idx]
    return ColumnBatch(columns, data, len(left_idx))
