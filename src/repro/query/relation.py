"""In-memory relations (bags of rows) with partitioning operators.

A :class:`Relation` is the unit the Edgelet operators manipulate: the
snapshot a Snapshot Builder assembles, the partition a Computer
processes.  Besides the classic select/project it provides the two
partitionings at the heart of the paper's privacy story:

* :meth:`Relation.partition_by_hash` — horizontal partitioning (rows
  split by a hash of a key, Figure 2/3);
* :meth:`Relation.split_columns` — vertical partitioning (column groups
  separated so quasi-identifier combinations never co-reside).
"""

from __future__ import annotations

import hashlib
from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.query.schema import Schema, SchemaError

__all__ = ["Relation"]

Row = dict[str, Any]


def _stable_hash(value: Any, salt: str = "") -> int:
    """Deterministic, platform-independent hash for partitioning."""
    payload = f"{salt}|{value!r}".encode("utf-8")
    return int.from_bytes(hashlib.sha256(payload).digest()[:8], "big")


class Relation:
    """A schema-checked bag of rows."""

    def __init__(self, schema: Schema, rows: Iterable[Row] = ()):
        self.schema = schema
        self._rows: list[Row] = [schema.conform(row) for row in rows]

    # -- dunder -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return self.schema == other.schema and sorted(
            map(_row_key, self._rows)
        ) == sorted(map(_row_key, other._rows))

    def __repr__(self) -> str:
        return f"Relation({len(self._rows)} rows, columns={self.schema.column_names})"

    # -- basic operators -----------------------------------------------------

    @property
    def rows(self) -> list[Row]:
        """A defensive copy of all rows."""
        return [dict(row) for row in self._rows]

    def append(self, row: Row) -> None:
        """Add a row (validated against the schema)."""
        self._rows.append(self.schema.conform(row))

    def extend(self, rows: Iterable[Row]) -> None:
        """Add many rows."""
        for row in rows:
            self.append(row)

    def select(self, predicate: Callable[[Row], bool]) -> "Relation":
        """Rows satisfying ``predicate``."""
        return Relation(self.schema, (row for row in self._rows if predicate(row)))

    def project(self, columns: Sequence[str]) -> "Relation":
        """Projection onto ``columns`` (duplicates kept: bag semantics)."""
        sub_schema = self.schema.project(columns)
        return Relation(
            sub_schema,
            ({name: row.get(name) for name in columns} for row in self._rows),
        )

    def union(self, other: "Relation") -> "Relation":
        """Bag union with an identically-typed relation."""
        if other.schema != self.schema:
            raise SchemaError("cannot union relations with different schemas")
        return Relation(self.schema, self._rows + other._rows)

    def sample(self, count: int, seed: int = 0) -> "Relation":
        """Deterministic pseudo-random sample without replacement."""
        if count >= len(self._rows):
            return Relation(self.schema, self._rows)
        indexed = sorted(
            range(len(self._rows)),
            key=lambda i: _stable_hash(i, salt=f"sample-{seed}"),
        )
        chosen = sorted(indexed[:count])
        return Relation(self.schema, (self._rows[i] for i in chosen))

    def column_values(self, name: str) -> list[Any]:
        """All values of one column (including ``None``)."""
        self.schema.column(name)
        return [row.get(name) for row in self._rows]

    def join(self, other: "Relation", on: Sequence[str]) -> "Relation":
        """Inner equi-join on the ``on`` columns (hash join).

        Matching follows Python equality; rows with a ``None`` key
        value never join (SQL NULL semantics).  Output order is this
        relation's row order, matches in ``other``'s row order; the
        joined schema is this relation's columns followed by the
        other's non-key, non-duplicate columns.  The columnar engine's
        :func:`repro.query.columnar.hash_join` is differential-tested
        against this reference.
        """
        on = list(on)
        if not on:
            raise SchemaError("join requires at least one key column")
        for name in on:
            self.schema.column(name)
            other.schema.column(name)
        own_names = set(self.schema.column_names)
        extra = [
            column
            for column in other.schema.columns
            if column.name not in on and column.name not in own_names
        ]
        joined_schema = Schema(tuple(self.schema.columns) + tuple(extra))
        extra_names = [column.name for column in extra]
        table: dict[tuple, list[Row]] = {}
        for row in other._rows:
            key = tuple(row.get(name) for name in on)
            if any(value is None for value in key):
                continue
            table.setdefault(key, []).append(row)
        joined: list[Row] = []
        for row in self._rows:
            key = tuple(row.get(name) for name in on)
            if any(value is None for value in key):
                continue
            for match in table.get(key, ()):
                merged = dict(row)
                for name in extra_names:
                    merged[name] = match.get(name)
                joined.append(merged)
        return Relation(joined_schema, joined)

    # -- partitionings ---------------------------------------------------------

    def partition_by_hash(
        self, n_partitions: int, key: Callable[[Row], Any] | str | None = None,
        salt: str = "",
    ) -> list["Relation"]:
        """Horizontal partitioning into ``n_partitions`` hash buckets.

        ``key`` may be a column name, a callable, or ``None`` (hash the
        whole row).  With a well-mixing hash every bucket is a
        *representative* sample of the relation, which is the property
        Overcollection validity relies on.
        """
        if n_partitions <= 0:
            raise ValueError("n_partitions must be positive")
        if isinstance(key, str):
            column = key
            key_fn: Callable[[Row], Any] = lambda row: row.get(column)
        elif key is None:
            key_fn = lambda row: tuple(sorted(row.items()))
        else:
            key_fn = key
        buckets: list[list[Row]] = [[] for _ in range(n_partitions)]
        for row in self._rows:
            index = _stable_hash(key_fn(row), salt=salt) % n_partitions
            buckets[index].append(row)
        return [Relation(self.schema, bucket) for bucket in buckets]

    def partition_round_robin(self, n_partitions: int) -> list["Relation"]:
        """Horizontal partitioning with perfectly balanced cardinalities."""
        if n_partitions <= 0:
            raise ValueError("n_partitions must be positive")
        buckets: list[list[Row]] = [[] for _ in range(n_partitions)]
        for i, row in enumerate(self._rows):
            buckets[i % n_partitions].append(row)
        return [Relation(self.schema, bucket) for bucket in buckets]

    def split_columns(self, groups: Sequence[Sequence[str]]) -> list["Relation"]:
        """Vertical partitioning into disjoint column groups.

        Every column group becomes its own relation; no row identifier
        links them (the paper's counter-measure against quasi-identifier
        co-exposure — re-linking is exactly what we refuse to enable).
        """
        seen: set[str] = set()
        for group in groups:
            for name in group:
                if name in seen:
                    raise SchemaError(
                        f"column {name!r} appears in more than one group"
                    )
                seen.add(name)
        return [self.project(list(group)) for group in groups]


def _row_key(row: Row) -> tuple:
    """Canonical sort key for bag comparison."""
    return tuple(sorted((k, repr(v)) for k, v in row.items()))
