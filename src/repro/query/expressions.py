"""Serializable predicate expressions.

Query plans ship predicates to edgelets over the network, so predicates
must round-trip through JSON.  The expression tree supports column
references, literals, the six comparisons, IN-lists, and boolean
combinators — enough for the demonstration queries (``age > 65``,
``region IN (...)`` and the like).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

__all__ = [
    "Expression",
    "ColumnRef",
    "Literal",
    "CompareExpr",
    "InExpr",
    "AndExpr",
    "OrExpr",
    "NotExpr",
    "expression_from_dict",
]

Row = dict[str, Any]

_COMPARATORS = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


class Expression:
    """Base class for all expressions."""

    def evaluate(self, row: Row) -> Any:
        """Evaluate against one row."""
        raise NotImplementedError

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible representation."""
        raise NotImplementedError

    def columns(self) -> set[str]:
        """All column names the expression references."""
        raise NotImplementedError


@dataclass(frozen=True)
class ColumnRef(Expression):
    """Reference to a row column."""

    name: str

    def evaluate(self, row: Row) -> Any:
        return row.get(self.name)

    def to_dict(self) -> dict[str, Any]:
        return {"op": "column", "name": self.name}

    def columns(self) -> set[str]:
        return {self.name}


@dataclass(frozen=True)
class Literal(Expression):
    """A constant value."""

    value: Any

    def evaluate(self, row: Row) -> Any:
        return self.value

    def to_dict(self) -> dict[str, Any]:
        return {"op": "literal", "value": self.value}

    def columns(self) -> set[str]:
        return set()


@dataclass(frozen=True)
class CompareExpr(Expression):
    """Binary comparison; NULL on either side compares false (SQL-ish)."""

    comparator: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.comparator not in _COMPARATORS:
            raise ValueError(f"unknown comparator {self.comparator!r}")

    def evaluate(self, row: Row) -> bool:
        left = self.left.evaluate(row)
        right = self.right.evaluate(row)
        if left is None or right is None:
            return False
        return _COMPARATORS[self.comparator](left, right)

    def to_dict(self) -> dict[str, Any]:
        return {
            "op": "compare",
            "comparator": self.comparator,
            "left": self.left.to_dict(),
            "right": self.right.to_dict(),
        }

    def columns(self) -> set[str]:
        return self.left.columns() | self.right.columns()


@dataclass(frozen=True)
class InExpr(Expression):
    """Membership test against a literal list."""

    operand: Expression
    choices: tuple[Any, ...]

    def evaluate(self, row: Row) -> bool:
        value = self.operand.evaluate(row)
        if value is None:
            return False
        return value in self.choices

    def to_dict(self) -> dict[str, Any]:
        return {
            "op": "in",
            "operand": self.operand.to_dict(),
            "choices": list(self.choices),
        }

    def columns(self) -> set[str]:
        return self.operand.columns()


@dataclass(frozen=True)
class AndExpr(Expression):
    """Conjunction of sub-expressions."""

    operands: tuple[Expression, ...]

    def evaluate(self, row: Row) -> bool:
        return all(operand.evaluate(row) for operand in self.operands)

    def to_dict(self) -> dict[str, Any]:
        return {"op": "and", "operands": [o.to_dict() for o in self.operands]}

    def columns(self) -> set[str]:
        result: set[str] = set()
        for operand in self.operands:
            result |= operand.columns()
        return result


@dataclass(frozen=True)
class OrExpr(Expression):
    """Disjunction of sub-expressions."""

    operands: tuple[Expression, ...]

    def evaluate(self, row: Row) -> bool:
        return any(operand.evaluate(row) for operand in self.operands)

    def to_dict(self) -> dict[str, Any]:
        return {"op": "or", "operands": [o.to_dict() for o in self.operands]}

    def columns(self) -> set[str]:
        result: set[str] = set()
        for operand in self.operands:
            result |= operand.columns()
        return result


@dataclass(frozen=True)
class NotExpr(Expression):
    """Negation."""

    operand: Expression

    def evaluate(self, row: Row) -> bool:
        return not self.operand.evaluate(row)

    def to_dict(self) -> dict[str, Any]:
        return {"op": "not", "operand": self.operand.to_dict()}

    def columns(self) -> set[str]:
        return self.operand.columns()


def expression_from_dict(data: dict[str, Any]) -> Expression:
    """Rebuild an expression tree from its JSON form."""
    op = data.get("op")
    if op == "column":
        return ColumnRef(data["name"])
    if op == "literal":
        return Literal(data["value"])
    if op == "compare":
        return CompareExpr(
            data["comparator"],
            expression_from_dict(data["left"]),
            expression_from_dict(data["right"]),
        )
    if op == "in":
        return InExpr(expression_from_dict(data["operand"]), tuple(data["choices"]))
    if op == "and":
        return AndExpr(tuple(expression_from_dict(o) for o in data["operands"]))
    if op == "or":
        return OrExpr(tuple(expression_from_dict(o) for o in data["operands"]))
    if op == "not":
        return NotExpr(expression_from_dict(data["operand"]))
    raise ValueError(f"unknown expression op {op!r}")
