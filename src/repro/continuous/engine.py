"""The standing-query engine: windowed re-execution under churn.

One :class:`ContinuousEngine` owns one query and one churning swarm.
A :class:`WindowScheduler` fires windows on the virtual clock at the
spec's cadence; before each window the seeded churn model
(:mod:`repro.devices.churn`) applies departures, arrivals, and data
refreshes; then the window is compiled into the existing QEP path —
plan, lease, assign, execute through a query-scoped mux endpoint —
exactly like one workload query, and its
:class:`~repro.core.runtime.report.ExecutionReport` is wrapped into a
:class:`WindowRecord` carrying the window's *lineage*: index, population
snapshot hash, overlap with the previous window's population, churn
events, and incremental-maintenance savings.

Incremental partition maintenance: when ``spec.incremental`` is on, one
:class:`~repro.core.runtime.incremental.ContributionCache` is threaded
through every window's coordinator, so contributors whose rows did not
change since the last window (and whose partition kept its builder
device) ship ~40-byte delta stamps instead of full payloads.  Churn
invalidates the affected cache edges, forcing full recollection exactly
where the population moved.

Determinism: window fire times, window seeds, churn draws, spawn
identities, and lease orders are all pure functions of the spec, the
churn spec, and the swarm sizing — two runs replay to byte-identical
per-window lineage fingerprints
(:func:`repro.workload.fingerprint.window_fingerprint`).
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Any

from repro.continuous.spec import StandingQuerySpec
from repro.core.planner import (
    PrivacyParameters,
    ResiliencyParameters,
)
from repro.core.qep import OperatorRole
from repro.core.runtime import (
    ContributionCache,
    ExecutionCoordinator,
)
from repro.data.health import HEALTH_SCHEMA, generate_health_rows
from repro.devices.churn import ChurnModel, ChurnSpec, WindowChurn
from repro.manager.admission import (
    ADMITTED,
    AdmissionController,
    DeviceLeaseRegistry,
)
from repro.manager.scenario import Scenario, ScenarioConfig
from repro.network.failures import FailureInjector
from repro.network.mux import QueryMux
from repro.plan.compile import CompiledQuery, compile_query
from repro.plan.logical import LogicalPlan
from repro.plan.rules import apply_rules
from repro.workload.fingerprint import window_fingerprint

__all__ = [
    "ContinuousEngine",
    "ContinuousResult",
    "WindowRecord",
    "WindowScheduler",
]

COMPLETED = "completed"
SKIPPED = "skipped"  # admission cap reached, or the swarm was leased out
EMPTY = "empty"  # no eligible contributors (sliding window went stale)


def population_hash(device_ids: list[str]) -> str:
    """Order-insensitive digest of a population snapshot."""
    document = "\n".join(sorted(device_ids))
    return hashlib.sha256(document.encode()).hexdigest()[:16]


@dataclass
class WindowRecord:
    """Lifecycle + lineage record of one standing-query window."""

    index: int
    window_id: str
    outcome: str = "pending"
    started_at: float | None = None
    finished_at: float | None = None
    # lineage
    population: list[str] = field(default_factory=list)
    population_hash: str = ""
    overlap_with_previous: float = 1.0
    churn: WindowChurn | None = None
    eligible: list[str] = field(default_factory=list)
    rows: list[dict[str, Any]] = field(default_factory=list)
    # execution
    leased: list[str] = field(default_factory=list)
    standbys: list[str] = field(default_factory=list)
    lease_flags: list[str] = field(default_factory=list)
    report: Any = None
    plan: Any = None
    executor: Any = None
    transport: Any = None
    # per-window accounting (filled at the next window boundary)
    coverage: float | None = None
    incremental: dict[str, int] = field(default_factory=dict)
    window_bytes: int = 0
    window_messages: int = 0
    fingerprint: str | None = None


@dataclass
class ContinuousResult:
    """Outcome of one standing-query run."""

    spec: StandingQuerySpec
    windows: list[WindowRecord]
    elapsed: float
    completed: int
    skipped: int
    empty: int
    succeeded: int
    degraded: int
    flagged: int
    final_population: int
    incremental_totals: dict[str, int]

    def fingerprints(self) -> dict[str, str]:
        """window_id -> lineage fingerprint, completed windows only."""
        return {
            w.window_id: w.fingerprint
            for w in self.windows
            if w.fingerprint is not None
        }

    def summary(self) -> dict[str, Any]:
        completed = [w for w in self.windows if w.outcome == COMPLETED]
        coverages = [w.coverage for w in completed if w.coverage is not None]
        overlaps = [w.overlap_with_previous for w in completed]
        return {
            "windows": len(self.windows),
            "completed": self.completed,
            "skipped": self.skipped,
            "empty": self.empty,
            "succeeded": self.succeeded,
            "degraded": self.degraded,
            "flagged": self.flagged,
            "elapsed": self.elapsed,
            "final_population": self.final_population,
            "mean_coverage": (
                sum(coverages) / len(coverages) if coverages else 0.0
            ),
            "mean_overlap": sum(overlaps) / len(overlaps) if overlaps else 0.0,
            "bytes_per_window": (
                sum(w.window_bytes for w in completed) / len(completed)
                if completed
                else 0.0
            ),
            "messages_per_window": (
                sum(w.window_messages for w in completed) / len(completed)
                if completed
                else 0.0
            ),
            **{
                f"incremental_{k}": v
                for k, v in self.incremental_totals.items()
            },
        }


class WindowScheduler:
    """Fires window callbacks at the spec's cadence, deterministically.

    Pure clockwork: every fire time is decided up-front from the spec
    (``start + index * cadence``); admission decisions, churn, and
    execution belong to the engine's callback, not the scheduler.
    """

    def __init__(self, simulator: Any, spec: StandingQuerySpec, on_window: Any):
        self.simulator = simulator
        self.spec = spec
        self.on_window = on_window
        self.fired = 0

    def arm(self, start: float) -> None:
        for index, at in enumerate(self.spec.fire_times(start)):
            self.simulator.schedule_at(
                at,
                lambda i=index: self._fire(i),
                f"window-fire:{self.spec.window_id(index)}",
            )

    def _fire(self, index: int) -> None:
        self.fired += 1
        self.on_window(index)


class ContinuousEngine:
    """Drives one standing query over one churning swarm.

    Args:
        spec: the standing-query description.
        churn: population churn model spec; ``None`` freezes the swarm.
        n_contributors / n_processors: initial swarm sizing.
        rows_per_contributor: synthetic health rows dealt to each
            contributor (initial and newly-arrived alike).
        telemetry: recording target; defaults to the process instance.
        standby_count: extra devices leased per reliable window as the
            recovery watchdog's re-recruitment pool.
        fault_specs / failure_plan / outage_plan / crash_probability /
        disconnect_probability / disconnect_duration / message_loss:
            chaos hooks, installed once over the whole run (see
            :mod:`repro.chaos.continuous`).
    """

    def __init__(
        self,
        spec: StandingQuerySpec,
        churn: ChurnSpec | None = None,
        n_contributors: int = 24,
        n_processors: int = 48,
        rows_per_contributor: int = 2,
        telemetry: Any = None,
        standby_count: int = 0,
        fault_specs: Any = None,
        failure_plan: Any = None,
        outage_plan: Any = None,
        crash_probability: float = 0.0,
        disconnect_probability: float = 0.0,
        disconnect_duration: float = 10.0,
        message_loss: float = 0.0,
    ):
        if telemetry is None:
            from repro.telemetry import get_telemetry

            telemetry = get_telemetry()
        if rows_per_contributor <= 0:
            raise ValueError("rows_per_contributor must be positive")
        self.telemetry = telemetry
        self.spec = spec
        self.standby_count = standby_count
        self.rows_per_contributor = rows_per_contributor
        rows = generate_health_rows(
            rows_per_contributor * n_contributors, seed=spec.seed
        )
        self.scenario_config = ScenarioConfig(
            n_contributors=n_contributors,
            n_processors=n_processors,
            rows=rows,
            schema=HEALTH_SCHEMA,
            device_mix=(1.0, 0.0, 0.0),
            rows_per_device=(rows_per_contributor, rows_per_contributor),
            collection_window=spec.collection_window,
            deadline=spec.deadline,
            secure_channels=False,
            crash_probability=crash_probability,
            disconnect_probability=disconnect_probability,
            disconnect_duration=disconnect_duration,
            message_loss=message_loss,
            seed=spec.seed,
            scenario_tag=f"{spec.name}{spec.seed}",
            fault_specs=fault_specs,
            failure_plan=failure_plan,
            outage_plan=outage_plan,
            reliability=spec.reliability,
        )
        self.scenario = Scenario(self.scenario_config, telemetry=telemetry)
        self.scenario.network.per_query_rng = True
        self.mux = QueryMux(self.scenario.network)
        self.registry = DeviceLeaseRegistry(
            clock=lambda: self.scenario.simulator.now
        )
        self.admission = AdmissionController(
            spec.max_concurrent_windows, queue_capacity=0, telemetry=telemetry
        )
        self.logical, _ = apply_rules(LogicalPlan.from_sql(spec.sql))
        self.group_by = self.logical.to_group_by()
        self.churn_model = ChurnModel(churn) if churn is not None else None
        self.cache = ContributionCache() if spec.incremental else None

        # live pools (the scenario's lists mirror these; the engine owns
        # membership so lineage and lease conservation stay auditable)
        self.contributor_ids = [
            d.device_id for d in self.scenario.contributors
        ]
        self.processor_pool = self.scenario.eligible_processor_ids()
        for device_id in self.processor_pool:
            self.registry.register_device(device_id)
        self._next_contributor_index = n_contributors
        self._next_processor_index = n_processors

        # virtual time each contributor's data last changed (arrival or
        # refresh); drives sliding-window eligibility and the oracle
        self._data_changed_at: dict[str, float] = {
            device_id: 0.0 for device_id in self.contributor_ids
        }
        self.scheduler = WindowScheduler(
            self.scenario.simulator, spec, self._on_window
        )
        self.injector: FailureInjector | None = None
        self.scripted_events: list[Any] = []
        self.outage_events: list[Any] = []
        self._windows: list[WindowRecord] = []
        self._last_executed: WindowRecord | None = None
        self._bytes_mark = 0
        self._messages_mark = 0
        metrics = telemetry.metrics
        self._g_population = metrics.gauge("population.online")
        self._h_coverage = metrics.histogram("window.coverage")
        self._m_bytes_saved = metrics.counter("window.incremental_bytes_saved")
        self._h_overlap = metrics.histogram("window.population_overlap")

    # -- the run --------------------------------------------------------------

    def run(self) -> ContinuousResult:
        """Fire every window in the horizon; returns once the swarm is
        idle after the last window's execution drained."""
        sim = self.scenario.simulator
        start = sim.now
        self._windows = [
            WindowRecord(index=i, window_id=self.spec.window_id(i))
            for i in range(self.spec.max_windows)
        ]
        self._g_population.set(
            len(self.contributor_ids) + len(self.processor_pool)
        )
        self._install_chaos(start)
        self.scheduler.arm(start)
        sim.run()
        return self._finalize(start)

    def _install_chaos(self, start: float) -> None:
        config = self.scenario_config
        if config.fault_specs:
            from repro.network.faults import MessageFaultInjector

            self.scenario.network.install_faults(
                MessageFaultInjector(config.fault_specs, seed=config.seed + 3)
            )
        if config.failure_plan is not None:
            self.scripted_events = config.failure_plan.apply(
                self.scenario.simulator, self.scenario.network
            )
        if config.outage_plan is not None and not config.outage_plan.is_empty():
            # the returned log is live — it fills as the scheduled
            # outage events fire during the run, so hold the reference
            # and let readers merge it only after the run drains
            self.outage_events = config.outage_plan.apply(
                self.scenario.simulator, self.scenario.network
            )
        if config.crash_probability > 0 or config.disconnect_probability > 0:
            horizon = (
                start
                + (self.spec.max_windows - 1) * self.spec.cadence
                + 3 * self.spec.deadline
            )
            self.injector = FailureInjector(
                self.scenario.simulator,
                self.scenario.network,
                device_ids=list(self.processor_pool),
                crash_probability=config.crash_probability,
                disconnect_probability=config.disconnect_probability,
                disconnect_duration=config.disconnect_duration,
                seed=config.seed + 1,
            )
            self.injector.start(until=horizon)

    # -- churn application ----------------------------------------------------

    def _spawn_rows_seed(self, kind: str, index: int) -> int:
        return random.Random(
            f"{self.spec.seed}:{kind}-rows:{index}"
        ).randrange(2**31)

    def _apply_churn(self, record: WindowRecord) -> None:
        """Apply this window's departures/arrivals/refreshes (window 0
        runs over the seed population unchanged)."""
        if self.churn_model is None or record.index == 0:
            return
        now = self.scenario.simulator.now
        churn = self.churn_model.step(
            record.index, self.contributor_ids, self.processor_pool
        )
        # a zero-event step is indistinguishable from having no churn
        # model at all — keep the lineage byte-identical in that case
        record.churn = churn if churn.any_events else None
        for device_id in churn.contributor_departures:
            self.scenario.network.leave(device_id)
            self.scenario.retire_device(device_id)
            self.contributor_ids.remove(device_id)
            self._data_changed_at.pop(device_id, None)
            if self.cache is not None:
                self.cache.invalidate_device(device_id)
        for device_id in churn.processor_departures:
            flagged = self.registry.retire_device(device_id)
            if flagged is not None:
                for window in self._windows:
                    if window.window_id == flagged:
                        window.lease_flags.append(device_id)
            self.scenario.network.leave(device_id)
            self.scenario.retire_device(device_id)
            self.processor_pool.remove(device_id)
            if self.cache is not None:
                self.cache.invalidate_device(device_id)
        schema = self.scenario_config.schema
        for _ in range(churn.contributor_arrivals):
            index = self._next_contributor_index
            self._next_contributor_index += 1
            device = self.scenario.spawn_contributor(index)
            rows = generate_health_rows(
                self.rows_per_contributor,
                seed=self._spawn_rows_seed("contrib", index),
            )
            for row in rows:
                schema.validate_row(row)
            device.datastore.insert_many(rows)
            self.contributor_ids.append(device.device_id)
            self._data_changed_at[device.device_id] = now
        for _ in range(churn.processor_arrivals):
            index = self._next_processor_index
            self._next_processor_index += 1
            device = self.scenario.spawn_processor(index)
            self.registry.register_device(device.device_id)
            self.processor_pool.append(device.device_id)
        for device_id in churn.data_changes:
            device = self.scenario.devices[device_id]
            fresh = generate_health_rows(
                1,
                seed=random.Random(
                    f"{self.spec.seed}:refresh:w{record.index}:{device_id}"
                ).randrange(2**31),
            )
            for row in fresh:
                schema.validate_row(row)
            device.datastore.insert_many(fresh)
            self._data_changed_at[device_id] = now
        if self.churn_model.spec.mobility_mean_intercontact is not None:
            schedule = self.churn_model.contact_schedule(
                record.index,
                self.contributor_ids,
                now,
                now + self.spec.deadline,
            )
            if schedule is not None:
                schedule.install(self.scenario.simulator, self.scenario.network)

    # -- window lifecycle -----------------------------------------------------

    def _eligible_contributors(self, now: float) -> list[str]:
        if self.spec.window == "tumbling":
            return list(self.contributor_ids)
        cutoff = now - self.spec.freshness_horizon
        return [
            device_id
            for device_id in self.contributor_ids
            if self._data_changed_at.get(device_id, -1.0) >= cutoff
        ]

    def _roll_accounting(self, record: WindowRecord | None) -> None:
        """Attribute traffic/cache deltas since the last boundary to the
        most recently executed window, then re-mark."""
        stats = self.scenario.network.stats
        target = self._last_executed
        if target is not None:
            target.window_bytes = stats.bytes_sent - self._bytes_mark
            target.window_messages = stats.sent - self._messages_mark
            if self.cache is not None:
                target.incremental = self.cache.take_window_stats()
                self._m_bytes_saved.inc(target.incremental["bytes_saved"])
        elif self.cache is not None:
            self.cache.take_window_stats()  # discard pre-first-window noise
        self._bytes_mark = stats.bytes_sent
        self._messages_mark = stats.sent
        self._last_executed = record

    def _on_window(self, index: int) -> None:
        sim = self.scenario.simulator
        record = self._windows[index]
        record.started_at = sim.now
        self._apply_churn(record)
        self._g_population.set(
            len(self.contributor_ids) + len(self.processor_pool)
        )

        # lineage: population snapshot + coverage vs the previous window
        record.population = sorted(
            [*self.contributor_ids, *self.processor_pool]
        )
        record.population_hash = population_hash(record.population)
        previous = next(
            (w for w in reversed(self._windows[:index]) if w.population),
            None,
        )
        if previous is not None and previous.population:
            overlap = len(
                set(previous.population) & set(record.population)
            ) / len(previous.population)
            record.overlap_with_previous = overlap
        self._h_overlap.observe(record.overlap_with_previous)

        record.eligible = self._eligible_contributors(sim.now)
        if not record.eligible:
            record.outcome = EMPTY
            record.finished_at = sim.now
            self._roll_accounting(None)
            return
        if self.admission.offer(record.window_id) != ADMITTED:
            # cap reached — a standing query skips, it never queues
            record.outcome = SKIPPED
            record.finished_at = sim.now
            self._roll_accounting(None)
            return
        self._launch(record)

    def compile_window(self, window_id: str) -> CompiledQuery:
        """Compile one window through the shared plan pipeline."""
        return compile_query(
            self.logical,
            query_id=window_id,
            snapshot_cardinality=self.spec.snapshot_cardinality,
            privacy=PrivacyParameters(
                max_raw_per_edgelet=self.spec.max_raw_per_edgelet
            ),
            resiliency=ResiliencyParameters(
                fault_rate=self.spec.fault_rate,
                target_success=self.spec.target_success,
                strategy=self.spec.strategy,
            ),
            # one placement key for the whole standing query: with an
            # unchanged pool, every window re-derives the same builder
            # per contributor — the substrate of incremental maintenance
            placement_key=f"{self.spec.name}{self.spec.seed}",
            engine=self.spec.engine,
        )

    def _launch(self, record: WindowRecord) -> None:
        sim = self.scenario.simulator
        window_id = record.window_id
        compiled = self.compile_window(window_id)
        plan = compiled.build_qep(contributor_ids=record.eligible)
        n_processors = sum(
            1 for op in plan.operators() if op.role.is_data_processor
        )
        free = self.registry.free(self.processor_pool)
        if len(free) < n_processors:
            record.outcome = SKIPPED
            record.finished_at = sim.now
            self.admission.abort(window_id)
            self._roll_accounting(None)
            return
        extra = (
            min(self.standby_count, len(free) - n_processors)
            if self.spec.reliability
            else 0
        )
        taken = self.registry.lease(window_id, free[: n_processors + extra])
        record.leased = taken[:n_processors]
        record.standbys = taken[n_processors:]
        self.scenario.assign_query(plan, record.leased)

        # snapshot the oracle rows *after* assignment: this is the data
        # the window's contributors will actually read at fire time —
        # under the same predicate, so coverage counts collectable rows
        where = self.group_by.where
        predicate = (
            (lambda row: where.evaluate(row)) if where is not None else None
        )
        record.rows = [
            dict(row)
            for device_id in record.eligible
            for row in self.scenario.devices[device_id].contribute(predicate)
        ]

        endpoint = self.mux.endpoint(window_id)
        transport = None
        recovery = None
        window_seed = self.spec.window_seed(record.index)
        if self.spec.reliability:
            from repro.core.runtime.recovery import RecoveryConfig
            from repro.network.reliable import ReliableTransport

            transport = ReliableTransport(
                endpoint, seed=window_seed + 4, telemetry=self.telemetry
            )
            recovery = RecoveryConfig(
                phase_deadline=self.scenario_config.phase_deadline
            )
        executor = ExecutionCoordinator(
            simulator=sim,
            strategy=compiled.strategy_runtime(),
            network=endpoint,
            devices=self.scenario.devices,
            plan=plan,
            collection_window=self.spec.collection_window,
            deadline=self.spec.deadline,
            secure_channels=False,
            telemetry=self.telemetry,
            seed=window_seed,
            transport=transport,
            recovery=recovery,
            standby_devices=record.standbys,
            contribution_cache=self.cache,
        )
        record.plan = plan
        record.executor = executor
        record.transport = transport
        record.outcome = "running"
        self._roll_accounting(record)
        horizon = executor.start()
        sim.schedule_at(
            horizon,
            lambda: self._on_complete(record),
            f"window-finish:{window_id}",
        )

    def _on_complete(self, record: WindowRecord) -> None:
        sim = self.scenario.simulator
        report = record.executor.finish()
        self.mux.detach_query(record.window_id)
        self.registry.release(record.window_id)
        record.report = report
        record.finished_at = sim.now
        record.outcome = COMPLETED
        collected = _collected_tuples(record.executor)
        expected = len(record.rows)
        record.coverage = (
            min(1.0, collected / expected) if expected else 0.0
        )
        self._h_coverage.observe(record.coverage)
        self.scenario.record_query_metrics(report, record.executor.start_time)
        self.admission.complete(record.window_id)

    # -- wrap-up --------------------------------------------------------------

    def _finalize(self, start: float) -> ContinuousResult:
        self._roll_accounting(None)  # close the last executed window
        stuck = [
            w.window_id
            for w in self._windows
            if w.outcome not in (COMPLETED, SKIPPED, EMPTY)
        ]
        if stuck:
            raise RuntimeError(
                f"standing query ended with non-terminal windows: {stuck}"
            )
        offered = self.admission.arrivals
        if self.admission.completed + self.admission.shed != offered:
            raise RuntimeError(
                "window admission conservation violated: "
                f"{self.admission.completed} completed + "
                f"{self.admission.shed} shed != {offered} offered"
            )
        leaked = [
            device_id
            for device_id in self.registry.retired
            if self.registry.holder(device_id) is not None
        ]
        if leaked:
            raise RuntimeError(f"retired devices still hold leases: {leaked}")
        for record in self._windows:
            if record.outcome == COMPLETED:
                record.fingerprint = window_fingerprint(
                    record, base_time=record.started_at or 0.0
                )
        completed = [w for w in self._windows if w.outcome == COMPLETED]
        totals: dict[str, int] = {}
        for record in completed:
            for key, value in record.incremental.items():
                totals[key] = totals.get(key, 0) + value
        return ContinuousResult(
            spec=self.spec,
            windows=list(self._windows),
            elapsed=self.scenario.simulator.now - start,
            completed=len(completed),
            skipped=sum(1 for w in self._windows if w.outcome == SKIPPED),
            empty=sum(1 for w in self._windows if w.outcome == EMPTY),
            succeeded=sum(1 for w in completed if w.report.success),
            degraded=sum(1 for w in completed if w.report.degraded),
            flagged=sum(len(w.lease_flags) for w in self._windows),
            final_population=(
                len(self.contributor_ids) + len(self.processor_pool)
            ),
            incremental_totals=totals,
        )


def _collected_tuples(executor: Any) -> int:
    """Raw tuples accepted into the frozen snapshot, strategy-agnostic."""
    strategy = executor.strategy
    rows_by_op = getattr(strategy, "rows_by_op", None)
    ops_by_base = getattr(strategy, "ops_by_base", None)
    if rows_by_op is not None and ops_by_base:
        # Backup: the rank-0 builder's intake is the primary snapshot
        return sum(
            len(rows_by_op.get(ops[0].op_id, []))
            for ops in ops_by_base.values()
            if ops and ops[0].role == OperatorRole.SNAPSHOT_BUILDER
        )
    return sum(
        len(rows) for rows in executor.builder.rows_by_partition.values()
    )
