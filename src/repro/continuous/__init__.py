"""Standing queries over churning device populations.

The workload layer (PR 5) runs many *one-shot* queries against a frozen
swarm.  This layer runs **one query many times**: a
:class:`~repro.continuous.spec.StandingQuerySpec` describes a cadence,
a window mode (tumbling or sliding), and a horizon, and the
:class:`~repro.continuous.engine.ContinuousEngine` compiles each window
into the existing QEP path while a seeded churn model
(:mod:`repro.devices.churn`) grows and shrinks the live population
underneath — the PrivAgE shape of periodic privacy-preserving
aggregation over an edge population that joins and leaves between
rounds.

Layering: ``repro.continuous`` may import ``repro.workload`` (it reuses
the admission/lease/mux/fingerprint machinery) and everything below it,
but never ``repro.chaos`` — chaos probes the continuous engine from
above (:mod:`repro.chaos.continuous`), exactly as it probes the
workload engine.
"""

from repro.continuous.spec import StandingQuerySpec
from repro.continuous.engine import (
    ContinuousEngine,
    ContinuousResult,
    WindowRecord,
    WindowScheduler,
)

__all__ = [
    "ContinuousEngine",
    "ContinuousResult",
    "StandingQuerySpec",
    "WindowRecord",
    "WindowScheduler",
]
