"""Declarative standing-query descriptions.

A :class:`StandingQuerySpec` describes one query that re-executes on a
cadence over a churning population: how often a window fires, how many
windows the horizon holds, the window mode (tumbling vs sliding), and
the shape knobs each per-window execution inherits.  Everything the
engine derives from it — window ids, window seeds, fire times — is a
pure function of ``(name, seed)``, which is what lets a 20-window run
over a churning swarm replay to byte-identical per-window fingerprints.

Window modes
------------

The local datastores carry no row timestamps, so window semantics are
defined over *device update times* (arrival or data refresh), which the
engine tracks on the virtual clock:

* ``"tumbling"`` — every window re-aggregates the full current
  population snapshot (PrivAgE-style periodic re-aggregation; the
  window length equals the cadence and windows partition time);
* ``"sliding"`` — a window of length ``window_length`` covers only the
  contributors whose data changed within ``[fire - window_length,
  fire)``: the standing query aggregates *fresh* data and lets stale
  devices drop out of the snapshot until their owners update again.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

__all__ = ["WINDOW_MODES", "StandingQuerySpec"]

WINDOW_MODES = ("tumbling", "sliding")


@dataclass(frozen=True)
class StandingQuerySpec:
    """Seeded description of one standing query.

    Attributes:
        name: id prefix for windows (``{name}{seed}-w{index:03d}``).
        cadence: virtual seconds between window fires; must cover the
            collection window so one window's collection never overlaps
            the next window's churn step (data stays frozen while being
            collected).
        max_windows: the horizon — how many windows fire in total.
        window: one of :data:`WINDOW_MODES`.
        window_length: data-freshness horizon for sliding windows
            (defaults to the cadence, i.e. "changed since the previous
            window"); ignored for tumbling windows.
        max_concurrent_windows: windows allowed in flight at once; with
            ``cadence < deadline`` windows overlap, and a window that
            would exceed the cap is *skipped* (recorded, never queued —
            a standing query has no use for a stale window).
        snapshot_cardinality: target snapshot size ``C`` per window.
        max_raw_per_edgelet: privacy knob driving partitions per window.
        fault_rate: presumed partition-loss rate (overcollection degree).
        target_success: per-window completion probability target.
        strategy: ``"overcollection"`` or ``"backup"`` for every window.
        collection_window: per-window collection phase length.
        deadline: per-window deadline.
        reliability: run every window over its own ACK/retransmission
            transport plus the recovery watchdogs.
        incremental: ship delta stamps for unchanged contributions
            (see :mod:`repro.core.runtime.incremental`); off = full
            recollection every window.
        engine: operator engine every window executes under — ``"row"``
            or ``"columnar"``; both produce byte-identical windows.
        seed: master seed for window seeds and the default churn model.
        sql: the grouping-sets aggregate every window computes.
    """

    name: str = "cont"
    cadence: float = 20.0
    max_windows: int = 10
    window: str = "tumbling"
    window_length: float | None = None
    max_concurrent_windows: int = 2
    snapshot_cardinality: int = 96
    max_raw_per_edgelet: int = 24
    fault_rate: float = 0.05
    target_success: float = 0.95
    strategy: str = "overcollection"
    collection_window: float = 5.0
    deadline: float = 12.0
    reliability: bool = False
    incremental: bool = True
    engine: str = "row"
    seed: int = 0
    sql: str = (
        "SELECT count(*), avg(age) FROM health "
        "GROUP BY GROUPING SETS ((region), ())"
    )

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("name must be non-empty")
        if self.max_windows <= 0:
            raise ValueError("max_windows must be positive")
        if self.window not in WINDOW_MODES:
            raise ValueError(f"window must be one of {WINDOW_MODES}")
        if self.window_length is not None and self.window_length <= 0:
            raise ValueError("window_length must be positive")
        if self.max_concurrent_windows <= 0:
            raise ValueError("max_concurrent_windows must be positive")
        if self.collection_window <= 0 or self.deadline <= 0:
            raise ValueError("collection_window and deadline must be positive")
        if self.deadline <= self.collection_window:
            raise ValueError("deadline must exceed the collection window")
        if self.cadence < self.collection_window:
            raise ValueError(
                "cadence must cover the collection window (a window's "
                "data must stay frozen while it is being collected)"
            )
        if self.strategy not in ("overcollection", "backup"):
            raise ValueError("strategy must be overcollection or backup")
        if self.engine not in ("row", "columnar"):
            raise ValueError(f"unknown engine {self.engine!r}")

    @property
    def freshness_horizon(self) -> float:
        """The sliding-window data horizon (defaults to the cadence)."""
        return (
            self.window_length if self.window_length is not None else self.cadence
        )

    def window_id(self, index: int) -> str:
        return f"{self.name}{self.seed}-w{index:03d}"

    def window_seed(self, index: int) -> int:
        """Per-window randomness seed (jitter, transport, net streams);
        a pure function of ``(seed, index)``, independent of churn."""
        return random.Random(f"{self.seed}:window:{index}").randrange(2**31)

    def fire_times(self, start: float = 0.0) -> list[float]:
        """Absolute fire time of every window in the horizon."""
        return [start + index * self.cadence for index in range(self.max_windows)]
