"""repro.workload: deterministic multi-query workload engine.

Multiplexes many concurrent Edgelet queries over one shared device
population on the virtual clock — seeded open/closed-loop load
generation (:mod:`.spec`), admission + device-role leasing and the
per-query execution drive (:mod:`.engine`), and canonical report
fingerprints for serial-equivalence auditing (:mod:`.fingerprint`).
"""

from repro.workload.engine import (
    QueryRecord,
    WorkloadEngine,
    WorkloadResult,
    serial_fingerprints,
)
from repro.workload.fingerprint import (
    canonical_report,
    report_fingerprint,
    window_fingerprint,
    window_lineage,
)
from repro.workload.spec import ARRIVAL_PROCESSES, QueryArrival, WorkloadSpec

__all__ = [
    "ARRIVAL_PROCESSES",
    "QueryArrival",
    "QueryRecord",
    "WorkloadEngine",
    "WorkloadResult",
    "WorkloadSpec",
    "canonical_report",
    "report_fingerprint",
    "serial_fingerprints",
    "window_fingerprint",
    "window_lineage",
]
