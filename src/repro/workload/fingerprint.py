"""Canonical, time-shifted fingerprints of execution reports.

The serial-equivalence guarantee — "a query's result under concurrency
equals its result when run alone" — needs a precise notion of *equal*.
Raw :class:`~repro.core.runtime.report.ExecutionReport`\\ s are not
directly comparable across the two settings:

* absolute times differ (a workload query starts at its arrival time,
  a solo replay starts at 0) — so every timestamp is shifted by the
  execution's start time before hashing;
* shared-substrate statistics differ (``network_stats`` aggregates
  *every* query's traffic on the shared network; ``phase_spans`` and
  ``telemetry`` reference process-global objects) — so they are
  excluded.

Everything else — the result rows, the tally, who delivered, when
(relative), which devices handled how many tuples, the full text trace,
degradation labels, reprovisioning history — is canonicalized into a
JSON document with sorted keys and hashed.  Two reports with the same
fingerprint describe the same execution.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

__all__ = [
    "canonical_report",
    "report_fingerprint",
    "window_lineage",
    "window_fingerprint",
]


def _shift(t: float, base: float) -> float:
    """Time relative to the execution start, rounded to a virtual
    nanosecond: ``(base + delta) - base`` differs from ``delta`` by a
    few ulps when ``base`` is an arrival time instead of 0, and those
    ulps are exactly the non-difference a fingerprint must ignore."""
    return round(t - base, 9)


def _canon(value: Any) -> Any:
    """Recursively convert to JSON-encodable canonical form."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return float(value)
    if isinstance(value, dict):
        return {str(key): _canon(item) for key, item in sorted(value.items(), key=lambda kv: str(kv[0]))}
    if isinstance(value, (list, tuple)):
        return [_canon(item) for item in value]
    tolist = getattr(value, "tolist", None)
    if callable(tolist):  # numpy arrays and scalars
        return _canon(tolist())
    item = getattr(value, "item", None)
    if callable(item):
        return _canon(item())
    to_dict = getattr(value, "to_dict", None)
    if callable(to_dict):
        return _canon(to_dict())
    return repr(value)


def _canon_result(result: Any) -> Any:
    """A grouping-sets result, keyed by grouping set."""
    if result is None:
        return None
    rows = getattr(result, "per_set_rows", None)
    if rows is None:
        return _canon(result)
    sets = getattr(getattr(result, "query", None), "grouping_sets", None)
    keys = (
        ["|".join(gs) for gs in sets]
        if sets is not None
        else [str(i) for i in range(len(rows))]
    )
    return {
        key: [_canon(dict(row)) for row in set_rows]
        for key, set_rows in zip(keys, rows)
    }


def _canon_kmeans(kmeans: Any) -> Any:
    if kmeans is None:
        return None
    return {
        "centroids": _canon(kmeans.centroids),
        "weights": _canon(kmeans.weights),
        "knowledges_merged": kmeans.knowledges_merged,
        "cluster_stats": _canon_result(kmeans.cluster_stats),
    }


def canonical_report(report: Any, base_time: float = 0.0) -> dict[str, Any]:
    """The comparable view of one report, times shifted by ``base_time``."""
    completion = report.completion_time
    return {
        "query_id": report.query_id,
        "success": report.success,
        "degraded": report.degraded,
        "delivered_by": report.delivered_by,
        "received_partitions": report.received_partitions,
        "completion_time": (
            _shift(completion, base_time) if completion is not None else None
        ),
        "result": _canon_result(report.result),
        "kmeans": _canon_kmeans(report.kmeans),
        "tally": _canon(report.tally),
        "tuples_per_device": _canon(report.tuples_per_device),
        "trace": [[_shift(t, base_time), text] for t, text in report.trace],
        "heartbeats_run": report.heartbeats_run,
        "convergence_trace": _canon(report.convergence_trace),
        "coverage": _canon(report.coverage),
        "validity_bound": report.validity_bound,
        "reprovisions": [
            [_shift(t, base_time), op, old, new]
            for t, op, old, new in report.reprovisions
        ],
    }


def report_fingerprint(report: Any, base_time: float = 0.0) -> str:
    """SHA-256 over the canonical JSON encoding of the report."""
    document = json.dumps(
        canonical_report(report, base_time=base_time),
        sort_keys=True,
        separators=(",", ":"),
        allow_nan=True,
    )
    return hashlib.sha256(document.encode()).hexdigest()


def window_lineage(record: Any, base_time: float = 0.0) -> dict[str, Any]:
    """The comparable view of one standing-query window.

    Extends the report canonicalization with the window's *lineage* —
    index, population snapshot hash, overlap with the previous window,
    churn events, eligibility, and incremental-maintenance accounting —
    so two runs of the same standing query agree not just on every
    window's result but on the population history that produced it.
    Duck-typed over :class:`repro.continuous.engine.WindowRecord` to
    keep this module free of upward imports.
    """
    churn = record.churn
    return {
        "index": record.index,
        "window_id": record.window_id,
        "outcome": record.outcome,
        "population_hash": record.population_hash,
        "population_size": len(record.population),
        "overlap_with_previous": round(record.overlap_with_previous, 9),
        "eligible": sorted(record.eligible),
        "churn": _canon(churn.as_dict()) if churn is not None else None,
        "coverage": (
            round(record.coverage, 9) if record.coverage is not None else None
        ),
        "incremental": _canon(record.incremental),
        "lease_flags": sorted(record.lease_flags),
        "report": (
            canonical_report(record.report, base_time=base_time)
            if record.report is not None
            else None
        ),
    }


def window_fingerprint(record: Any, base_time: float = 0.0) -> str:
    """SHA-256 over the canonical JSON encoding of a window's lineage."""
    document = json.dumps(
        window_lineage(record, base_time=base_time),
        sort_keys=True,
        separators=(",", ":"),
        allow_nan=True,
    )
    return hashlib.sha256(document.encode()).hexdigest()
