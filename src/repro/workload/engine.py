"""The multi-query workload engine.

Runs a :class:`~repro.workload.spec.WorkloadSpec` — many concurrent
query executions — over **one** shared device population on one virtual
clock.  The pieces:

* a :class:`~repro.manager.scenario.Scenario` provides the swarm, the
  data deal-out, and the shared opportunistic network (switched into
  per-query RNG streams so each query's loss/latency draws are
  independent of interleaving);
* a :class:`~repro.network.mux.QueryMux` gives every execution a
  query-scoped endpoint, so dispatches, dedup tables, watchdogs, and
  retransmissions of interleaved queries never touch each other;
* an :class:`~repro.manager.admission.AdmissionController` bounds
  concurrency (queue, then shed) and a
  :class:`~repro.manager.admission.DeviceLeaseRegistry` guarantees no
  device holds two exclusive data-processor roles at once — a device
  contributes to many queries but computes/combines for at most one;
* every completed query is fingerprinted
  (:func:`~repro.workload.fingerprint.report_fingerprint`), which is
  what :func:`serial_fingerprints` compares against solo replays to
  certify that concurrency changed *nothing* about any single query.

Determinism: arrival times, strategy choices, per-query seeds, leases
(drawn from a deterministic free list), and every simulator event are
pure functions of the spec and swarm parameters — two runs of the same
workload produce byte-identical per-query report fingerprints.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Any

from repro.core.planner import (
    PrivacyParameters,
    ResiliencyParameters,
)
from repro.core.runtime import ExecutionCoordinator
from repro.data.health import HEALTH_SCHEMA, generate_health_rows
from repro.manager.admission import (
    ADMITTED,
    QUEUED,
    AdmissionController,
    DeviceLeaseRegistry,
)
from repro.manager.scenario import Scenario, ScenarioConfig
from repro.network.failures import FailureInjector
from repro.network.mux import QueryMux
from repro.plan.compile import CompiledQuery, compile_query
from repro.plan.logical import LogicalPlan
from repro.plan.rules import apply_rules
from repro.workload.fingerprint import report_fingerprint
from repro.workload.spec import QueryArrival, WorkloadSpec

__all__ = [
    "QueryRecord",
    "WorkloadResult",
    "WorkloadEngine",
    "serial_fingerprints",
]

COMPLETED = "completed"
SHED = "shed"


@dataclass
class QueryRecord:
    """Lifecycle record of one arrival, from offer to terminal state.

    ``outcome`` ends as ``"completed"`` (the execution ran to its
    horizon; inspect ``report.success``/``report.degraded`` for the
    query-level verdict) or ``"shed"`` (rejected at admission, or
    admitted but unplaceable on the leased-out swarm).
    """

    arrival: QueryArrival
    outcome: str = "pending"
    arrived_at: float | None = None
    started_at: float | None = None
    finished_at: float | None = None
    leased: list[str] = field(default_factory=list)
    standbys: list[str] = field(default_factory=list)
    report: Any = None
    fingerprint: str | None = None
    plan: Any = None
    executor: Any = None
    transport: Any = None

    @property
    def latency(self) -> float | None:
        """Arrival-to-result-delivery virtual latency (queue included)."""
        if self.arrived_at is None:
            return None
        end = None
        if self.report is not None and self.report.completion_time is not None:
            end = self.report.completion_time
        elif self.finished_at is not None:
            end = self.finished_at
        if end is None:
            return None
        return end - self.arrived_at


def _percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of a pre-sorted non-empty list."""
    rank = max(1, math.ceil(q * len(sorted_values)))
    return sorted_values[rank - 1]


@dataclass
class WorkloadResult:
    """Outcome of one workload run."""

    spec: WorkloadSpec
    records: list[QueryRecord]
    elapsed: float
    arrivals: int
    admitted: int
    queued: int
    shed: int
    completed: int
    succeeded: int
    degraded: int
    latency_percentiles: dict[str, float]
    utilization: float

    @property
    def throughput(self) -> float:
        """Completed queries per virtual second."""
        return self.completed / self.elapsed if self.elapsed > 0 else 0.0

    def fingerprints(self) -> dict[str, str]:
        """query_id -> canonical report fingerprint, completed only."""
        return {
            r.arrival.query_id: r.fingerprint
            for r in self.records
            if r.fingerprint is not None
        }

    def summary(self) -> dict[str, Any]:
        return {
            "arrivals": self.arrivals,
            "admitted": self.admitted,
            "queued": self.queued,
            "shed": self.shed,
            "completed": self.completed,
            "succeeded": self.succeeded,
            "degraded": self.degraded,
            "elapsed": self.elapsed,
            "throughput": self.throughput,
            "utilization": self.utilization,
            **{f"latency_{k}": v for k, v in self.latency_percentiles.items()},
        }


class WorkloadEngine:
    """Drives one workload over one shared swarm.

    Args:
        spec: the workload description.
        n_contributors / n_processors: swarm sizing.
        rows / schema: the shared dataset; defaults to synthetic health
            rows sized to the contributor pool.
        telemetry: recording target; defaults to the process instance.
        scenario_tag: device-identity prefix (defaults to
            ``wl{spec.seed}``, making identities a pure function of the
            spec — required for serial replays).
        standby_count: extra devices leased per reliable query as the
            recovery watchdog's re-recruitment pool.
        fault_specs / failure_plan / crash_probability /
        disconnect_probability / disconnect_duration / message_loss:
            chaos hooks, installed once over the whole workload (see
            :mod:`repro.chaos.workload`).
    """

    def __init__(
        self,
        spec: WorkloadSpec,
        n_contributors: int = 30,
        n_processors: int = 60,
        rows: list[dict[str, Any]] | None = None,
        schema: Any = None,
        telemetry: Any = None,
        scenario_tag: str | None = None,
        standby_count: int = 0,
        fault_specs: Any = None,
        failure_plan: Any = None,
        crash_probability: float = 0.0,
        disconnect_probability: float = 0.0,
        disconnect_duration: float = 10.0,
        message_loss: float = 0.0,
    ):
        if telemetry is None:
            from repro.telemetry import get_telemetry

            telemetry = get_telemetry()
        self.telemetry = telemetry
        self.spec = spec
        self.standby_count = standby_count
        if rows is None:
            rows = generate_health_rows(2 * n_contributors, seed=spec.seed)
        if schema is None:
            schema = HEALTH_SCHEMA
        self.scenario_config = ScenarioConfig(
            n_contributors=n_contributors,
            n_processors=n_processors,
            rows=rows,
            schema=schema,
            device_mix=(1.0, 0.0, 0.0),
            collection_window=spec.collection_window,
            deadline=spec.deadline,
            secure_channels=False,
            crash_probability=crash_probability,
            disconnect_probability=disconnect_probability,
            disconnect_duration=disconnect_duration,
            message_loss=message_loss,
            seed=spec.seed,
            scenario_tag=scenario_tag or f"wl{spec.seed}",
            fault_specs=fault_specs,
            failure_plan=failure_plan,
            reliability=spec.reliability,
        )
        self.scenario = Scenario(self.scenario_config, telemetry=telemetry)
        self.scenario.network.per_query_rng = True
        self.mux = QueryMux(self.scenario.network)
        self.registry = DeviceLeaseRegistry(
            clock=lambda: self.scenario.simulator.now
        )
        self.admission = AdmissionController(
            spec.max_concurrent, spec.queue_capacity, telemetry=telemetry
        )
        self.logical, _ = apply_rules(LogicalPlan.from_sql(spec.sql))
        self.group_by = self.logical.to_group_by()
        self.processor_pool = self.scenario.eligible_processor_ids()
        self.injector: FailureInjector | None = None
        self.scripted_events: list[Any] = []
        self._records: dict[str, QueryRecord] = {}
        self._pending: deque[QueryArrival] = deque()
        self._g_in_flight = telemetry.metrics.gauge("workload.in_flight")
        self._h_latency = telemetry.metrics.histogram("workload.query_latency")

    # -- the run --------------------------------------------------------------

    def run(self) -> WorkloadResult:
        """Execute the whole workload; returns once the swarm is idle."""
        sim = self.scenario.simulator
        start = sim.now
        arrivals = self.spec.arrivals()
        self._records = {a.query_id: QueryRecord(arrival=a) for a in arrivals}
        self._install_chaos(arrivals)
        if self.spec.arrival_process == "closed":
            self._pending = deque(arrivals)
            prime = min(self.spec.target_in_flight, len(arrivals))
            for _ in range(prime):
                arrival = self._pending.popleft()
                sim.schedule_at(
                    start,
                    lambda a=arrival: self._on_arrival(a),
                    f"workload-arrival:{arrival.query_id}",
                )
        else:
            for arrival in arrivals:
                sim.schedule_at(
                    start + arrival.at,
                    lambda a=arrival: self._on_arrival(a),
                    f"workload-arrival:{arrival.query_id}",
                )
        sim.run()
        return self._finalize(start)

    def _install_chaos(self, arrivals: list[QueryArrival]) -> None:
        config = self.scenario_config
        if config.fault_specs:
            from repro.network.faults import MessageFaultInjector

            self.scenario.network.install_faults(
                MessageFaultInjector(config.fault_specs, seed=config.seed + 3)
            )
        if config.failure_plan is not None:
            self.scripted_events = config.failure_plan.apply(
                self.scenario.simulator, self.scenario.network
            )
        if config.crash_probability > 0 or config.disconnect_probability > 0:
            open_loop_span = max(
                (a.at for a in arrivals if a.at is not None), default=0.0
            )
            horizon = open_loop_span + 3 * self.spec.deadline
            self.injector = FailureInjector(
                self.scenario.simulator,
                self.scenario.network,
                device_ids=list(self.processor_pool),
                crash_probability=config.crash_probability,
                disconnect_probability=config.disconnect_probability,
                disconnect_duration=config.disconnect_duration,
                seed=config.seed + 1,
            )
            self.injector.start(until=horizon)

    # -- arrival / launch / completion ---------------------------------------

    def _on_arrival(self, arrival: QueryArrival) -> None:
        record = self._records[arrival.query_id]
        record.arrived_at = self.scenario.simulator.now
        decision = self.admission.offer(arrival.query_id)
        if decision == ADMITTED:
            self._launch(record)
        elif decision == QUEUED:
            record.outcome = "queued"
        else:
            record.outcome = SHED

    def compile(self, query_id: str, strategy: str) -> CompiledQuery:
        """Compile one arrival through the shared plan pipeline (the
        workload's logical plan is parsed and rewritten once)."""
        return compile_query(
            self.logical,
            query_id=query_id,
            snapshot_cardinality=self.spec.snapshot_cardinality,
            privacy=PrivacyParameters(
                max_raw_per_edgelet=self.spec.max_raw_per_edgelet
            ),
            resiliency=ResiliencyParameters(
                fault_rate=self.spec.fault_rate,
                target_success=self.spec.target_success,
                strategy=strategy,
            ),
            engine=self.spec.engine,
        )

    def _launch(self, record: QueryRecord) -> None:
        sim = self.scenario.simulator
        arrival = record.arrival
        query_id = arrival.query_id
        compiled = self.compile(query_id, arrival.strategy)
        plan = compiled.build_qep(
            contributor_ids=[
                d.device_id for d in self.scenario.contributors
            ]
        )
        n_processors = sum(
            1 for op in plan.operators() if op.role.is_data_processor
        )
        free = self.registry.free(self.processor_pool)
        if len(free) < n_processors:
            # the swarm is leased out: convert the admission into a shed
            record.outcome = SHED
            self._after_slot_freed(self.admission.abort(query_id))
            return
        extra = (
            min(self.standby_count, len(free) - n_processors)
            if self.spec.reliability
            else 0
        )
        taken = self.registry.lease(query_id, free[: n_processors + extra])
        record.leased = taken[:n_processors]
        record.standbys = taken[n_processors:]
        self.scenario.assign_query(plan, record.leased)

        endpoint = self.mux.endpoint(query_id)
        transport = None
        recovery = None
        if self.spec.reliability:
            from repro.core.runtime.recovery import RecoveryConfig
            from repro.network.reliable import ReliableTransport

            transport = ReliableTransport(
                endpoint, seed=arrival.seed + 4, telemetry=self.telemetry
            )
            recovery = RecoveryConfig(
                phase_deadline=self.scenario_config.phase_deadline
            )
        executor = ExecutionCoordinator(
            simulator=sim,
            strategy=compiled.strategy_runtime(),
            network=endpoint,
            devices=self.scenario.devices,
            plan=plan,
            collection_window=self.spec.collection_window,
            deadline=self.spec.deadline,
            secure_channels=False,
            telemetry=self.telemetry,
            seed=arrival.seed,
            transport=transport,
            recovery=recovery,
            standby_devices=record.standbys,
        )
        record.plan = plan
        record.executor = executor
        record.transport = transport
        record.started_at = sim.now
        record.outcome = "running"
        horizon = executor.start()
        sim.schedule_at(
            horizon,
            lambda: self._on_complete(record),
            f"workload-finish:{query_id}",
        )
        self._g_in_flight.set(self.admission.in_flight)

    def _on_complete(self, record: QueryRecord) -> None:
        sim = self.scenario.simulator
        query_id = record.arrival.query_id
        report = record.executor.finish()
        self.mux.detach_query(query_id)
        self.registry.release(query_id)
        record.report = report
        record.finished_at = sim.now
        record.outcome = COMPLETED
        record.fingerprint = report_fingerprint(
            report, base_time=record.executor.start_time
        )
        self.scenario.record_query_metrics(report, record.executor.start_time)
        latency = record.latency
        if latency is not None:
            self._h_latency.observe(latency)
        self._after_slot_freed(self.admission.complete(query_id))
        self._g_in_flight.set(self.admission.in_flight)

    def _after_slot_freed(self, drained_query_id: str | None) -> None:
        """A slot opened: launch the drained queued query, then feed the
        closed loop one more arrival."""
        if drained_query_id is not None:
            self._launch(self._records[drained_query_id])
        if self._pending and self.admission.in_flight < self.spec.target_in_flight:
            arrival = self._pending.popleft()
            self._on_arrival(arrival)

    # -- wrap-up --------------------------------------------------------------

    def _finalize(self, start: float) -> WorkloadResult:
        records = [self._records[a.query_id] for a in self.spec.arrivals()]
        stuck = [
            r.arrival.query_id
            for r in records
            if r.outcome not in (COMPLETED, SHED)
        ]
        if stuck:
            raise RuntimeError(
                f"workload ended with non-terminal queries: {stuck}"
            )
        elapsed = self.scenario.simulator.now - start
        latencies = sorted(
            r.latency
            for r in records
            if r.outcome == COMPLETED and r.latency is not None
        )
        percentiles = (
            {
                "p50": _percentile(latencies, 0.50),
                "p95": _percentile(latencies, 0.95),
                "p99": _percentile(latencies, 0.99),
            }
            if latencies
            else {}
        )
        utilization = self.registry.utilization(self.processor_pool, elapsed)
        self.telemetry.metrics.gauge("workload.device_utilization").set(
            utilization
        )
        completed = [r for r in records if r.outcome == COMPLETED]
        return WorkloadResult(
            spec=self.spec,
            records=records,
            elapsed=elapsed,
            arrivals=self.admission.arrivals,
            admitted=self.admission.admitted,
            queued=self.admission.queued,
            shed=self.admission.shed,
            completed=self.admission.completed,
            succeeded=sum(1 for r in completed if r.report.success),
            degraded=sum(1 for r in completed if r.report.degraded),
            latency_percentiles=percentiles,
            utilization=utilization,
        )


def serial_fingerprints(
    engine: WorkloadEngine, result: WorkloadResult, telemetry: Any = None
) -> dict[str, str]:
    """Replay every completed query *alone* and fingerprint each replay.

    Builds a fresh scenario from the engine's config — device identities
    are a pure function of ``(scenario_tag, seed)``, so the solo swarm
    is the workload swarm — and runs each completed query on an
    otherwise idle clock with its recorded leased devices, plan seed,
    and (under reliability) transport seed.  The returned map is
    directly comparable to ``result.fingerprints()``: equality means
    concurrency changed nothing about that query.

    Only meaningful for chaos-free workloads — under injected faults the
    solo run sees a different fault schedule and equality is not
    expected.
    """
    if telemetry is None:
        from repro.telemetry import Telemetry

        telemetry = Telemetry()
    spec = engine.spec
    scenario = Scenario(engine.scenario_config, telemetry=telemetry)
    scenario.network.per_query_rng = True
    sim = scenario.simulator
    fingerprints: dict[str, str] = {}
    for record in result.records:
        if record.outcome != COMPLETED:
            continue
        sim.reset()
        scenario.network.reset()
        mux = QueryMux(scenario.network)
        arrival = record.arrival
        compiled = engine.compile(arrival.query_id, arrival.strategy)
        plan = compiled.build_qep(
            contributor_ids=[d.device_id for d in scenario.contributors]
        )
        scenario.assign_query(plan, record.leased)
        endpoint = mux.endpoint(arrival.query_id)
        transport = None
        recovery = None
        if spec.reliability:
            from repro.core.runtime.recovery import RecoveryConfig
            from repro.network.reliable import ReliableTransport

            transport = ReliableTransport(
                endpoint, seed=arrival.seed + 4, telemetry=telemetry
            )
            recovery = RecoveryConfig(
                phase_deadline=engine.scenario_config.phase_deadline
            )
        executor = ExecutionCoordinator(
            simulator=sim,
            strategy=compiled.strategy_runtime(),
            network=endpoint,
            devices=scenario.devices,
            plan=plan,
            collection_window=spec.collection_window,
            deadline=spec.deadline,
            secure_channels=False,
            telemetry=telemetry,
            seed=arrival.seed,
            transport=transport,
            recovery=recovery,
            standby_devices=record.standbys,
        )
        report = executor.run()
        fingerprints[arrival.query_id] = report_fingerprint(
            report, base_time=executor.start_time
        )
    return fingerprints
