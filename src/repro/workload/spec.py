"""Declarative multi-query workload descriptions.

A :class:`WorkloadSpec` describes *load*, not queries: how many query
executions arrive, under which arrival process, how much concurrency the
manager tolerates, and the shape knobs every generated query shares.
:meth:`WorkloadSpec.arrivals` expands it into a deterministic sequence
of :class:`QueryArrival` records — every arrival time, strategy choice,
and per-query seed is a pure function of ``spec.seed``, which is what
lets the engine promise byte-identical replays and serial equivalence.

Arrival processes:

* ``"poisson"`` — open loop, exponential inter-arrival times with mean
  ``1 / arrival_rate`` (the M/…/c view of the swarm);
* ``"uniform"`` — open loop, inter-arrival times uniform on
  ``[0, 2 / arrival_rate]`` (same mean rate, bounded burstiness);
* ``"closed"`` — closed loop: ``target_in_flight`` queries are kept in
  flight, a completion immediately launches the next arrival (arrival
  times are therefore decided at run time and ``QueryArrival.at`` is
  ``None``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

__all__ = ["ARRIVAL_PROCESSES", "QueryArrival", "WorkloadSpec"]

ARRIVAL_PROCESSES = ("poisson", "uniform", "closed")


@dataclass(frozen=True)
class QueryArrival:
    """One generated query arrival.

    Attributes:
        index: position in the arrival sequence (0-based).
        query_id: unique id, embeds the workload seed and the index.
        at: virtual arrival time; ``None`` for closed-loop arrivals
            (launched by a completion).
        strategy: ``"overcollection"`` or ``"backup"``.
        seed: per-query randomness seed (contribution jitter, transport
            jitter, network draws under per-query streams).
    """

    index: int
    query_id: str
    at: float | None
    strategy: str
    seed: int


@dataclass(frozen=True)
class WorkloadSpec:
    """Seeded description of one multi-query workload.

    Attributes:
        n_queries: total arrivals to generate.
        arrival_process: one of :data:`ARRIVAL_PROCESSES`.
        arrival_rate: mean arrivals per virtual second (open loop).
        target_in_flight: queries kept in flight (closed loop).
        max_concurrent: admission cap on concurrently executing queries.
        queue_capacity: arrivals parked past the cap before shedding.
        backup_fraction: probability a query is planned with the Backup
            strategy instead of Overcollection (the strategy mix).
        seed: master workload seed.
        snapshot_cardinality: target snapshot size ``C`` per query.
        max_raw_per_edgelet: privacy knob driving partitions per query.
        fault_rate: presumed partition-loss rate (overcollection degree).
        target_success: per-query completion probability target.
        collection_window: per-query collection phase length.
        deadline: per-query deadline.
        reliability: run every query over its own ACK/retransmission
            transport plus the recovery watchdogs.
        engine: operator engine every query executes under — ``"row"``
            (tuple-at-a-time walk) or ``"columnar"`` (vectorized column
            blocks); both produce byte-identical reports.
        sql: the grouping-sets aggregate every query computes (kept
            identical across queries so serial-equivalence comparisons
            isolate *scheduling* effects, not query mix).
    """

    n_queries: int
    arrival_process: str = "poisson"
    arrival_rate: float = 2.0
    target_in_flight: int = 4
    max_concurrent: int = 8
    queue_capacity: int = 16
    backup_fraction: float = 0.0
    seed: int = 0
    snapshot_cardinality: int = 48
    max_raw_per_edgelet: int = 24
    fault_rate: float = 0.05
    target_success: float = 0.95
    collection_window: float = 5.0
    deadline: float = 12.0
    reliability: bool = False
    engine: str = "row"
    sql: str = (
        "SELECT count(*), avg(age) FROM health "
        "GROUP BY GROUPING SETS ((region), ())"
    )

    def __post_init__(self) -> None:
        if self.n_queries <= 0:
            raise ValueError("n_queries must be positive")
        if self.arrival_process not in ARRIVAL_PROCESSES:
            raise ValueError(
                f"arrival_process must be one of {ARRIVAL_PROCESSES}"
            )
        if self.arrival_rate <= 0:
            raise ValueError("arrival_rate must be positive")
        if self.target_in_flight <= 0:
            raise ValueError("target_in_flight must be positive")
        if self.max_concurrent <= 0:
            raise ValueError("max_concurrent must be positive")
        if self.queue_capacity < 0:
            raise ValueError("queue_capacity must be non-negative")
        if not 0 <= self.backup_fraction <= 1:
            raise ValueError("backup_fraction must be in [0, 1]")
        if self.collection_window <= 0 or self.deadline <= 0:
            raise ValueError("collection_window and deadline must be positive")
        if self.deadline <= self.collection_window:
            raise ValueError("deadline must exceed the collection window")
        if self.engine not in ("row", "columnar"):
            raise ValueError(f"unknown engine {self.engine!r}")

    def arrivals(self) -> list[QueryArrival]:
        """Expand into the deterministic arrival sequence.

        Every call returns the same sequence for the same spec — the
        generator RNG is seeded from ``spec.seed`` alone.
        """
        rng = random.Random(f"{self.seed}:arrivals")
        out: list[QueryArrival] = []
        clock = 0.0
        for index in range(self.n_queries):
            if self.arrival_process == "poisson":
                clock += rng.expovariate(self.arrival_rate)
                at: float | None = clock
            elif self.arrival_process == "uniform":
                clock += rng.uniform(0.0, 2.0 / self.arrival_rate)
                at = clock
            else:  # closed
                at = None
            strategy = (
                "backup"
                if rng.random() < self.backup_fraction
                else "overcollection"
            )
            out.append(
                QueryArrival(
                    index=index,
                    query_id=f"wl{self.seed}-q{index:03d}",
                    at=at,
                    strategy=strategy,
                    seed=rng.randrange(2**31),
                )
            )
        return out
