"""Edgelet computing — reproduction of the EDBT 2023 demonstration
"Pushing Edge Computing one Step Further: Resilient and
Privacy-Preserving Processing on Personal Devices".

The library simulates a swarm of TEE-enabled personal devices (PCs with
SGX, TrustZone smartphones, TPM home boxes) connected by an uncertain
opportunistic network, and executes privacy-preserving, fault-tolerant
queries over the data scattered on them::

    from repro.data import HEALTH_SCHEMA, generate_health_rows
    from repro.manager import Scenario, ScenarioConfig
    from repro.core import QuerySpec
    from repro.query import parse_query

    parsed = parse_query(
        "SELECT count(*), avg(age) FROM health WHERE age > 65 "
        "GROUP BY GROUPING SETS ((region), ())"
    )
    config = ScenarioConfig(
        n_contributors=200, n_processors=30,
        rows=generate_health_rows(400, seed=7), schema=HEALTH_SCHEMA,
    )
    spec = QuerySpec(query_id="q1", kind="aggregate",
                     snapshot_cardinality=200, group_by=parsed.query)
    result = Scenario(config).run_query(spec)
    assert result.report.success

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
reproduced figures and demonstration measurements.
"""

__version__ = "1.0.0"

from repro.core.planner import (
    EdgeletPlanner,
    PrivacyParameters,
    QuerySpec,
    ResiliencyParameters,
)
from repro.manager.scenario import Scenario, ScenarioConfig

__all__ = [
    "EdgeletPlanner",
    "PrivacyParameters",
    "QuerySpec",
    "ResiliencyParameters",
    "Scenario",
    "ScenarioConfig",
    "__version__",
]
